#!/usr/bin/env python3
"""Lint Prometheus text exposition format (version 0.0.4).

Validates the output of ``python -m repro.cli metrics`` (or any
exposition file) the way ``promtool check metrics`` would, using only
the stdlib so it runs in CI without extra dependencies:

- every line is a ``# HELP``, a ``# TYPE`` or a well-formed sample;
- metric and label names match the Prometheus grammar;
- ``# TYPE`` appears at most once per family, before its samples;
- sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed);
- histogram families expose ``_bucket``/``_sum``/``_count`` series,
  bucket counts are cumulative and the last bucket is ``le="+Inf"``
  with a count equal to the family's ``_count``.

With ``--catalog`` the exposition is additionally cross-checked
against the repo's standard metric catalog
(:data:`repro.obs.catalog.STANDARD_METRICS`): every catalog family
must appear with the declared type, every sample's label names must be
exactly the declared set, and any ``repro_``-prefixed family missing
from the catalog is flagged -- so new metric families (e.g. the
``repro_session_*`` group) cannot ship half-registered.

Usage::

    python -m repro.cli metrics | python tools/check_prometheus.py
    python tools/check_prometheus.py exposition.txt
    python -m repro.cli metrics | python tools/check_prometheus.py --catalog

Exit status 0 when the input is valid, 1 otherwise (problems are
listed on stderr).
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Dict, List, Optional, Tuple

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"

HELP_RE = re.compile(rf"^# HELP ({METRIC_NAME}) (.*)$")
TYPE_RE = re.compile(
    rf"^# TYPE ({METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
SAMPLE_RE = re.compile(
    rf"^({METRIC_NAME})(\{{.*\}})? ([^ ]+)( [0-9]+)?$"
)
LABEL_RE = re.compile(rf'^({LABEL_NAME})="((?:[^"\\]|\\.)*)"$')


def _split_labels(block: str) -> Optional[List[Tuple[str, str]]]:
    """Parse ``{a="x",b="y"}`` into pairs; ``None`` when malformed."""
    inner = block[1:-1]
    if not inner:
        return []
    pairs: List[Tuple[str, str]] = []
    # Split on commas outside escaped quotes: scan character-wise.
    current, in_quotes, escaped = [], False, False
    parts: List[str] = []
    for ch in inner:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    for part in parts:
        match = LABEL_RE.match(part)
        if match is None:
            return None
        pairs.append((match.group(1), match.group(2)))
    return pairs


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text in ("NaN", "nan"):
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def _base_family(name: str, types: Dict[str, str]) -> str:
    """Strip histogram/summary suffixes back to the declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def lint(text: str) -> List[str]:
    """All format violations found in ``text`` (empty = valid)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    sampled: set = set()
    # histogram (family, label-set-minus-le) -> list of (le, count) in
    # order of appearance, and the _count sample for cross-checking.
    # Keying by the label set keeps the cumulative check per child: a
    # family like solve_seconds{method=...} has one bucket ladder per
    # method, not one shared ladder.
    buckets: Dict[Tuple[str, Tuple], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple], float] = {}

    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {number}: empty line inside exposition")
            continue
        if line.startswith("#"):
            if HELP_RE.match(line):
                continue
            type_match = TYPE_RE.match(line)
            if type_match:
                name = type_match.group(1)
                if name in types:
                    problems.append(
                        f"line {number}: duplicate TYPE for {name}"
                    )
                if name in sampled:
                    problems.append(
                        f"line {number}: TYPE for {name} after its samples"
                    )
                types[name] = type_match.group(2)
                continue
            problems.append(f"line {number}: malformed comment {line!r}")
            continue
        sample = SAMPLE_RE.match(line)
        if sample is None:
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        name, label_block, value_text = sample.group(1, 2, 3)
        labels = _split_labels(label_block) if label_block else []
        if labels is None:
            problems.append(
                f"line {number}: malformed labels {label_block!r}"
            )
            continue
        if len({k for k, _ in labels}) != len(labels):
            problems.append(f"line {number}: duplicate label name")
        value = _parse_value(value_text)
        if value is None:
            problems.append(
                f"line {number}: unparsable value {value_text!r}"
            )
            continue
        family = _base_family(name, types)
        sampled.add(family)
        kind = types.get(family)
        if kind == "histogram":
            child = tuple(sorted((k, v) for k, v in labels if k != "le"))
            if name == f"{family}_bucket":
                le = dict(labels).get("le")
                if le is None:
                    problems.append(
                        f"line {number}: histogram bucket without le label"
                    )
                    continue
                le_value = _parse_value(le)
                if le_value is None:
                    problems.append(
                        f"line {number}: unparsable le value {le!r}"
                    )
                    continue
                buckets.setdefault((family, child), []).append(
                    (le_value, value)
                )
            elif name == f"{family}_count":
                counts[(family, child)] = value

    for (family, child), series in buckets.items():
        les = [le for le, _ in series]
        values = [count for _, count in series]
        where = f"{family}{dict(child) if child else ''}"
        if les != sorted(les):
            problems.append(f"{where}: bucket le bounds not ascending")
        if values != sorted(values):
            problems.append(f"{where}: bucket counts not cumulative")
        if not les or les[-1] != float("inf"):
            problems.append(f"{where}: last bucket is not le=\"+Inf\"")
        elif (family, child) in counts and values[-1] != counts[(family, child)]:
            problems.append(
                f"{where}: +Inf bucket ({values[-1]}) != _count "
                f"({counts[(family, child)]})"
            )

    return problems


def lint_catalog(text: str) -> List[str]:
    """Cross-check an exposition against the standard metric catalog.

    Format violations are :func:`lint`'s job; this only checks catalog
    agreement, so callers can run both and get distinct messages.
    """
    try:
        from repro.obs.catalog import STANDARD_METRICS
    except ImportError:
        import pathlib

        sys.path.insert(
            0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
        )
        from repro.obs.catalog import STANDARD_METRICS

    declared = {
        name: (kind, frozenset(labels))
        for kind, name, labels, _ in STANDARD_METRICS
    }
    problems: List[str] = []
    types: Dict[str, str] = {}
    seen_labels: Dict[str, set] = {}
    for line in text.splitlines():
        if line.startswith("#"):
            type_match = TYPE_RE.match(line)
            if type_match:
                types[type_match.group(1)] = type_match.group(2)
            continue
        sample = SAMPLE_RE.match(line)
        if sample is None:
            continue  # lint() reports the malformed line
        name, label_block = sample.group(1, 2)
        labels = _split_labels(label_block) if label_block else []
        if labels is None:
            continue
        family = _base_family(name, types)
        names = frozenset(k for k, _ in labels)
        if name == f"{family}_bucket":
            names -= {"le"}
        seen_labels.setdefault(family, set()).add(names)

    for family in sorted(types):
        if family.startswith("repro_") and family not in declared:
            problems.append(
                f"{family}: exposed but not in the standard catalog "
                "(add it to repro.obs.catalog.STANDARD_METRICS)"
            )
    for name in sorted(declared):
        kind, labels = declared[name]
        exposed_type = types.get(name)
        if exposed_type is None:
            problems.append(f"{name}: catalog family missing from exposition")
            continue
        if exposed_type != kind:
            problems.append(
                f"{name}: exposed as {exposed_type}, catalog declares {kind}"
            )
        for seen in sorted(seen_labels.get(name, ()), key=sorted):
            if seen != labels:
                problems.append(
                    f"{name}: sample labels {sorted(seen)} != catalog "
                    f"labels {sorted(labels)}"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        help="exposition file to lint (default: stdin)",
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help="also cross-check families/types/labels against "
        "repro.obs.catalog.STANDARD_METRICS",
    )
    args = parser.parse_args(argv)
    if args.path:
        with open(args.path, encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("error: empty exposition", file=sys.stderr)
        return 1
    problems = lint(text.rstrip("\n"))
    if args.catalog:
        problems += lint_catalog(text.rstrip("\n"))
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        return 1
    families = len(re.findall(r"^# TYPE ", text, flags=re.M))
    suffix = " and matches the catalog" if args.catalog else ""
    print(f"ok: {families} families, exposition is valid{suffix}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
