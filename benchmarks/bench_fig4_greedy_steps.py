"""Fig. 4 reproduction: the greedy allocation walkthrough.

Fig. 4 illustrates Algorithm 1 on rho = 5 (T = 6 slots) with ~10
sensors: at each step a sensor is allocated to the slot with maximum
incremental utility; the narration allocates the best sensor first,
then spreads the rest.  We regenerate the step table for an instance of
that size, check the structural properties the figure conveys, and
benchmark both greedy implementations at this scale.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import ChargingPeriod, SchedulingProblem
from repro.analysis.report import format_table
from repro.core.greedy import GreedyTrace, greedy_schedule

from tests.conftest import random_target_system

RHO = 5.0  # T = 6 slots, the figure's setting
N = 10


def make_problem(seed=4):
    rng = np.random.default_rng(seed)
    utility = random_target_system(N, 3, rng, p_low=0.3, p_high=0.6)
    return SchedulingProblem(
        num_sensors=N,
        period=ChargingPeriod.from_ratio(RHO),
        utility=utility,
    )


def test_fig4_step_table():
    problem = make_problem()
    trace = GreedyTrace()
    schedule = greedy_schedule(problem, trace=trace)

    rows = [
        [s.order + 1, f"v{s.sensor}", f"t{s.slot + 1}", s.gain, s.total_after]
        for s in trace.steps
    ]
    emit(
        "Fig. 4 greedy walkthrough (rho=5, n=10)\n"
        + format_table(["step", "sensor", "slot", "gain", "total"], rows, "{:.4f}")
    )

    # Exactly n steps, every sensor placed once (Algorithm 1's loop).
    assert len(trace.steps) == N
    assert {s.sensor for s in trace.steps} == set(range(N))
    # The first step takes the globally best singleton.
    best_single = max(problem.utility.value({v}) for v in range(N))
    assert trace.steps[0].gain == pytest.approx(best_single)
    # Cumulative totals are consistent with the gains.
    running = 0.0
    for step in trace.steps:
        running += step.gain
        assert step.total_after == pytest.approx(running)
    # And with the final schedule's utility.
    assert running == pytest.approx(schedule.period_utility(problem.utility))


def test_fig4_schedule_uses_multiple_slots():
    schedule = greedy_schedule(make_problem())
    used = {slot for slot in schedule.assignment.values()}
    assert len(used) >= 3  # the figure spreads sensors over the period


class TestBenchmarks:
    def test_bench_lazy(self, benchmark):
        problem = make_problem()
        benchmark(greedy_schedule, problem, True)

    def test_bench_naive(self, benchmark):
        problem = make_problem()
        benchmark(greedy_schedule, problem, False)
