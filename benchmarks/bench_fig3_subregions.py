"""Fig. 3 reproduction: subregion arrangement of the monitored region.

Fig. 3b shows a rectangle Omega subdivided by three overlapping convex
sensing regions into 38 subregions, and the paper bounds the count by a
polynomial (at most ~n^2 for convex regions).  We regenerate the
decomposition for deployments of growing size, report the coverage-
class counts and covered-area fractions, check the polynomial bound,
and benchmark the arrangement computation.
"""

import math

import pytest

from benchmarks.conftest import emit
from repro import DiskSensingModel, compute_subregions, uniform_deployment
from repro.analysis.report import format_table
from repro.coverage.arrangement import count_subregions, covered_area
from repro.coverage.geometry import Disk, Point, Rectangle


def disks_for(n, seed, radius=25.0):
    deployment = uniform_deployment(num_sensors=n, rng=seed)
    sensing = DiskSensingModel(radius=radius, p=0.4)
    return deployment.region, [sensing.region(p) for p in deployment.sensors]


class TestFig3Shape:
    def test_three_disk_figure(self):
        # A Fig. 3b-like configuration: 3 mutually overlapping disks in
        # a rectangle: 7 coverage classes (every non-empty subset).
        region = Rectangle.square(30)
        disks = [
            Disk(Point(13, 15), 6.0),
            Disk(Point(18, 15), 6.0),
            Disk(Point(15.5, 19), 6.0),
        ]
        cells = compute_subregions(region, disks, resolution=400)
        signatures = {cell.covered_by for cell in cells}
        assert len(signatures) == 7

    def test_counts_grow_polynomially(self):
        rows = []
        for n in (5, 10, 20, 40):
            region, disks = disks_for(n, seed=n)
            count = count_subregions(region, disks, resolution=300)
            union = covered_area(region, disks, resolution=300)
            rows.append([n, count, n * n, union / region.area])
            # The paper's bound: at most ~n^2 subregions for convex
            # regions (merged-signature classes can only be fewer).
            assert count <= n * n + n + 1
        emit(
            "Fig. 3 subregion counts\n"
            + format_table(
                ["n sensors", "classes", "n^2 bound", "covered frac"],
                rows,
                "{:.3f}",
            )
        )

    def test_classes_at_least_sensors_when_sparse(self):
        # Disjoint disks: exactly n classes.
        region = Rectangle.square(100)
        disks = [Disk(Point(10 + 20 * i, 10), 5.0) for i in range(4)]
        assert count_subregions(region, disks, resolution=400) == 4


class TestBenchmarks:
    @pytest.mark.parametrize("n", [10, 40])
    def test_bench_arrangement(self, benchmark, n):
        region, disks = disks_for(n, seed=1)
        cells = benchmark(compute_subregions, region, disks, 200)
        assert cells
