"""Lemma 4.1 / Thm. 4.3 / Thm. 4.4 study: greedy vs enumerated optimum.

The paper's theory: the greedy hill-climbing scheme is a
1/2-approximation in both regimes; its evaluation observes it is
usually near-optimal ("sufficiently close to the optimal solution in
most cases", with the optimum "obtained by enumerating all possible
scheduling").  We regenerate that comparison on batches of random
instances, report worst/mean ratios, and benchmark the exact solver.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import ChargingPeriod, SchedulingProblem, solve
from repro.analysis.report import format_table
from repro.analysis.stats import summarize_ratios
from repro.core.optimal import optimal_value

from tests.conftest import random_coverage_utility, random_target_system


def instance(seed, n, regime, workload):
    rng = np.random.default_rng(seed)
    if workload == "targets":
        utility = random_target_system(n, 3, rng)
    else:
        utility = random_coverage_utility(n, 10, rng)
    rho = 2.0 if regime == "sparse" else 0.5
    return SchedulingProblem(
        num_sensors=n, period=ChargingPeriod.from_ratio(rho), utility=utility
    )


BATCH = 20


def ratio_batch(regime, workload, n=6):
    achieved, optimal = [], []
    for seed in range(BATCH):
        problem = instance(1000 * hash((regime, workload)) % 9999 + seed, n, regime, workload)
        achieved.append(solve(problem, method="greedy").total_utility)
        optimal.append(optimal_value(problem))
    return summarize_ratios(achieved, optimal)


class TestRatios:
    @pytest.mark.parametrize("regime", ["sparse", "dense"])
    @pytest.mark.parametrize("workload", ["targets", "coverage"])
    def test_half_approx_and_near_optimality(self, regime, workload):
        summary = ratio_batch(regime, workload)
        emit(
            f"approximation study [{regime}/{workload}] "
            f"({BATCH} instances): {summary}"
        )
        # The theorem.
        assert summary.all_above_half
        # The evaluation observation: near-optimal in practice.
        assert summary.mean_ratio > 0.9

    def test_summary_table(self):
        rows = []
        for regime in ("sparse", "dense"):
            for workload in ("targets", "coverage"):
                s = ratio_batch(regime, workload)
                rows.append([regime, workload, s.worst_ratio, s.mean_ratio])
        emit(
            "greedy / optimal ratios\n"
            + format_table(
                ["regime", "workload", "worst", "mean"], rows, "{:.4f}"
            )
        )
        assert all(row[2] >= 0.5 for row in rows)


class TestBenchmarks:
    def test_bench_branch_and_bound(self, benchmark):
        problem = instance(3, 7, "sparse", "targets")
        value = benchmark(optimal_value, problem)
        assert value > 0

    def test_bench_greedy_same_instance(self, benchmark):
        problem = instance(3, 7, "sparse", "targets")
        result = benchmark(solve, problem, "greedy")
        assert result.total_utility > 0
