"""Self-healing runtime study: utility retention under node deaths.

For a grid of death rates, run the same seeded failure scenario through
(a) the oblivious schedule-following baseline and (b) the self-healing
runtime (report-driven detection + cost-aware greedy repair), and
report the fraction of the healthy run's utility each retains.  The
rows are also emitted as a JSON document so downstream tooling can
ingest the comparison without scraping the table.

The pinned qualitative shape: self-healing never retains less than the
oblivious baseline, and at heavy death rates it retains strictly more.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.greedy import greedy_schedule
from repro.core.problem import SchedulingProblem
from repro.energy.period import ChargingPeriod
from repro.policies import SchedulePolicy, SelfHealingPolicy
from repro.sim import (
    FailureInjectedPolicy,
    FailurePlan,
    SensorNetwork,
    SimulationEngine,
)
from repro.utility.target_system import TargetSystem

PERIOD = ChargingPeriod.paper_sunny()
N = 20
PERIODS = 30
L = PERIODS * PERIOD.slots_per_period
UTILITY = TargetSystem.homogeneous_detection(
    [set(range(0, 10)), set(range(5, 15)), set(range(10, 20))], 0.4
)
DEATH_RATES = (0.1, 0.2, 0.3, 0.4)
SEED = 7


def plan():
    problem = SchedulingProblem(
        num_sensors=N, period=PERIOD, utility=UTILITY, num_periods=PERIODS
    )
    return greedy_schedule(problem)


def run(policy):
    network = SensorNetwork(N, PERIOD, UTILITY)
    return SimulationEngine(network, policy).run(L)


def retention_rows():
    schedule = plan()
    healthy = run(SchedulePolicy(schedule)).accumulator.total_utility
    rows = []
    for rate in DEATH_RATES:
        scenario = FailurePlan.random_deaths(N, rate, horizon=L, rng=SEED)
        oblivious = run(
            FailureInjectedPolicy(SchedulePolicy(schedule), scenario)
        ).accumulator.total_utility
        healing = SelfHealingPolicy(SchedulePolicy(schedule), horizon=L)
        healed = run(
            FailureInjectedPolicy(healing, scenario)
        ).accumulator.total_utility
        rows.append(
            {
                "death_rate": rate,
                "nodes_dead": len(scenario.deaths),
                "oblivious_retention": oblivious / healthy,
                "self_healing_retention": healed / healthy,
                "repairs_adopted": healing.repairs_performed,
                "repairs_skipped": healing.repairs_skipped,
            }
        )
    return healthy, rows


class TestSelfHealingRetention:
    def test_retention_table(self):
        healthy, rows = retention_rows()
        emit(
            format_table(
                ["death rate", "dead", "oblivious", "self-healing", "repairs"],
                [
                    [
                        f"{r['death_rate']:.0%}",
                        r["nodes_dead"],
                        r["oblivious_retention"],
                        r["self_healing_retention"],
                        r["repairs_adopted"],
                    ]
                    for r in rows
                ],
                "{:.4f}",
            )
        )
        emit(
            json.dumps(
                {
                    "scenario": {
                        "sensors": N,
                        "periods": PERIODS,
                        "seed": SEED,
                        "healthy_total_utility": healthy,
                    },
                    "rows": rows,
                },
                indent=2,
            )
        )
        for row in rows:
            assert (
                row["self_healing_retention"]
                >= row["oblivious_retention"] - 1e-12
            )
        heavy = [r for r in rows if r["nodes_dead"] >= N // 5]
        assert heavy, "grid must include a >=20% death scenario"
        assert any(
            r["self_healing_retention"] > r["oblivious_retention"] + 1e-12
            for r in heavy
        )

    def test_bench_self_healing_run(self, benchmark):
        schedule = plan()
        scenario = FailurePlan.random_deaths(N, 0.3, horizon=L, rng=SEED)

        def healed_run():
            policy = FailureInjectedPolicy(
                SelfHealingPolicy(SchedulePolicy(schedule), horizon=L),
                scenario,
            )
            return run(policy)

        result = benchmark(healed_run)
        assert result.accumulator.total_utility > 0
