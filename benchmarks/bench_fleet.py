"""Fleet-scale simulation benchmark: spatial index + SoA engine + shards.

Builds city-scale scenarios (:mod:`repro.sim.cityscale`) at
n in {10^3, 10^4, 10^5} sensors and measures the slot rate of the
fleet stack against the unindexed reference path:

- **indexed**: coverage sets through the uniform-grid spatial index
  (``REPRO_SPATIAL=1``) and the vectorized struct-of-arrays engine
  step;
- **unindexed**: brute-force all-pairs coverage (``REPRO_SPATIAL=0``)
  and the scalar per-node-object engine step (``vectorized=False``);
- **sharded**: the same indexed scenario through
  :class:`~repro.sim.sharded.ShardedSimulation` with spatial
  partitioning.

Every speedup is measured between provably interchangeable paths:
**bit-identical simulation payloads are asserted before any timing is
recorded** -- indexed vs. brute wherever the brute path is tractable
(up to n = 10^4, which covers the ISSUE's n <= 10^3 floor), and
sharded vs. single-process at *every* benchmarked size.

Pinned shape (full mode): >= 10x end-to-end slot-rate speedup at
n = 10^4 over the unindexed path, and the n = 10^5 run completes at a
tractable simulated slot rate.  Results land in ``BENCH_fleet.json``
at the repo root.

Run standalone with ``python benchmarks/bench_fleet.py [--quick]``;
``--quick`` shrinks the sizes for CI smoke (equality is still asserted
exactly; the speedup floor relaxes to a >= 1x sanity check).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.policies.schedule_policy import SchedulePolicy
from repro.sim.cityscale import CityScenario, city_scenario
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.network import SensorNetwork
from repro.sim.sharded import ShardedSimulation

#: Fleet sizes of the full sweep (the ISSUE's pinned points).
FULL_SIZES = (1_000, 10_000, 100_000)
QUICK_SIZES = (200, 2_000)

#: Simulated slots per run: two base charging periods (T = 4 slots).
SLOTS = 8

SHARDS = 4
QUICK_SHARDS = 2

#: Largest size at which the brute-force reference still runs; the
#: bit-equality gate rides along wherever the reference is computed.
BRUTE_MAX = 10_000

#: The pinned floor: end-to-end slot rate at n = SPEEDUP_AT must beat
#: the unindexed path by this factor in the full run.
SPEEDUP_FLOOR = 10.0
SPEEDUP_AT = 10_000

#: "Completes at a tractable slot rate": the largest size must sustain
#: at least this many simulated slots per second (sim only).
LARGEST_MIN_SLOT_RATE = 1.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


def payload_bytes(result: SimulationResult) -> str:
    """Canonical per-slot payload: equal strings iff the runs are
    bit-identical (slots, active sets, utilities, refusals)."""
    return json.dumps(
        {
            "slots": [
                [record.slot, sorted(record.active_set), record.utility]
                for record in result.accumulator.records
            ],
            "refused": result.refused_activations,
            "total": result.total_utility,
        },
        sort_keys=True,
    )


def _with_spatial(flag: str, fn):
    """Run ``fn()`` with ``REPRO_SPATIAL`` pinned to ``flag``."""
    previous = os.environ.get("REPRO_SPATIAL")
    os.environ["REPRO_SPATIAL"] = flag
    try:
        return fn()
    finally:
        if previous is None:
            os.environ.pop("REPRO_SPATIAL", None)
        else:
            os.environ["REPRO_SPATIAL"] = previous


def run_single(n: int, *, indexed: bool):
    """Build the scenario and simulate it in one process.

    Returns ``(payload, scenario, setup_seconds, sim_seconds)``.  The
    setup time includes scenario generation (dominated by coverage-set
    construction, which is what the spatial index accelerates); the sim
    time is the engine run (vectorized on the indexed path, scalar on
    the reference path).
    """
    start = time.perf_counter()
    scenario = _with_spatial(
        "1" if indexed else "0", lambda: city_scenario(n, seed=n)
    )
    setup_seconds = time.perf_counter() - start

    network = SensorNetwork(
        num_sensors=scenario.num_sensors,
        period=scenario.period,
        utility=scenario.utility,
        node_periods=scenario.node_periods,
    )
    engine = SimulationEngine(
        network,
        SchedulePolicy(scenario.round_robin_schedule()),
        vectorized=None if indexed else False,
    )
    start = time.perf_counter()
    result = engine.run(SLOTS)
    sim_seconds = time.perf_counter() - start
    return payload_bytes(result), scenario, setup_seconds, sim_seconds


def run_sharded(scenario: CityScenario, shards: int):
    """Simulate the already-built scenario through the sharded driver."""
    sharded = ShardedSimulation(
        num_sensors=scenario.num_sensors,
        period=scenario.period,
        utility=scenario.utility,
        schedule=scenario.round_robin_schedule(),
        shards=shards,
        node_periods=scenario.node_periods,
        positions=scenario.positions,
    )
    start = time.perf_counter()
    result = sharded.run(SLOTS)
    sim_seconds = time.perf_counter() - start
    return payload_bytes(result), sim_seconds


def measure_size(n: int, shards: int) -> dict:
    indexed_payload, scenario, idx_setup, idx_sim = run_single(
        n, indexed=True
    )
    indexed_rate = SLOTS / (idx_setup + idx_sim)
    row = {
        "sensors": n,
        "targets": scenario.num_targets,
        "slots": SLOTS,
        "period_overrides": len(scenario.node_periods),
        "indexed": {
            "setup_seconds": idx_setup,
            "sim_seconds": idx_sim,
            "slot_rate": indexed_rate,
            "sim_slot_rate": SLOTS / idx_sim,
        },
        "equality": [],
    }

    if n <= BRUTE_MAX:
        brute_payload, _, brute_setup, brute_sim = run_single(
            n, indexed=False
        )
        assert brute_payload == indexed_payload, (
            f"n={n}: indexed and brute-force simulation payloads diverge"
        )
        row["equality"].append("indexed-vs-brute: bit-identical")
        brute_rate = SLOTS / (brute_setup + brute_sim)
        row["unindexed"] = {
            "setup_seconds": brute_setup,
            "sim_seconds": brute_sim,
            "slot_rate": brute_rate,
            "sim_slot_rate": SLOTS / brute_sim,
        }
        row["speedup"] = indexed_rate / brute_rate
    else:
        row["unindexed"] = None
        row["speedup"] = None

    sharded_payload, sharded_sim = run_sharded(scenario, shards)
    assert sharded_payload == indexed_payload, (
        f"n={n}: sharded and single-process simulation payloads diverge"
    )
    row["equality"].append(
        f"sharded({shards})-vs-single: bit-identical"
    )
    row["sharded"] = {
        "shards": shards,
        "sim_seconds": sharded_sim,
        "sim_slot_rate": SLOTS / sharded_sim,
    }
    return row


def measure(quick: bool = False) -> dict:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    shards = QUICK_SHARDS if quick else SHARDS
    return {
        "bench": "fleet",
        "quick": quick,
        "config": {
            "sizes": list(sizes),
            "slots": SLOTS,
            "shards": shards,
            "brute_reference_max": BRUTE_MAX,
            "cpu_count": os.cpu_count(),
        },
        "sizes": [measure_size(n, shards) for n in sizes],
    }


def check_floors(document: dict) -> None:
    """The pinned shape for the full (non-quick) run."""
    by_n = {row["sensors"]: row for row in document["sizes"]}
    pinned = by_n[SPEEDUP_AT]
    assert pinned["speedup"] is not None and pinned["speedup"] >= SPEEDUP_FLOOR, (
        f"n={SPEEDUP_AT}: indexed path only {pinned['speedup']}x over "
        f"unindexed, floor {SPEEDUP_FLOOR}x"
    )
    largest = document["sizes"][-1]
    rate = largest["indexed"]["sim_slot_rate"]
    assert rate >= LARGEST_MIN_SLOT_RATE, (
        f"n={largest['sensors']}: {rate:.2f} slots/s is below the "
        f"tractability floor {LARGEST_MIN_SLOT_RATE}"
    )


class TestFleetScale:
    def test_slot_rates_with_bit_equality(self):
        document = measure(quick=False)
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        check_floors(document)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI workload: exact equality still asserted, the "
        "speedup floor relaxes to >= 1x sanity",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the document without writing BENCH_fleet.json",
    )
    args = parser.parse_args()
    document = measure(quick=args.quick)
    print(json.dumps(document, indent=2))
    if not args.no_write:
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    if args.quick:
        rows = [row for row in document["sizes"] if row["speedup"] is not None]
        assert rows and all(row["speedup"] >= 1.0 for row in rows), (
            "quick mode: indexed path failed the >= 1x sanity floor"
        )
    else:
        check_floors(document)


if __name__ == "__main__":
    main()
