"""Consolidated paper-vs-measured summary (EXPERIMENTS.md, executable).

Runs a compact version of every reproduced result and prints one
summary table -- the quickest way to see the whole reproduction at a
glance (`pytest benchmarks/bench_summary.py -s`).  Each row's PASS
criterion mirrors the corresponding full bench's assertions.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    ChargingPeriod,
    HomogeneousDetectionUtility,
    SchedulingProblem,
    single_target_upper_bound,
    solve,
)
from repro.analysis.report import format_table
from repro.analysis.stats import summarize_ratios
from repro.core.hardness import SubsetSumInstance, decide_subset_sum_via_scheduling
from repro.core.optimal import optimal_value
from repro.energy.period import ChargingPeriod as CP
from repro.solar.trace import generate_node_trace

from tests.conftest import random_target_system

PERIOD = ChargingPeriod.paper_sunny()


def test_summary_table():
    rows = []

    # 1. Sec. II-B worked example.
    ok = PERIOD.total_time == 60.0 and PERIOD.slots_for_working_time(720.0) == 48
    rows.append(["Sec II-B period example", "T=60min, L=48 slots", "exact", ok])

    # 2. Fig. 7 conclusions.
    trace = generate_node_trace(5, days=1, battery_capacity=50.0, rng=7)
    light = trace.daytime_light_variability()
    volt = trace.daytime_voltage_stability()
    ok = light > 0.3 and volt < 0.05
    rows.append(
        ["Fig 7 voltage flat vs light", "qualitative", f"{volt:.3f} vs {light:.2f}", ok]
    )

    # 3. Sec. VI-B headline bound.
    bound = single_target_upper_bound(100, 4, 0.4)
    greedy = solve(
        SchedulingProblem(
            num_sensors=100,
            period=PERIOD,
            utility=HomogeneousDetectionUtility(range(100), p=0.4),
        ),
        method="greedy",
    ).average_slot_utility
    ok = greedy == pytest.approx(bound) and greedy > 0.983408764
    rows.append(
        ["Sec VI-B headline (n=100)", "0.9834 / 0.99938", f"{greedy:.5f} = U*", ok]
    )

    # 4. Lemma 4.1 ratios (compact batch).
    achieved, optimal = [], []
    for seed in range(8):
        rng = np.random.default_rng(seed)
        utility = random_target_system(6, 3, rng)
        problem = SchedulingProblem(
            num_sensors=6, period=CP.from_ratio(2.0), utility=utility
        )
        achieved.append(solve(problem, method="greedy").total_utility)
        optimal.append(optimal_value(problem))
    summary = summarize_ratios(achieved, optimal)
    ok = summary.all_above_half and summary.mean_ratio > 0.9
    rows.append(
        [
            "Lemma 4.1 ratio (8 inst.)",
            ">= 0.5, near 1",
            f"worst {summary.worst_ratio:.3f}",
            ok,
        ]
    )

    # 5. Thm. 3.1 reduction on a yes and a no instance.
    yes = decide_subset_sum_via_scheduling(SubsetSumInstance((3, 5, 2)))
    no = decide_subset_sum_via_scheduling(SubsetSumInstance((1, 2, 5)))
    ok = yes and not no
    rows.append(["Thm 3.1 reduction", "decides Subset-Sum", f"yes={yes}, no={no}", ok])

    # 6. Fig. 9 floor at n=100 (single representative cell).
    from repro.experiments import reproduce_fig9

    cell = reproduce_fig9(sensor_counts=(100,), target_counts=(20,))[
        "avg_utility_per_target"
    ]["100"][0]
    ok = cell >= 0.5
    rows.append(["Fig 9 cell n=100,m=20", ">= 0.69 (floor 0.5)", f"{cell:.3f}", ok])

    emit(
        "reproduction summary (paper -> measured)\n"
        + format_table(
            ["result", "paper", "measured", "ok"],
            [[a, b, c, "PASS" if d else "FAIL"] for a, b, c, d in rows],
        )
    )
    assert all(row[3] for row in rows)
