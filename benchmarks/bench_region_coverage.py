"""Region-monitoring workload (Eq. 2): scheduling the area utility.

The paper's second utility family monitors a whole region Omega through
the weighted subregion arrangement (Fig. 3b, Eq. 2).  The evaluation
section only exercises the target family, so this bench extends the
harness to the region family and pins its qualitative behaviour:

- greedy dominates the baselines on covered weighted area;
- per-slot covered fraction is balanced (no dead slots);
- preference weights steer coverage toward high-priority subregions;
- the arrangement + scheduling pipeline at n = 100 stays fast.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    AreaCoverageUtility,
    ChargingPeriod,
    DiskSensingModel,
    SchedulingProblem,
    compute_subregions,
    solve,
    uniform_deployment,
)
from repro.analysis.report import format_table
from repro.utility.area import Subregion

PERIOD = ChargingPeriod.paper_sunny()


def build_area_utility(n=40, radius=20.0, seed=5, resolution=150):
    deployment = uniform_deployment(num_sensors=n, rng=seed)
    sensing = DiskSensingModel(radius=radius, p=0.4)
    disks = [sensing.region(p) for p in deployment.sensors]
    cells = compute_subregions(deployment.region, disks, resolution=resolution)
    return deployment, AreaCoverageUtility(cells)


class TestRegionScheduling:
    def test_method_comparison(self):
        _, utility = build_area_utility()
        problem = SchedulingProblem(
            num_sensors=40, period=PERIOD, utility=utility
        )
        rows = []
        values = {}
        for method in ("greedy", "greedy+ls", "balanced-random", "round-robin",
                       "all-first-slot"):
            result = solve(problem, method=method, rng=3)
            fraction = result.average_slot_utility / utility.total_weighted_area
            values[method] = result.average_slot_utility
            rows.append([method, result.average_slot_utility, fraction])
        emit(
            "region coverage (Eq. 2), n=40\n"
            + format_table(
                ["method", "avg weighted area/slot", "fraction"], rows, "{:.2f}"
            )
        )
        assert values["greedy"] >= values["balanced-random"] - 1e-9
        assert values["greedy"] >= values["round-robin"] - 1e-9
        assert values["greedy"] > 2 * values["all-first-slot"]
        assert values["greedy+ls"] >= values["greedy"] - 1e-9

    def test_no_dead_slots(self):
        _, utility = build_area_utility()
        problem = SchedulingProblem(
            num_sensors=40, period=PERIOD, utility=utility
        )
        schedule = solve(problem, method="greedy").periodic
        fractions = [
            utility.coverage_fraction(s) for s in schedule.active_sets()
        ]
        assert min(fractions) > 0.3  # every slot covers substantial area
        assert max(fractions) - min(fractions) < 0.4

    def test_weights_steer_coverage(self):
        """Up-weighting one sensor's exclusive cells must raise that
        sensor's slot priority: its marginal value grows."""
        _, base_utility = build_area_utility(n=10, seed=9)
        cells = base_utility.subregions
        # Find a sensor with exclusive coverage.
        exclusive = {
            next(iter(c.covered_by)) for c in cells if len(c.covered_by) == 1
        }
        target_sensor = sorted(exclusive)[0]
        boosted_cells = [
            Subregion(
                covered_by=c.covered_by,
                area=c.area,
                weight=10.0
                if c.covered_by == frozenset({target_sensor})
                else c.weight,
            )
            for c in cells
        ]
        boosted = AreaCoverageUtility(boosted_cells)
        assert boosted.value({target_sensor}) > base_utility.value(
            {target_sensor}
        )
        # With the boost, the greedy places the boosted sensor first.
        from repro.core.greedy import GreedyTrace, greedy_schedule

        problem = SchedulingProblem(
            num_sensors=10, period=PERIOD, utility=boosted
        )
        trace = GreedyTrace()
        greedy_schedule(problem, trace=trace)
        assert trace.steps[0].sensor == target_sensor


class TestBenchmarks:
    def test_bench_pipeline_n100(self, benchmark):
        def pipeline():
            _, utility = build_area_utility(n=100, resolution=100, seed=2)
            problem = SchedulingProblem(
                num_sensors=100, period=PERIOD, utility=utility
            )
            return solve(problem, method="greedy")

        result = benchmark(pipeline)
        assert result.average_slot_utility > 0
