"""Chaos benchmark: the serving contract under seeded fault storms.

Drives the :func:`repro.faults.chaos.run_chaos` harness through three
escalating scenarios -- a clean baseline, a transient-fault storm
(solver errors + torn cache writes), and a full storm that adds
batcher stalls and a worker crash -- and records how traffic degraded:
how many requests were answered cleanly, how many honestly flagged
degraded, how many were shed with structured errors, and (the
acceptance bar) that **zero** responses violated the robustness
contract in any scenario.

The document lands in ``BENCH_chaos.json`` at the repo root; CI runs
this module as the ``chaos-smoke`` job with the same fixed seed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.faults.chaos import run_chaos
from repro.faults.plan import FaultPlan

SEED = 2011  # fixed across CI runs -- the storm is reproducible
REQUESTS = 30

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"

SCENARIOS = [
    {
        "name": "clean",
        "specs": [],
        "jobs": None,
    },
    {
        "name": "transient_storm",
        "specs": [
            "solve:error:p=0.3",
            "cache.write:torn-write:p=0.4",
            "cache.read:error:p=0.2",
        ],
        "jobs": None,
    },
    {
        "name": "full_storm",
        "specs": [
            "solve:error:p=0.25",
            "cache.write:torn-write:p=0.25",
            "batcher.batch:sleep:delay=0.05,p=0.3",
            "pool.task:crash:times=1",
        ],
        "jobs": 2,
    },
]


def run_scenario(scenario: dict) -> dict:
    plan = FaultPlan.from_cli_specs(scenario["specs"], seed=SEED)
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        report = run_chaos(
            plan,
            requests=REQUESTS,
            seed=SEED,
            jobs=scenario["jobs"],
            cache_dir=cache_dir,
        )
        wall = time.perf_counter() - start
    return {
        "name": scenario["name"],
        "specs": scenario["specs"],
        "requests": report["requests"],
        "outcomes": report["outcomes"],
        "faults_fired": report["faults_fired"],
        "violations": report["violations"],
        "passed": report["passed"],
        "wall_seconds": wall,
    }


def measure() -> dict:
    return {
        "bench": "chaos",
        "config": {
            "seed": SEED,
            "requests_per_scenario": REQUESTS,
            "cpu_count": os.cpu_count(),
        },
        "scenarios": [run_scenario(scenario) for scenario in SCENARIOS],
    }


class TestChaosBench:
    def test_contract_holds_under_every_storm(self):
        document = measure()
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")

        by_name = {s["name"]: s for s in document["scenarios"]}

        # The acceptance bar: no scenario produced a wrong, torn, or
        # dishonestly-unflagged answer.
        for scenario in document["scenarios"]:
            assert scenario["passed"], (
                scenario["name"],
                scenario["violations"],
            )

        # The baseline is all clean answers; the storms actually fired.
        clean = by_name["clean"]
        assert clean["outcomes"]["ok"] == clean["requests"]
        for name in ("transient_storm", "full_storm"):
            assert by_name[name]["faults_fired"], f"{name} never fired"
