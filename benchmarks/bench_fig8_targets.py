"""Fig. 8 reproduction: average utility vs number of sensors, m = 1..4.

Paper setup (Sec. VI-B): p = 0.4, T_d = 15 / T_r = 45 (rho = 3, T = 4),
average utility = per-target per-slot utility; panels for m = 1..4;
the greedy curve hugs the upper bound ``U* = 1 - (1-p)^ceil(n/T)``.
Headline numbers at n = 100: greedy 0.983408764, bound 0.999380 --
measured on a weather-limited rooftop testbed.  We regenerate:

- the *ideal* greedy curve (exact scheduling arithmetic), which meets
  the closed-form bound whenever T divides n;
- a *testbed-like* curve: the same schedule executed in the simulator
  under the Sec. V random charging model, whose refused activations
  thin the active sets just as real weather did.

Shape checks: monotone in n, >= 0.92 everywhere (panel (a)'s y-floor),
ideal <= bound, testbed-like <= ideal, and the n = 100 testbed-like
run lands in the paper's measured ballpark.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    ChargingPeriod,
    HomogeneousDetectionUtility,
    SchedulingProblem,
    TargetSystem,
    single_target_upper_bound,
    solve,
)
from repro.analysis.report import render_figure8_panel
from repro.policies import SchedulePolicy
from repro.sim import SensorNetwork, SimulationEngine
from repro.sim.random_model import RandomChargingModel

PERIOD = ChargingPeriod.paper_sunny()
P = 0.4
SENSOR_COUNTS = list(range(20, 101, 20))


def single_target_problem(n):
    return SchedulingProblem(
        num_sensors=n,
        period=PERIOD,
        utility=HomogeneousDetectionUtility(range(n), p=P),
    )


def multi_target_problem(n, m, seed=0):
    # Fig. 8's multi-target panels: small target cluster, every sensor
    # covers every target (the testbed's targets sat inside the
    # deployment's common coverage area).
    covers = [set(range(n))] * m
    utility = TargetSystem.homogeneous_detection(covers, p=P)
    return SchedulingProblem(num_sensors=n, period=PERIOD, utility=utility)


def weather_limited_average(n, periods=30, seed=0):
    """Greedy schedule executed under weather-limited charging."""
    problem = single_target_problem(n).with_num_periods(periods)
    planned = solve(problem, method="greedy")
    network = SensorNetwork.from_problem(problem)
    model = RandomChargingModel(
        PERIOD,
        arrival_rate=1.0,
        mean_duration=2.0,  # saturated sensing: full drain when active
        recharge_std=25.0,  # cloudy-passage recharge variability
        rng=seed,
    )
    sim = SimulationEngine(
        network, SchedulePolicy(planned.periodic), charging_model=model
    ).run(problem.total_slots)
    return sim.average_slot_utility


class TestPanelA:
    def test_fig8a_single_target(self):
        ideal, bounds, testbed = [], [], []
        for n in SENSOR_COUNTS:
            result = solve(single_target_problem(n), method="greedy")
            ideal.append(result.average_slot_utility)
            bounds.append(single_target_upper_bound(n, 4, P))
            testbed.append(weather_limited_average(n, seed=n))
        emit(
            render_figure8_panel(
                1, SENSOR_COUNTS, ideal, upper_bounds=bounds
            )
            + "\n(testbed-like, weather-limited sim): "
            + ", ".join(f"n={n}:{u:.4f}" for n, u in zip(SENSOR_COUNTS, testbed))
        )
        # Shape: monotone, above the paper's panel floor, below the bound.
        assert all(b >= a - 1e-12 for a, b in zip(ideal, ideal[1:]))
        assert all(u >= 0.92 for u in ideal)
        for u, b in zip(ideal, bounds):
            assert u <= b + 1e-12
            assert u >= 0.97 * b
        for t, u in zip(testbed, ideal):
            assert t <= u + 1e-9

    def test_headline_n100(self):
        """Sec. VI-B headline: greedy 0.9834 vs bound 0.99938 at n=100."""
        ideal = solve(single_target_problem(100), method="greedy")
        bound = single_target_upper_bound(100, 4, P)
        measured = weather_limited_average(100, periods=60, seed=9)
        emit(
            "Sec. VI-B headline (n=100, m=1):\n"
            f"  ideal greedy       : {ideal.average_slot_utility:.6f}\n"
            f"  upper bound U*     : {bound:.6f}   (paper printed 0.999380)\n"
            f"  testbed-like sim   : {measured:.6f}   (paper measured 0.983408764)"
        )
        assert ideal.average_slot_utility == pytest.approx(bound)
        # The weather-limited run lands in the paper's measured ballpark:
        # clearly below the bound but still >= 0.9.
        assert 0.90 <= measured < bound


class TestPanelsBCD:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_fig8_multi_target(self, m):
        values = []
        for n in SENSOR_COUNTS:
            result = solve(multi_target_problem(n, m), method="greedy")
            values.append(result.average_utility_per_target)
        bounds = [single_target_upper_bound(n, 4, P) for n in SENSOR_COUNTS]
        emit(render_figure8_panel(m, SENSOR_COUNTS, values, upper_bounds=bounds))
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        # Paper panels (b)-(d) floors: 0.98 / 0.99 / 0.995 at their
        # y-axes; our shared-coverage model stays near the bound too.
        assert all(u >= 0.92 for u in values)
        for u, b in zip(values, bounds):
            assert u <= b + 1e-12


class TestBenchmarks:
    def test_bench_greedy_n100_single_target(self, benchmark):
        problem = single_target_problem(100)
        result = benchmark(solve, problem, "greedy")
        assert result.average_slot_utility > 0.99

    def test_bench_greedy_n100_m4(self, benchmark):
        problem = multi_target_problem(100, 4)
        result = benchmark(solve, problem, "greedy")
        assert result.average_utility_per_target > 0.99
