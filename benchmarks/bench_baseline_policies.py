"""Related-work baseline comparison: threshold policies vs the paper.

The activation policies the paper positions itself against ([1], [7],
[12]: Kar / Krishnamurthy / Jaggi) are *threshold* rules over the
number of active sensors -- near-optimal when the utility is
count-based, blind to sensor identity.  The paper's claim is that for
multi-target submodular utilities, identity-aware scheduling matters.
This bench runs the comparison the related-work section implies:

- single-target count utility: threshold(n/T) == greedy (the prior
  work's regime -- no gap, as expected);
- geometric multi-target utility: the planned greedy schedule beats
  both threshold rules (the paper's regime -- the gap appears; and the
  *myopic* utility-aware variant even loses to blind rotation, showing
  the planning step itself carries weight).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    ChargingPeriod,
    DiskSensingModel,
    HomogeneousDetectionUtility,
    SchedulingProblem,
    TargetSystem,
    coverage_sets,
    solve,
    uniform_deployment,
)
from repro.analysis.report import format_table
from repro.coverage.matrix import ensure_coverable
from repro.policies import (
    GreedyPeriodicPolicy,
    ThresholdPolicy,
    UtilityAwareThresholdPolicy,
    sustainable_threshold,
)
from repro.sim import SensorNetwork, SimulationEngine

PERIOD = ChargingPeriod.paper_sunny()
SLOTS = 30 * 4  # 30 periods


def run_policy(policy, n, utility):
    network = SensorNetwork(n, PERIOD, utility)
    return SimulationEngine(network, policy).run(SLOTS)


def geometric_utility(n, m, seed):
    sensing = DiskSensingModel(radius=21.0, p=0.4)
    deployment = ensure_coverable(
        uniform_deployment(num_sensors=n, num_targets=m, rng=seed), sensing
    )
    return TargetSystem.homogeneous_detection(
        coverage_sets(deployment, sensing), p=0.4
    )


class TestSingleTargetRegime:
    def test_threshold_matches_greedy_on_count_utility(self):
        """Prior work's regime: identity does not matter; no gap."""
        n = 24
        utility = HomogeneousDetectionUtility(range(n), p=0.4)
        k = sustainable_threshold(n, 4)
        threshold = run_policy(ThresholdPolicy(k), n, utility)
        greedy = run_policy(GreedyPeriodicPolicy(), n, utility)
        # Steady state (skip the priming period).
        t_mean = float(threshold.accumulator.per_slot_series()[4:].mean())
        g_mean = float(greedy.accumulator.per_slot_series()[4:].mean())
        emit(
            f"single-target count utility (n={n}): "
            f"threshold(K={k}) {t_mean:.4f} vs greedy {g_mean:.4f}"
        )
        assert t_mean == pytest.approx(g_mean, abs=0.02)


class TestMultiTargetRegime:
    def test_identity_gap_appears(self):
        """The paper's regime: the *planned* greedy schedule beats both
        threshold rules.  Notably the myopic utility-aware threshold
        lands *below* blind rotation here: grabbing the best-marginal
        sensors each slot desynchronizes the recharge pipeline, so
        utility-awareness without planning can hurt -- the planning
        step, not just the submodular objective, is the contribution."""
        n, m = 60, 12
        rows = []
        means = {}
        for seed in (3,):
            utility = geometric_utility(n, m, seed)
            k = sustainable_threshold(n, 4)
            for name, policy in (
                ("blind threshold", ThresholdPolicy(k)),
                ("aware threshold", UtilityAwareThresholdPolicy(k)),
                ("greedy (paper)", GreedyPeriodicPolicy()),
            ):
                result = run_policy(policy, n, utility)
                steady = float(
                    result.accumulator.per_slot_series()[4:].mean()
                ) / utility.num_targets
                means[name] = steady
                rows.append([name, steady])
        emit(
            f"multi-target geometric utility (n={n}, m={m})\n"
            + format_table(["policy", "avg utility/target"], rows, "{:.4f}")
        )
        assert means["greedy (paper)"] > means["aware threshold"]
        assert means["greedy (paper)"] > means["blind threshold"]


class TestBenchmarks:
    def test_bench_threshold_simulation(self, benchmark):
        n = 24
        utility = HomogeneousDetectionUtility(range(n), p=0.4)

        def run():
            return run_policy(ThresholdPolicy(6), n, utility)

        result = benchmark(run)
        assert result.num_slots == SLOTS

    def test_bench_aware_threshold_simulation(self, benchmark):
        n, m = 40, 8
        utility = geometric_utility(n, m, 1)
        k = sustainable_threshold(n, 4)

        def run():
            return run_policy(UtilityAwareThresholdPolicy(k), n, utility)

        result = benchmark(run)
        assert result.num_slots == SLOTS
