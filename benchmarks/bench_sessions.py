"""Session benchmark: warm delta re-solve vs cold re-plan.

The sessions subsystem exists so that one failed sensor does not cost
a whole Algorithm-1 re-run.  This bench pins that claim: a stream of
single-sensor-failure deltas is applied to a live
:class:`~repro.sessions.session.Session` (warm consistency -- scoped
repair around the vacated slot), and every post-delta live set is also
re-planned cold (:func:`~repro.core.repair.greedy_repair`, the exact
path an ``exact``-consistency session or a fresh ``POST /v1/solve``
would run).

Two families are measured at n in {200, 1000}:

- **homogeneous detection** -- the paper's Eq. 1 objective.  Warm and
  cold provably agree (balanced slot counts score identically), so the
  per-slot utility multisets are asserted equal float-for-float before
  timing is trusted.  Cold greedy is O(n^2)-ish here (every placement
  shifts every candidate's gain, so CELF re-evaluates constantly),
  while a warm repair touches a handful of slots: the headline >= 5x
  floor is pinned on this family.
- **weighted coverage** -- warm promises feasibility plus repaired
  quality, not bit-equality; the bench asserts the warm incumbent
  keeps >= 95% of the cold utility on every step.  The speedup floor
  is parity-plus (>= 1.5x), not 5x: on sparse covers CELF is itself
  quasi-incremental (most gains collapse to zero and are never
  re-evaluated, so a cold solve is ~40 ms at n = 1000), while
  best-move repair must still scan O(live) candidates per round
  because sub-saturation coverage keeps candidate gains dense.

Results land in ``BENCH_sessions.json`` at the repo root.  Pinned
shape (full mode): >= 5x warm-over-cold on the n = 1000
single-failure stream for the detection family, >= 1.5x with >= 0.95
retained utility for weighted coverage.

Run standalone with ``python benchmarks/bench_sessions.py [--quick]``;
``--quick`` shrinks the workload for the CI ``sessions-smoke`` job
(the floors relax to >= 1x, correctness is still asserted).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit
from repro.core.problem import SchedulingProblem
from repro.core.repair import greedy_repair
from repro.energy.period import ChargingPeriod
from repro.sessions import Session, delta_from_dict, period_utility_of
from repro.utility.coverage_count import WeightedCoverageUtility
from repro.utility.detection import HomogeneousDetectionUtility

PERIOD = ChargingPeriod.paper_sunny()  # rho = 3, T = 4

SENSOR_COUNTS = (200, 1000)
QUICK_COUNTS = (200,)
FAILURES = 20
QUICK_FAILURES = 8
ELEMENTS_PER_SENSOR = 8

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sessions.json"


def homogeneous_problem(n: int) -> SchedulingProblem:
    # p is small on purpose: at n = 1000 a slot holds ~250 sensors, and
    # with the paper's p = 0.4 the per-slot utility saturates to 1.0 in
    # float (0.6^72 < 1 ulp) -- every placement gain rounds to exactly
    # 0.0 and tie-breaking, not balance, decides the counts.  p = 0.01
    # keeps (1-p)^250 ~ 0.08, so gains stay representable and the
    # warm-equals-cold multiset assertion is meaningful.
    return SchedulingProblem(
        num_sensors=n,
        period=PERIOD,
        utility=HomogeneousDetectionUtility(range(n), p=0.01),
    )


def coverage_problem(n: int, seed: int = 7) -> SchedulingProblem:
    rng = np.random.default_rng(seed)
    num_elements = 2 * n
    covers = {
        v: {
            int(e)
            for e in rng.choice(
                num_elements, size=ELEMENTS_PER_SENSOR, replace=False
            )
        }
        for v in range(n)
    }
    weights = {
        e: float(w)
        for e, w in enumerate(rng.uniform(0.5, 2.0, size=num_elements))
    }
    return SchedulingProblem(
        num_sensors=n,
        period=PERIOD,
        utility=WeightedCoverageUtility(covers, weights),
    )


def slot_utility_multiset(assignment, utility, slots):
    return sorted(
        utility.value(
            frozenset(v for v, t in assignment.items() if t == slot)
        )
        for slot in range(slots)
    )


def measure_failure_stream(problem, failures: int, exact_family: bool) -> dict:
    """Apply ``failures`` single-sensor failures warm; cold-plan each
    successor live set; return totals, speedup and quality."""
    session = Session(problem, consistency="warm")
    slots = problem.slots_per_period
    rng = np.random.default_rng(13)
    warm_seconds = 0.0
    cold_seconds = 0.0
    worst_ratio = 1.0
    for _ in range(failures):
        victim = int(rng.choice(sorted(session.live_sensors())))
        delta = delta_from_dict({"kind": "sensor-failed", "sensor": victim})

        start = time.perf_counter()
        outcome = session.apply(delta)
        warm_seconds += time.perf_counter() - start

        live = sorted(session.live_sensors())
        start = time.perf_counter()
        cold = dict(
            greedy_repair(live, slots, problem.utility).assignment
        )
        cold_seconds += time.perf_counter() - start

        cold_utility = period_utility_of(cold, problem.utility, slots)
        if exact_family:
            assert slot_utility_multiset(
                session.assignment, problem.utility, slots
            ) == slot_utility_multiset(cold, problem.utility, slots), (
                "warm homogeneous repair diverged from the cold plan"
            )
        else:
            ratio = (
                outcome.period_utility / cold_utility
                if cold_utility
                else 1.0
            )
            worst_ratio = min(worst_ratio, ratio)
            assert ratio >= 0.95, (
                f"warm incumbent kept only {ratio:.3f} of cold utility"
            )
    return {
        "sensors": problem.num_sensors,
        "failures": failures,
        "warm_seconds": warm_seconds,
        "cold_seconds": cold_seconds,
        "speedup": cold_seconds / warm_seconds,
        "warm_ms_per_delta": 1000.0 * warm_seconds / failures,
        "cold_ms_per_solve": 1000.0 * cold_seconds / failures,
        "worst_utility_ratio": worst_ratio,
    }


def measure(quick: bool = False) -> dict:
    counts = QUICK_COUNTS if quick else SENSOR_COUNTS
    failures = QUICK_FAILURES if quick else FAILURES
    return {
        "bench": "sessions",
        "quick": quick,
        "config": {
            "sensor_counts": list(counts),
            "failures_per_stream": failures,
            "slots_per_period": PERIOD.slots_per_period,
            "elements_per_sensor": ELEMENTS_PER_SENSOR,
            "cpu_count": os.cpu_count(),
        },
        "homogeneous": [
            measure_failure_stream(
                homogeneous_problem(n), failures, exact_family=True
            )
            for n in counts
        ],
        "weighted_coverage": [
            measure_failure_stream(
                coverage_problem(n), failures, exact_family=False
            )
            for n in counts
        ],
    }


#: Per-family speedup floors at the largest n (see module docstring
#: for why coverage pins parity-plus rather than the headline 5x).
SPEEDUP_FLOORS = {"homogeneous": 5.0, "weighted_coverage": 1.5}


def check_floors(document: dict) -> None:
    """The pinned shape for the full (non-quick) run."""
    for family, floor in SPEEDUP_FLOORS.items():
        by_n = {row["sensors"]: row for row in document[family]}
        big = by_n[max(by_n)]
        assert big["speedup"] >= floor, (
            f"{family} n={big['sensors']}: single-failure deltas only "
            f"{big['speedup']:.2f}x over cold re-solve (floor {floor}x)"
        )
        assert big["worst_utility_ratio"] >= 0.95


class TestSessionDeltas:
    def test_warm_deltas_beat_cold_resolve(self):
        document = measure(quick=False)
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        check_floors(document)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI workload: correctness still asserted, speedup "
        "floors relaxed to >= 1x",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the document without writing BENCH_sessions.json",
    )
    args = parser.parse_args()
    document = measure(quick=args.quick)
    print(json.dumps(document, indent=2))
    if not args.no_write:
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    if args.quick:
        for family in ("homogeneous", "weighted_coverage"):
            worst = min(row["speedup"] for row in document[family])
            assert worst >= 1.0, (
                f"quick {family} workload regressed: {worst:.2f}x"
            )
    else:
        check_floors(document)


if __name__ == "__main__":
    main()
