"""Incremental-kernel benchmark: lazy greedy + simulate, old vs new.

Measures the wall-clock effect of the stateful marginal-gain kernels in
:mod:`repro.utility.incremental` against the from-scratch evaluation
path they replace (recovered exactly via ``REPRO_INCREMENTAL=0``):

1. **lazy greedy** -- Algorithm 1 (CELF variant) on weighted-coverage
   instances at n in {100, 300, 1000}.  The legacy path recomputes the
   covered-element set from the whole slot set on every stale heap
   entry (O(|S| d) per evaluation); the incremental evaluator keeps
   per-element cover counters and answers in O(d).
2. **simulate** -- a 200-slot run of the paper's evaluation
   configuration (multi-target homogeneous detection, p = 0.4) under
   the greedy periodic policy.  Periodic operation revisits the same
   per-slot active sets every period, so the accumulator's
   :class:`~repro.utility.incremental.SlotValueMemo` answers all but
   the first period's evaluations from cache.

Both comparisons assert **bit-for-bit equality** first -- identical
placement traces (every gain float) for greedy, identical per-slot
utility series for simulate -- so the speedup is measured between
provably interchangeable paths.  Results land in ``BENCH_kernels.json``
at the repo root.  Pinned shape (full mode): >= 5x on the n = 1000
greedy solve and >= 2x on the 200-slot simulate.

Run standalone with ``python benchmarks/bench_kernels.py [--quick]``;
``--quick`` shrinks the workload for CI smoke (equality is still
asserted exactly, the speedup floors are relaxed).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit
from repro.core.greedy import GreedyTrace, greedy_schedule
from repro.core.problem import SchedulingProblem
from repro.energy.period import ChargingPeriod
from repro.policies.greedy_periodic import GreedyPeriodicPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.network import SensorNetwork
from repro.utility.coverage_count import WeightedCoverageUtility
from repro.utility.target_system import TargetSystem

PERIOD = ChargingPeriod.paper_sunny()

GREEDY_SENSOR_COUNTS = (100, 300, 1000)
GREEDY_QUICK_COUNTS = (100, 300)
ELEMENTS_PER_SENSOR = 8

SIM_SENSORS = 120
SIM_TARGETS = 300
SIM_SLOTS = 200
SIM_QUICK_SLOTS = 60

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"


def coverage_problem(n: int, seed: int = 7) -> SchedulingProblem:
    """Weighted max-coverage instance: n sensors over 2n elements."""
    rng = np.random.default_rng(seed)
    num_elements = 2 * n
    covers = {
        v: {
            int(e)
            for e in rng.choice(
                num_elements, size=ELEMENTS_PER_SENSOR, replace=False
            )
        }
        for v in range(n)
    }
    weights = {
        e: float(w)
        for e, w in enumerate(rng.uniform(0.5, 2.0, size=num_elements))
    }
    return SchedulingProblem(
        num_sensors=n,
        period=PERIOD,
        utility=WeightedCoverageUtility(covers, weights),
    )


def sim_network(seed: int = 11) -> SensorNetwork:
    """The paper's Sec. VI-B shape: multi-target detection, p = 0.4."""
    rng = np.random.default_rng(seed)
    covers = []
    for _ in range(SIM_TARGETS):
        size = int(rng.integers(20, 61))
        covers.append(
            frozenset(
                int(v)
                for v in rng.choice(SIM_SENSORS, size=size, replace=False)
            )
        )
    system = TargetSystem.homogeneous_detection(covers, p=0.4)
    return SensorNetwork(SIM_SENSORS, PERIOD, system)


def _with_toggle(flag: str, fn):
    """Run ``fn`` under REPRO_INCREMENTAL=flag, returning (value, secs)."""
    previous = os.environ.get("REPRO_INCREMENTAL")
    os.environ["REPRO_INCREMENTAL"] = flag
    try:
        start = time.perf_counter()
        value = fn()
        return value, time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop("REPRO_INCREMENTAL", None)
        else:
            os.environ["REPRO_INCREMENTAL"] = previous


def measure_greedy(counts) -> list:
    rows = []
    for n in counts:
        problem = coverage_problem(n)
        legacy_trace = GreedyTrace()
        incremental_trace = GreedyTrace()
        legacy, legacy_seconds = _with_toggle(
            "0", lambda: greedy_schedule(problem, trace=legacy_trace)
        )
        fast, incremental_seconds = _with_toggle(
            "1", lambda: greedy_schedule(problem, trace=incremental_trace)
        )
        # Bit-for-bit proof: every placement AND every gain float.
        assert legacy == fast, f"n={n}: schedules diverged"
        assert legacy_trace.steps == incremental_trace.steps, (
            f"n={n}: placement traces diverged"
        )
        rows.append(
            {
                "sensors": n,
                "legacy_seconds": legacy_seconds,
                "incremental_seconds": incremental_seconds,
                "speedup": legacy_seconds / incremental_seconds,
                "total_utility": legacy_trace.total_utility,
            }
        )
    return rows


def measure_simulate(num_slots: int) -> dict:
    def run():
        # Fresh network per run: batteries mutate during simulation.
        return SimulationEngine(sim_network(), GreedyPeriodicPolicy()).run(
            num_slots
        )

    legacy, legacy_seconds = _with_toggle("0", run)
    fast, incremental_seconds = _with_toggle("1", run)
    legacy_series = legacy.accumulator.per_slot_series()
    fast_series = fast.accumulator.per_slot_series()
    # Bit-for-bit proof: the whole per-slot utility series.
    assert np.array_equal(legacy_series, fast_series), (
        "simulate per-slot utilities diverged"
    )
    return {
        "sensors": SIM_SENSORS,
        "targets": SIM_TARGETS,
        "slots": num_slots,
        "legacy_seconds": legacy_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": legacy_seconds / incremental_seconds,
        "average_slot_utility": float(legacy_series.mean()),
    }


def measure(quick: bool = False) -> dict:
    counts = GREEDY_QUICK_COUNTS if quick else GREEDY_SENSOR_COUNTS
    slots = SIM_QUICK_SLOTS if quick else SIM_SLOTS
    return {
        "bench": "kernels",
        "quick": quick,
        "config": {
            "greedy_sensor_counts": list(counts),
            "elements_per_sensor": ELEMENTS_PER_SENSOR,
            "sim_slots": slots,
            "cpu_count": os.cpu_count(),
        },
        "lazy_greedy": measure_greedy(counts),
        "simulate": measure_simulate(slots),
    }


def check_floors(document: dict) -> None:
    """The pinned shape for the full (non-quick) run."""
    by_n = {row["sensors"]: row for row in document["lazy_greedy"]}
    big = by_n[max(by_n)]
    assert big["speedup"] >= 5.0, (
        f"n={big['sensors']} lazy greedy only "
        f"{big['speedup']:.2f}x with incremental kernels"
    )
    sim = document["simulate"]
    assert sim["speedup"] >= 2.0, (
        f"{sim['slots']}-slot simulate only {sim['speedup']:.2f}x "
        "with the slot-value memo"
    )


class TestIncrementalKernels:
    def test_speedups_with_bit_equality(self):
        document = measure(quick=False)
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        check_floors(document)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI workload: exact equality still asserted, "
        "speedup floors relaxed to >= 1x",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the document without writing BENCH_kernels.json",
    )
    args = parser.parse_args()
    document = measure(quick=args.quick)
    print(json.dumps(document, indent=2))
    if not args.no_write:
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    if args.quick:
        # Equality was asserted inside measure(); just sanity-check the
        # kernels are not a slowdown on the smoke workload.
        by_n = {row["sensors"]: row for row in document["lazy_greedy"]}
        big = by_n[max(by_n)]
        assert big["speedup"] >= 1.0, (
            f"quick greedy workload regressed: {big['speedup']:.2f}x"
        )
    else:
        check_floors(document)


if __name__ == "__main__":
    main()
