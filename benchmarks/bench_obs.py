"""Observability overhead benchmark: instrumentation must be ~free.

The ``repro.obs`` design contract is that metrics/tracing/events cost
nothing measurable on the hot paths unless a consumer is attached:
engine metric handles are resolved once at construction, a slot then
pays a few lock-protected adds, and event/trace call sites pay one
``None`` check.  This module measures that claim on the acceptance
workload -- a 200-slot simulation -- three ways:

1. **enabled** -- the default: registry recording on, no sink/tracer
   (what every ordinary run pays);
2. **disabled** -- ``MetricsRegistry.disable()``, the ``REPRO_OBS=0``
   path (the pre-observability baseline);
3. **events** -- recording on *plus* a JSONL sink attached (the cost
   of actually narrating every slot to disk).

Each variant is timed as best-of-``REPEATS`` interleaved runs (min is
the noise-robust statistic for a deterministic workload).  The
document lands in ``BENCH_obs.json`` at the repo root; the pinned
shape is enabled-vs-disabled overhead **< 5%**.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.core.greedy import greedy_schedule
from repro.core.problem import SchedulingProblem
from repro.energy.period import ChargingPeriod
from repro.obs import events as obs_events
from repro.obs.events import EventSink
from repro.obs.registry import MetricsRegistry, get_registry
from repro.policies.schedule_policy import SchedulePolicy
from repro.sim.engine import SimulationEngine
from repro.sim.network import SensorNetwork
from repro.utility.detection import HomogeneousDetectionUtility

PERIOD = ChargingPeriod.paper_sunny()
N = 20
SLOTS = 200
REPEATS = 7
MAX_OVERHEAD = 0.05

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"


def make_policy() -> SchedulePolicy:
    problem = SchedulingProblem(
        num_sensors=N,
        period=PERIOD,
        utility=HomogeneousDetectionUtility(range(N), p=0.4),
        num_periods=SLOTS // PERIOD.slots_per_period + 1,
    )
    return SchedulePolicy(greedy_schedule(problem))


def run_once(policy: SchedulePolicy) -> float:
    """One 200-slot simulation; returns its wall time."""
    network = SensorNetwork(
        N, PERIOD, HomogeneousDetectionUtility(range(N), p=0.4)
    )
    engine = SimulationEngine(network, policy)
    start = time.perf_counter()
    result = engine.run(SLOTS)
    elapsed = time.perf_counter() - start
    assert result.num_slots == SLOTS
    return elapsed


def measure() -> dict:
    policy = make_policy()
    run_once(policy)  # warm every code path before timing

    enabled_walls, disabled_walls, events_walls = [], [], []
    sink_path = BENCH_PATH.with_name("BENCH_obs_events.jsonl")
    for _ in range(REPEATS):
        # Interleave variants so drift (thermal, scheduler) hits all
        # three equally instead of biasing whichever ran last.
        MetricsRegistry.enable()
        enabled_walls.append(run_once(policy))

        MetricsRegistry.disable()
        try:
            disabled_walls.append(run_once(policy))
        finally:
            MetricsRegistry.enable()

        sink_path.unlink(missing_ok=True)
        sink = EventSink(sink_path)
        previous = obs_events.set_sink(sink)
        try:
            events_walls.append(run_once(policy))
        finally:
            obs_events.set_sink(previous)
            sink.close()
    emitted_events = sum(1 for _ in open(sink_path, encoding="utf-8"))
    sink_path.unlink(missing_ok=True)

    enabled, disabled = min(enabled_walls), min(disabled_walls)
    with_events = min(events_walls)
    return {
        "bench": "obs",
        "config": {
            "sensors": N,
            "slots": SLOTS,
            "repeats": REPEATS,
            "cpu_count": os.cpu_count(),
            "statistic": "min",
        },
        "simulate_200_slots": {
            "disabled_seconds": disabled,
            "enabled_seconds": enabled,
            "overhead_fraction": enabled / disabled - 1.0,
            "events_sink_seconds": with_events,
            "events_sink_overhead_fraction": with_events / disabled - 1.0,
            "events_emitted_per_run": emitted_events,
        },
        "registry_after_runs": {
            "sim_slots_total": get_registry().sample_value(
                "repro_sim_slots_total"
            ),
        },
    }


class TestObsOverhead:
    def test_metrics_overhead_under_five_percent(self):
        document = measure()
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")

        sim = document["simulate_200_slots"]
        assert sim["overhead_fraction"] < MAX_OVERHEAD, (
            f"metrics overhead {sim['overhead_fraction']:.1%} exceeds "
            f"{MAX_OVERHEAD:.0%} on the {SLOTS}-slot simulate"
        )
        # The registry really was recording during the enabled runs.
        assert document["registry_after_runs"]["sim_slots_total"] > 0
        assert sim["events_emitted_per_run"] >= SLOTS
