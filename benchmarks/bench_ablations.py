"""Ablations over the design choices DESIGN.md calls out.

1. **Naive vs lazy greedy** -- identical schedules, different work
   (Sec. IV-A-2's algorithm vs our CELF-style acceleration).
2. **LP rounding repair**: iterative re-rounding vs greedy
   deactivation (Sec. IV-A-1's two repair strategies).
3. **Periodic repetition vs per-period re-planning** (Thm. 4.3 says
   repetition is enough; re-planning each period buys nothing in the
   stationary setting).
4. **Sensitivity to rho and p** -- how the achieved average utility
   moves with the recharge ratio and the detection probability.
5. **Local-search polish** -- how much of the greedy/optimal gap a
   best-improvement reassignment pass closes.
6. **Curvature certificates** -- the 1/(1+c) sharpening of the paper's
   1/2 bound, checked against observed ratios.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    ChargingPeriod,
    HomogeneousDetectionUtility,
    SchedulingProblem,
    solve,
)
from repro.analysis.report import format_table
from repro.core.greedy import greedy_schedule
from repro.core.lp import lp_schedule

from tests.conftest import random_target_system


def target_problem(n=60, m=5, rho=3.0, seed=0, periods=1):
    rng = np.random.default_rng(seed)
    utility = random_target_system(n, m, rng, p_low=0.4, p_high=0.4)
    return SchedulingProblem(
        num_sensors=n,
        period=ChargingPeriod.from_ratio(rho),
        utility=utility,
        num_periods=periods,
    )


class TestLazyVsNaive:
    def test_identical_output(self):
        problem = target_problem()
        lazy = greedy_schedule(problem, lazy=True)
        naive = greedy_schedule(problem, lazy=False)
        assert lazy.period_utility(problem.utility) == pytest.approx(
            naive.period_utility(problem.utility)
        )

    def test_bench_lazy_n60(self, benchmark):
        problem = target_problem()
        benchmark(greedy_schedule, problem, True)

    def test_bench_naive_n60(self, benchmark):
        problem = target_problem()
        benchmark(greedy_schedule, problem, False)


class TestLpRepairStrategies:
    def test_iteration_vs_deactivation(self):
        problem = target_problem(n=10, m=3, periods=3)
        rows = []
        for label, max_iter in (("iterative repair", 50), ("deactivate-only", 0)):
            utils, dropped = [], []
            for seed in range(8):
                result = lp_schedule(
                    problem, rng=seed, max_rounding_iterations=max_iter
                )
                utils.append(result.schedule.total_utility(problem.utility))
                dropped.append(result.deactivated)
            rows.append(
                [label, float(np.mean(utils)), float(np.mean(dropped))]
            )
        emit(
            "LP rounding repair ablation\n"
            + format_table(
                ["strategy", "mean utility", "mean dropped"], rows, "{:.4f}"
            )
        )
        # Iterative repair drops nothing; deactivation drops some
        # activations but both stay feasible (validated inside).
        assert rows[0][2] == 0.0
        # Re-rounding should not do worse than throwing activations away.
        assert rows[0][1] >= rows[1][1] - 0.05


class TestPeriodicVsReplan:
    def test_replanning_buys_nothing_when_stationary(self):
        """Thm. 4.3's practical content: with a stationary utility the
        repeated one-period schedule equals per-period re-planning."""
        problem = target_problem(periods=4)
        repeated = solve(problem, method="greedy").total_utility
        single = solve(problem.with_num_periods(1), method="greedy").total_utility
        assert repeated == pytest.approx(4 * single)


class TestSensitivity:
    def test_rho_sweep(self):
        rows = []
        for rho in (1.0, 2.0, 3.0, 5.0, 7.0):
            n = 60
            problem = SchedulingProblem(
                num_sensors=n,
                period=ChargingPeriod.from_ratio(rho),
                utility=HomogeneousDetectionUtility(range(n), p=0.4),
            )
            value = solve(problem, method="greedy").average_slot_utility
            rows.append([rho, int(rho) + 1, value])
        emit(
            "sensitivity: rho sweep (n=60, p=0.4)\n"
            + format_table(["rho", "T slots", "avg utility"], rows, "{:.4f}")
        )
        # Larger rho -> fewer sensors per slot -> lower utility.
        values = [row[2] for row in rows]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_p_sweep(self):
        rows = []
        for p in (0.1, 0.2, 0.4, 0.6, 0.8):
            n = 40
            problem = SchedulingProblem(
                num_sensors=n,
                period=ChargingPeriod.paper_sunny(),
                utility=HomogeneousDetectionUtility(range(n), p=p),
            )
            value = solve(problem, method="greedy").average_slot_utility
            rows.append([p, value])
        emit(
            "sensitivity: p sweep (n=40, rho=3)\n"
            + format_table(["p", "avg utility"], rows, "{:.4f}")
        )
        values = [row[1] for row in rows]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_bench_lp_pipeline(self, benchmark):
        problem = target_problem(n=10, m=3, periods=2)
        result = benchmark(lp_schedule, problem, 3)
        assert result.schedule is not None


class TestLocalSearchPolish:
    def test_gap_closed_by_polish(self):
        from repro.core.local_search import greedy_with_local_search
        from repro.core.optimal import optimal_value

        rows = []
        greedy_gaps, polished_gaps = [], []
        for seed in range(10):
            problem = target_problem(n=6, m=3, rho=2.0, seed=400 + seed)
            utility = problem.utility
            greedy = greedy_schedule(problem).period_utility(utility)
            polished = greedy_with_local_search(problem).period_utility(utility)
            opt = optimal_value(problem)
            if opt <= 0:
                continue
            greedy_gaps.append(1 - greedy / opt)
            polished_gaps.append(1 - polished / opt)
        rows = [
            ["greedy", float(np.mean(greedy_gaps)), float(np.max(greedy_gaps))],
            [
                "greedy + local search",
                float(np.mean(polished_gaps)),
                float(np.max(polished_gaps)),
            ],
        ]
        emit(
            "local-search polish (gap to optimum, 10 instances)\n"
            + format_table(["method", "mean gap", "max gap"], rows, "{:.5f}")
        )
        assert np.mean(polished_gaps) <= np.mean(greedy_gaps) + 1e-12

    def test_bench_polish(self, benchmark):
        from repro.core.local_search import greedy_with_local_search

        problem = target_problem(n=30, m=4, seed=7)
        benchmark(greedy_with_local_search, problem)


class TestStochasticGreedy:
    def test_quality_speed_tradeoff(self):
        from repro.core.stochastic_greedy import stochastic_greedy_schedule

        problem = target_problem(n=120, m=8, seed=11)
        exact = greedy_schedule(problem).period_utility(problem.utility)
        rows = []
        for eps in (0.5, 0.1, 0.02):
            values = [
                stochastic_greedy_schedule(
                    problem, epsilon=eps, rng=s
                ).period_utility(problem.utility)
                for s in range(5)
            ]
            rows.append([eps, float(np.mean(values)), float(np.mean(values)) / exact])
        emit(
            "stochastic greedy vs exact (n=120, m=8)\n"
            + format_table(["epsilon", "mean value", "vs exact"], rows, "{:.4f}")
        )
        # Tightest epsilon within 5% of the exact greedy.
        assert rows[-1][2] >= 0.95

    def test_bench_exact_greedy_n120(self, benchmark):
        problem = target_problem(n=120, m=8, seed=11)
        benchmark(greedy_schedule, problem)

    def test_bench_stochastic_greedy_n120(self, benchmark):
        from repro.core.stochastic_greedy import stochastic_greedy_schedule

        problem = target_problem(n=120, m=8, seed=11)
        benchmark(stochastic_greedy_schedule, problem, 0.1, 3)


class TestLpVariants:
    def test_periodic_lp_matches_full_horizon(self):
        from repro.core.lp import lp_relaxation

        problem = target_problem(n=8, m=3, periods=4)
        full = lp_relaxation(problem)
        periodic = lp_relaxation(problem, periodic=True)
        emit(
            f"LP variants: full-horizon obj {full.objective:.4f} vs "
            f"periodic x alpha {periodic.objective:.4f}"
        )
        assert periodic.objective == pytest.approx(full.objective, rel=1e-6)

    def test_bench_full_horizon_lp(self, benchmark):
        from repro.core.lp import lp_relaxation

        problem = target_problem(n=10, m=3, periods=6)
        benchmark(lp_relaxation, problem)

    def test_bench_periodic_lp(self, benchmark):
        from repro.core.lp import lp_relaxation

        problem = target_problem(n=10, m=3, periods=6)
        benchmark(lp_relaxation, problem, True)


class TestCurvatureCertificates:
    def test_certificates_vs_observed(self):
        from repro.analysis.curvature import total_curvature
        from repro.core.optimal import optimal_value

        rows = []
        for p in (0.1, 0.4, 0.8):
            n = 6
            problem = SchedulingProblem(
                num_sensors=n,
                period=ChargingPeriod.from_ratio(2.0),
                utility=HomogeneousDetectionUtility(range(n), p=p),
            )
            report = total_curvature(problem.utility)
            greedy = greedy_schedule(problem).period_utility(problem.utility)
            opt = optimal_value(problem)
            observed = greedy / opt if opt > 0 else 1.0
            assert observed >= report.guarantee - 1e-9
            rows.append([p, report.curvature, report.guarantee, observed])
        emit(
            "curvature certificates (n=6, rho=2)\n"
            + format_table(
                ["p", "curvature c", "1/(1+c) bound", "observed ratio"],
                rows,
                "{:.4f}",
            )
        )
