"""Sec. V reproduction: the random charging model and rho'.

The paper's Sec. V replaces fixed discharge with event-driven drain
(Poisson arrivals rate lambda_a, exponential durations mean lambda_d)
and random recharge (normal T_r), defines the effective ratio
rho' = mean(T_r)/mean(T_d), and plugs rho' into the LP-based solution
(extending the greedy scheme is left open).  We regenerate:

- the rho' arithmetic across utilization levels;
- an LP schedule planned under the snapped rho', executed in the
  simulator under the true stochastic model, vs. a schedule planned
  under the naive rho (which overestimates drain);
- detection statistics under the event model.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import ChargingPeriod, HomogeneousDetectionUtility, SchedulingProblem, solve
from repro.analysis.report import format_table
from repro.policies import SchedulePolicy
from repro.sim import (
    PoissonEventProcess,
    RandomChargingModel,
    SensorNetwork,
    SimulationEngine,
    effective_ratio,
)
from repro.sim.random_model import snapped_effective_period

BASE = ChargingPeriod.paper_sunny()  # rho = 3
N = 12
P = 0.4


def run_planned_under_random(planning_period, arrival_rate, mean_duration, seed):
    """Plan greedily for ``planning_period``, execute under the event model."""
    utility = HomogeneousDetectionUtility(range(N), p=P)
    problem = SchedulingProblem(
        num_sensors=N, period=planning_period, utility=utility, num_periods=30
    )
    planned = solve(problem, method="greedy")
    network = SensorNetwork(N, BASE, utility)  # true hardware: BASE rates
    model = RandomChargingModel(
        BASE, arrival_rate=arrival_rate, mean_duration=mean_duration, rng=seed
    )
    sim = SimulationEngine(
        network, SchedulePolicy(planned.periodic), charging_model=model
    ).run(problem.total_slots)
    return sim


class TestEffectiveRatio:
    def test_rho_prime_table(self):
        rows = []
        for rate, duration in [(1.0, 2.0), (0.5, 1.0), (0.25, 1.0), (0.1, 1.0)]:
            u = min(1.0, rate * duration)
            rho_prime = effective_ratio(rate, duration, BASE)
            snapped = snapped_effective_period(rate, duration, BASE).rho
            rows.append([rate, duration, u, rho_prime, snapped])
        emit(
            "Sec. V effective ratio rho'\n"
            + format_table(
                ["lambda_a", "lambda_d", "utilization", "rho'", "snapped"],
                rows,
                "{:.3f}",
            )
        )
        # Saturated sensing reduces to the deterministic rho.
        assert rows[0][3] == pytest.approx(3.0)
        # Utilization scales rho' linearly below saturation.
        assert rows[1][3] == pytest.approx(1.5)
        assert rows[2][3] == pytest.approx(0.75)


def staggered_duty_schedule(
    num_sensors, active_slots, period_slots
):
    """rho'-aware plan: each sensor active ``active_slots`` consecutive
    slots out of every ``period_slots``, phases spread evenly.

    Under the event model the mean discharge time stretches from 1 slot
    to ``1/u`` slots, so the sustainable duty cycle is
    ``(T_d/u) / (T_d/u + T_r)`` -- here 2 active + 3 recharge = period 5
    at utilization 0.5.  Deterministic planning cannot express the
    stretched activation with the plain one-slot schedule; this helper
    builds the stretched periodic schedule directly.
    """
    from repro.core.schedule import UnrolledSchedule

    sets = [set() for _ in range(period_slots)]
    for v in range(num_sensors):
        phase = (v * period_slots) // num_sensors
        for k in range(active_slots):
            sets[(phase + k) % period_slots].add(v)
    one_period = tuple(frozenset(s) for s in sets)
    return UnrolledSchedule(
        slots_per_period=period_slots,
        active_sets=one_period * 40,  # tiled over the simulation horizon
        rho_at_most_one=True,
    )


class TestPlanningWithRhoPrime:
    def test_rho_prime_plan_beats_naive_plan_at_low_utilization(self):
        """At utilization 0.5 the mean discharge time doubles (rho' = 1.5):
        a sensor can sustain 2 active slots out of 5.  The rho'-aware
        staggered plan activates ~2.4x more sensor-slots than the naive
        rho = 3 plan and collects strictly more utility."""
        rate, duration = 0.5, 1.0
        assert effective_ratio(rate, duration, BASE) == pytest.approx(1.5)

        utility = HomogeneousDetectionUtility(range(N), p=P)
        total_slots = 120
        naive_utils, tuned_utils = [], []
        for seed in range(5):
            naive = run_planned_under_random(BASE, rate, duration, seed)
            naive_utils.append(naive.average_slot_utility)

            tuned_plan = staggered_duty_schedule(N, active_slots=2, period_slots=5)
            network = SensorNetwork(N, BASE, utility)
            model = RandomChargingModel(
                BASE, arrival_rate=rate, mean_duration=duration, rng=seed
            )
            sim = SimulationEngine(
                network, SchedulePolicy(tuned_plan), charging_model=model
            ).run(total_slots)
            tuned_utils.append(sim.average_slot_utility)
        emit(
            "Sec. V planning comparison (utilization 0.5, 5 seeds)\n"
            + format_table(
                ["plan", "avg utility/slot"],
                [
                    ["naive rho=3 (1 of 4)", float(np.mean(naive_utils))],
                    ["rho'-aware (2 of 5)", float(np.mean(tuned_utils))],
                ],
                "{:.4f}",
            )
        )
        assert np.mean(tuned_utils) > np.mean(naive_utils)

    def test_saturated_case_no_gain(self):
        # At utilization >= 1 the effective ratio equals rho: the tuned
        # plan is the same plan.
        assert snapped_effective_period(1.0, 2.0, BASE).rho == BASE.rho


class TestDetectionUnderRandomModel:
    def test_event_detection_statistics(self):
        utility = HomogeneousDetectionUtility(range(N), p=P)
        problem = SchedulingProblem(
            num_sensors=N, period=BASE, utility=utility, num_periods=60
        )
        planned = solve(problem, method="greedy")
        events = PoissonEventProcess(
            num_targets=1,
            arrival_rate=0.5,
            mean_duration=2.0,
            detection_probabilities=[{v: P for v in range(N)}],
            rng=5,
        )
        network = SensorNetwork(N, BASE, utility)
        sim = SimulationEngine(
            network, SchedulePolicy(planned.periodic), event_process=events
        ).run(problem.total_slots)
        outcome = sim.detection
        assert outcome is not None
        emit(
            f"Sec. V detection: {outcome.events_total} events, "
            f"rate {outcome.detection_rate:.3f} "
            f"(scheduled per-slot utility {planned.average_slot_utility:.3f})"
        )
        # Multi-slot events are detected at least at the per-slot utility.
        assert outcome.detection_rate >= planned.average_slot_utility - 0.05


class TestBenchmarks:
    def test_bench_random_model_simulation(self, benchmark):
        def run():
            return run_planned_under_random(BASE, 0.5, 1.0, seed=1)

        sim = benchmark(run)
        assert sim.num_slots == 120
