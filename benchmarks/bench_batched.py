"""Batched-solving benchmark: cross-instance kernels vs the serial loop.

Measures :func:`repro.batched.greedy.solve_batch` against a serial
``[solve(p, method="greedy") for p in problems]`` loop of *distinct*
instances (no dedup, no cache -- the workload the batch kernels exist
for), and the end-to-end effect through
:func:`repro.runtime.executor.solve_many` under ``REPRO_BATCHED=1`` vs
``0``.

Both comparisons assert **bit-for-bit equality** first -- identical
canonical result payloads per instance -- so every speedup is measured
between provably interchangeable paths.  Results land in
``BENCH_batched.json`` at the repo root.

Pinned shape (full mode): the batched kernels reach **>= 5x per-call
speedup at batch width 32** (homogeneous-detection, n = 120), and the
distinct-instance serve path through ``solve_many`` clears >= 3x.
Everything here is single-core by design -- the batch kernels trade
process-pool parallelism for vectorization, so the serve-throughput
gain is bounded by the kernel speedup on one core, not by the machine's
core count; the JSON records that ceiling explicitly.

Run standalone with ``python benchmarks/bench_batched.py [--quick]``;
``--quick`` shrinks the workload for CI smoke (equality is still
asserted exactly, the speedup floors are relaxed to sanity checks).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit
from repro.batched.greedy import solve_batch
from repro.core.problem import SchedulingProblem
from repro.core.solver import solve
from repro.energy.period import ChargingPeriod
from repro.runtime.cache import result_to_payload
from repro.runtime.executor import solve_many
from repro.utility.coverage_count import WeightedCoverageUtility
from repro.utility.detection import (
    DetectionUtility,
    HomogeneousDetectionUtility,
)
from repro.utility.logsum import LogSumUtility

PERIOD = ChargingPeriod.paper_sunny()

#: (family, batch width, sensors per instance) rows of the full sweep.
KERNEL_ROWS = (
    ("homogeneous-detection", 8, 120),
    ("homogeneous-detection", 32, 120),
    ("detection", 32, 120),
    ("logsum", 32, 120),
    ("coverage", 32, 120),
)
KERNEL_QUICK_ROWS = (
    ("homogeneous-detection", 8, 30),
    ("detection", 8, 30),
)

SERVE_BATCH = 32
SERVE_SENSORS = 120
SERVE_QUICK_BATCH = 8
SERVE_QUICK_SENSORS = 30

#: The pinned floors for the full run: per-call kernel speedup on the
#: flagship row, and the (kernel-bounded, single-core) serve speedup.
KERNEL_FLOOR = 5.0
SERVE_FLOOR = 3.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_batched.json"


def make_problem(family: str, n: int, seed: int) -> SchedulingProblem:
    """One distinct instance of the named batch-kernel family."""
    rng = np.random.default_rng(seed)
    if family == "homogeneous-detection":
        utility = HomogeneousDetectionUtility(
            range(n), p=float(rng.uniform(0.3, 0.5))
        )
    elif family == "detection":
        utility = DetectionUtility(
            {v: float(rng.uniform(0.2, 0.7)) for v in range(n)}
        )
    elif family == "logsum":
        utility = LogSumUtility(
            {v: float(rng.integers(1, 20)) for v in range(n)}
        )
    elif family == "coverage":
        num_elements = 2 * n
        covers = {
            v: {
                int(e)
                for e in rng.choice(num_elements, size=8, replace=False)
            }
            for v in range(n)
        }
        weights = {
            e: float(w)
            for e, w in enumerate(rng.uniform(0.5, 2.0, size=num_elements))
        }
        utility = WeightedCoverageUtility(covers, weights)
    else:
        raise ValueError(f"unknown benchmark family {family!r}")
    return SchedulingProblem(num_sensors=n, period=PERIOD, utility=utility)


def distinct_problems(family: str, width: int, n: int) -> list:
    return [
        make_problem(family, n, seed=1000 * width + i) for i in range(width)
    ]


def payload_bytes(result) -> str:
    payload = result_to_payload(result)
    payload.pop("solve_seconds", None)
    return json.dumps(payload, sort_keys=True)


def assert_identical(batched, serial, context: str) -> None:
    for i, (b, s) in enumerate(zip(batched, serial)):
        assert payload_bytes(b) == payload_bytes(s), (
            f"{context}: batched and serial results diverge on member {i}"
        )


def measure_kernel(rows) -> list:
    out = []
    for family, width, n in rows:
        problems = distinct_problems(family, width, n)
        start = time.perf_counter()
        serial = [solve(p, method="greedy") for p in problems]
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        batched = solve_batch(problems)
        batched_seconds = time.perf_counter() - start
        assert_identical(
            batched, serial, f"kernel family={family} width={width}"
        )
        out.append(
            {
                "family": family,
                "batch_width": width,
                "sensors": n,
                "serial_seconds": serial_seconds,
                "batched_seconds": batched_seconds,
                "speedup": serial_seconds / batched_seconds,
            }
        )
    return out


def measure_serve(width: int, n: int) -> dict:
    """Distinct-instance throughput through the executor front door."""
    problems = distinct_problems("homogeneous-detection", width, n)
    tasks = [(p, "greedy", None) for p in problems]

    def run(flag: str):
        previous = os.environ.get("REPRO_BATCHED")
        os.environ["REPRO_BATCHED"] = flag
        try:
            start = time.perf_counter()
            results, telemetry = solve_many(tasks)
            return results, telemetry, time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop("REPRO_BATCHED", None)
            else:
                os.environ["REPRO_BATCHED"] = previous

    serial_results, _, serial_seconds = run("0")
    batched_results, telemetry, batched_seconds = run("1")
    assert all(record.batched for record in telemetry), (
        "serve measurement did not ride the batch kernels"
    )
    assert_identical(batched_results, serial_results, "serve")
    return {
        "family": "homogeneous-detection",
        "batch_width": width,
        "sensors": n,
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "speedup": serial_seconds / batched_seconds,
        "serial_solves_per_second": width / serial_seconds,
        "batched_solves_per_second": width / batched_seconds,
        "note": (
            "single-core by design: the serve gain is bounded by the "
            "kernel speedup on one core, not by cpu_count"
        ),
    }


def measure(quick: bool = False) -> dict:
    kernel_rows = KERNEL_QUICK_ROWS if quick else KERNEL_ROWS
    width = SERVE_QUICK_BATCH if quick else SERVE_BATCH
    n = SERVE_QUICK_SENSORS if quick else SERVE_SENSORS
    return {
        "bench": "batched",
        "quick": quick,
        "config": {
            "kernel_rows": [list(row) for row in kernel_rows],
            "serve_batch_width": width,
            "serve_sensors": n,
            "cpu_count": os.cpu_count(),
        },
        "kernel": measure_kernel(kernel_rows),
        "serve": measure_serve(width, n),
    }


def check_floors(document: dict) -> None:
    """The pinned shape for the full (non-quick) run."""
    best = max(
        (
            row
            for row in document["kernel"]
            if row["batch_width"] >= 32
        ),
        key=lambda row: row["speedup"],
    )
    assert best["speedup"] >= KERNEL_FLOOR, (
        f"best batch>=32 kernel row ({best['family']}) only "
        f"{best['speedup']:.2f}x, floor {KERNEL_FLOOR}x"
    )
    serve = document["serve"]
    assert serve["speedup"] >= SERVE_FLOOR, (
        f"distinct-instance serve path only {serve['speedup']:.2f}x, "
        f"floor {SERVE_FLOOR}x"
    )


class TestBatchedKernels:
    def test_speedups_with_bit_equality(self):
        document = measure(quick=False)
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
        check_floors(document)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI workload: exact equality still asserted, "
        "speedup floors relaxed to >= 1x sanity",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the document without writing BENCH_batched.json",
    )
    args = parser.parse_args()
    document = measure(quick=args.quick)
    print(json.dumps(document, indent=2))
    if not args.no_write:
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    if args.quick:
        # Equality was asserted inside measure(); just sanity-check the
        # kernels are not a heavy slowdown on the smoke workload.
        best = max(row["speedup"] for row in document["kernel"])
        assert best >= 1.0, (
            f"quick batched workload regressed: best row {best:.2f}x"
        )
    else:
        check_floors(document)


if __name__ == "__main__":
    main()
