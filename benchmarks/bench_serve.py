"""Service-layer benchmark: throughput and tail latency over HTTP.

Three workloads against an in-process :class:`SolveService` on an
ephemeral port, all driven by 8 concurrent ``urllib`` clients (the
acceptance bar for the serving layer):

1. **duplicate** -- every client posts the *same* instance.  The first
   wave coalesces onto one solver invocation and every later request
   rides the admission-time cache fast path; the marginal-evaluation
   counter proves the solver ran exactly once.
2. **distinct** -- every request is a different instance (distinct
   fingerprints), so each pays a real solve through the batch pipeline.
3. **overload** -- a deliberately tiny queue (``max_queue=2``) with a
   long batch window, hit by 12 concurrent distinct requests: the
   service must shed with 429s rather than queue without bound.

The document lands in ``BENCH_serve.json`` at the repo root with
throughput (requests/second) and p50/p95 latency per workload.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from benchmarks.conftest import emit
from repro.obs.registry import get_registry
from repro.serve.app import ServiceConfig, SolveService

CLIENTS = 8
REQUESTS_PER_CLIENT = 25
SENSORS = 16

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def body_bytes(p: float, method: str = "greedy") -> bytes:
    document = {
        "problem": {
            "num_sensors": SENSORS,
            "rho": 3.0,
            "num_periods": 1,
            "utility": {"p": round(p, 6)},
        },
        "method": method,
    }
    return json.dumps(document).encode("utf-8")


def post(url: str, payload: bytes) -> int:
    request = urllib.request.Request(
        url + "/v1/solve",
        data=payload,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            reply.read()
            return reply.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


def quantile(samples, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def drive(url: str, payload_for) -> dict:
    """Hammer the service with CLIENTS threads; returns the stats."""
    latencies, statuses = [], []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS + 1)

    def client(worker: int) -> None:
        barrier.wait()
        for index in range(REQUESTS_PER_CLIENT):
            payload = payload_for(worker, index)
            start = time.perf_counter()
            status = post(url, payload)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                statuses.append(status)

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    total = CLIENTS * REQUESTS_PER_CLIENT
    return {
        "requests": total,
        "concurrency": CLIENTS,
        "ok": statuses.count(200),
        "shed_429": statuses.count(429),
        "wall_seconds": wall,
        "throughput_rps": total / wall,
        "latency_p50_seconds": quantile(latencies, 0.50),
        "latency_p95_seconds": quantile(latencies, 0.95),
    }


def measure() -> dict:
    registry = get_registry()
    registry.reset()
    with tempfile.TemporaryDirectory() as cache_dir:
        config = ServiceConfig(port=0, cache_dir=cache_dir, batch_window=0.005)
        with SolveService(config) as service:
            url = service.url
            duplicate = drive(url, lambda w, i: body_bytes(0.4))
            evals = registry.sample_value(
                "repro_greedy_marginal_evals_total", variant="lazy"
            )
            coalesced = registry.sample_value("repro_server_coalesced_total")
            fastpath = registry.sample_value(
                "repro_server_cache_fastpath_total"
            )
            duplicate["marginal_evals_total"] = evals
            duplicate["coalesced_total"] = coalesced
            duplicate["cache_fastpath_total"] = fastpath

            distinct = drive(
                url,
                lambda w, i: body_bytes(
                    0.2 + 0.5 * (w * REQUESTS_PER_CLIENT + i)
                    / (CLIENTS * REQUESTS_PER_CLIENT)
                ),
            )

    # Overload: a queue of 2 with a slow window cannot admit 12
    # concurrent distinct requests; the rest must be shed as 429s.
    registry.reset()
    tiny = ServiceConfig(
        port=0, use_cache=False, max_queue=2, batch_window=0.3
    )
    with SolveService(tiny) as service:
        url = service.url
        statuses = []
        lock = threading.Lock()
        barrier = threading.Barrier(12)

        def slam(index: int) -> None:
            barrier.wait()
            status = post(url, body_bytes(0.21 + 0.04 * index))
            with lock:
                statuses.append(status)

        threads = [
            threading.Thread(target=slam, args=(i,)) for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    overload = {
        "requests": len(statuses),
        "ok": statuses.count(200),
        "shed_429": statuses.count(429),
    }

    return {
        "bench": "serve",
        "config": {
            "sensors": SENSORS,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "cpu_count": os.cpu_count(),
        },
        "duplicate_instance": duplicate,
        "distinct_instances": distinct,
        "overload": overload,
    }


class TestServeBench:
    def test_throughput_coalescing_and_shedding(self):
        document = measure()
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")

        duplicate = document["duplicate_instance"]
        distinct = document["distinct_instances"]
        overload = document["overload"]

        # Every request under 8-way concurrency was answered.
        assert duplicate["ok"] == duplicate["requests"]
        assert distinct["ok"] == distinct["requests"]

        # 200 duplicate requests cost very few actual solves: the rest
        # were coalesced in flight or answered from the cache.  (A
        # single solve is the common case; scheduler jitter can split
        # the first wave across a couple of batches, each of which
        # would be a cache hit anyway.)
        free_rides = (
            duplicate["coalesced_total"] + duplicate["cache_fastpath_total"]
        )
        assert free_rides >= duplicate["requests"] - CLIENTS
        assert duplicate["throughput_rps"] > distinct["throughput_rps"]

        # Induced overload sheds rather than queueing without bound.
        assert overload["shed_429"] >= 1
        assert overload["ok"] >= 1
        assert overload["ok"] + overload["shed_429"] == overload["requests"]
