"""Fig. 7 reproduction: time vs light strength vs charging voltage.

The paper logs two rooftop nodes (5 and 6) over three July days and
concludes that light varies wildly while the charging voltage is flat
once harvesting starts -- hence T_r is constant within a day.  This
bench regenerates the same series from the solar substrate and checks
the conclusions, then times trace generation.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.report import ascii_series, format_table
from repro.solar.harvest import estimate_period_from_trace
from repro.solar.trace import generate_node_trace

NODES = (5, 6)
DAYS = 3
CAPACITY = 50.0  # J, sized so T_d ~ 15 min at TelosB active power


def _trace(node_id):
    return generate_node_trace(
        node_id=node_id, days=DAYS, battery_capacity=CAPACITY, rng=700 + node_id
    )


@pytest.fixture(scope="module")
def traces():
    return {node_id: _trace(node_id) for node_id in NODES}


def test_fig7_series_and_conclusions(traces):
    rows = []
    for node_id, trace in traces.items():
        rows.append(
            [
                f"node {node_id}",
                trace.daytime_light_variability(),
                trace.daytime_voltage_stability(),
            ]
        )
    emit(
        "Fig. 7 summary (3 sunny days)\n"
        + format_table(
            ["node", "light rel-std", "voltage rel-std"], rows, "{:.3f}"
        )
    )

    # Hourly midday profile of day 1 for node 5 (the plotted series).
    trace = traces[5]
    hours = np.arange(6, 20)
    light, volts = [], []
    for h in hours:
        window = [
            s
            for s in trace.samples
            if h * 60 <= s.minute < (h + 1) * 60
        ]
        light.append(float(np.mean([s.light for s in window])))
        volts.append(float(np.mean([s.voltage for s in window])))
    emit(ascii_series(list(hours), light, label="node 5, day 1: light (W/m^2)"))
    emit(
        ascii_series(
            list(hours),
            volts,
            label="node 5, day 1: charging voltage (V)",
            y_min=0.0,
            y_max=3.5,
        )
    )

    for trace in traces.values():
        # Paper's conclusion 1: light swings a lot.
        assert trace.daytime_light_variability() > 0.3
        # Paper's conclusion 2: voltage is flat while harvesting.
        assert trace.daytime_voltage_stability() < 0.05


def test_fig7_implies_fixed_rho(traces):
    """The downstream claim: the measured pattern fits T_d=15/T_r=45."""
    for trace in traces.values():
        period = estimate_period_from_trace(
            trace, capacity=CAPACITY, discharge_time=15.0
        )
        assert period is not None
        assert period.rho == 3.0
        assert period.recharge_time == pytest.approx(45.0)


def test_bench_trace_generation(benchmark):
    trace = benchmark(
        generate_node_trace,
        5,
        1,
        None,
        None,
        None,
        CAPACITY,
        0.055,
        60.0,
        123,
    )
    assert len(trace.samples) == 24 * 60
