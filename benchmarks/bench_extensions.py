"""Future-work extension studies (paper Sec. VIII).

The paper closes with two open problems; the reproduction implements
both, so they get proper studies rather than stubs:

1. **Partially recharged activation** -- sweep the ready threshold
   under weather-variable recharge: the paper's full-charge rule (1.0)
   vs progressively eager thresholds.  Eager activation recovers
   utility lost to slow-recharge periods (nodes rejoin earlier) at the
   cost of more, shorter activations.
2. **Heterogeneous charging patterns** -- half the fleet charges at
   rho = 3, half at rho = 1: the generalized phase-greedy planner vs
   (a) planning everything at the slow rho (safe, wasteful) and
   (b) planning everything at the fast rho (infeasible commands get
   refused).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import ChargingPeriod, HomogeneousDetectionUtility
from repro.analysis.report import format_table
from repro.energy.period import ChargingPeriod as CP
from repro.policies import (
    GreedyPeriodicPolicy,
    HeterogeneousGreedyPolicy,
    PartialChargeGreedyPolicy,
)
from repro.sim import RandomChargingModel, SensorNetwork, SimulationEngine
from repro.sim.batch import run_batch

SUNNY = ChargingPeriod.paper_sunny()
N = 16
SLOTS = 40 * 4


class TestPartialChargeStudy:
    def run_threshold(self, threshold, seeds=range(5)):
        utility = HomogeneousDetectionUtility(range(N), p=0.4)
        return run_batch(
            network_factory=lambda seed: SensorNetwork(
                N, SUNNY, utility, ready_threshold=threshold
            ),
            policy_factory=lambda seed: PartialChargeGreedyPolicy(),
            charging_factory=lambda seed: RandomChargingModel(
                SUNNY,
                arrival_rate=1.0,
                mean_duration=5.0,
                recharge_std=20.0,  # weather-variable recharge
                rng=seed,
            ),
            num_slots=SLOTS,
            seeds=seeds,
        )

    def test_threshold_sweep(self):
        rows = []
        means = {}
        for threshold in (1.0, 0.75, 0.5):
            batch = self.run_threshold(threshold)
            means[threshold] = batch.utility.mean
            rows.append(
                [threshold, batch.utility.mean, batch.refused.mean]
            )
        emit(
            "Sec. VIII study: partial-charge activation under variable "
            "recharge\n"
            + format_table(
                ["ready threshold", "avg utility/slot", "refused (mean)"],
                rows,
                "{:.4f}",
            )
        )
        # Eager thresholds must not hurt; under variable recharge they
        # recover utility (nodes rejoin the rotation earlier).
        assert means[0.5] >= means[1.0] - 0.02

    def test_full_charge_rule_is_baseline(self):
        batch = self.run_threshold(1.0, seeds=range(3))
        assert 0 < batch.utility.mean <= 1.0


class TestHeterogeneousStudy:
    FAST = CP.from_ratio(1.0, discharge_time=15.0)  # T = 2

    def build_network(self, seed):
        utility = HomogeneousDetectionUtility(range(N), p=0.4)
        node_periods = {v: self.FAST for v in range(N // 2)}
        return SensorNetwork(N, SUNNY, utility, node_periods=node_periods)

    def run_policy(self, policy_factory, seeds=range(3)):
        return run_batch(
            network_factory=self.build_network,
            policy_factory=policy_factory,
            num_slots=SLOTS,
            seeds=seeds,
        )

    def test_phase_greedy_beats_homogeneous_plans(self):
        hetero = self.run_policy(
            lambda seed: HeterogeneousGreedyPolicy(
                {v: 2 for v in range(N // 2)}
            )
        )
        slow_plan = self.run_policy(lambda seed: GreedyPeriodicPolicy())
        fast_plan = self.run_policy(
            lambda seed: HeterogeneousGreedyPolicy(
                {v: 2 for v in range(N)}  # pretends everyone is fast
            )
        )
        rows = [
            ["phase-greedy (true periods)", hetero.utility.mean, hetero.refused.mean],
            ["homogeneous slow plan", slow_plan.utility.mean, slow_plan.refused.mean],
            ["homogeneous fast plan", fast_plan.utility.mean, fast_plan.refused.mean],
        ]
        emit(
            "Sec. VIII study: heterogeneous charging (half rho=3, half rho=1)\n"
            + format_table(
                ["plan", "avg utility/slot", "refused (mean)"], rows, "{:.4f}"
            )
        )
        # Knowing the true per-node periods beats both misconfigurations.
        assert hetero.utility.mean > slow_plan.utility.mean
        assert hetero.utility.mean > fast_plan.utility.mean
        # The fast plan overcommits the slow half: refusals pile up.
        assert fast_plan.refused.mean > hetero.refused.mean

    def test_bench_phase_greedy_planning(self, benchmark):
        utility = HomogeneousDetectionUtility(range(N), p=0.4)
        from repro.policies.heterogeneous import plan_heterogeneous

        periods = {v: 2 if v < N // 2 else 4 for v in range(N)}
        plan = benchmark(plan_heterogeneous, periods, utility)
        assert plan.total_slots == 4
