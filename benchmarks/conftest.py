"""Shared helpers for the benchmark harness.

Every bench module reproduces one of the paper's tables or figures:
it *prints* the regenerated rows/series (run with ``-s`` to see them,
or read the captured output in the report) and *benchmarks* the
underlying computation with pytest-benchmark.  Assertions pin the
qualitative shape so a regression that changes who-wins or by-how-much
fails loudly.
"""

from __future__ import annotations

import sys

import pytest


def emit(text: str) -> None:
    """Print a reproduced figure/table block, flushed, with a separator."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()
