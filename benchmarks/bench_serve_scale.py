"""Cluster scaling benchmark: rps and tail latency vs worker count.

Boots a real :class:`~repro.cluster.service.ClusterService` (router +
N worker subprocesses) for each point in ``WORKER_COUNTS`` and drives
the open-loop :mod:`~repro.cluster.loadgen` harness through the router
in both canonical regimes:

- **duplicate** -- one instance repeated: fingerprint routing pins it
  to a single shard, so the cluster's win is the shared disk tier and
  coalescing, not parallelism;
- **distinct** -- every request a new instance: keys spread over the
  ring and each worker pays real solves.

Honesty notes, on purpose: this container is typically single-core, so
distinct-traffic rps should NOT be expected to scale linearly with
worker count -- the point of the curve is the measurement, not a
victory lap.  All runs share one cache directory with per-run writer
labels, so the aggregated sidecar stats at the end prove the shared
tier crossed process boundaries (``cross_hits > 0``: a later run's
worker served an entry an earlier run's worker wrote).

The document lands in ``BENCH_serve_scale.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from benchmarks.conftest import emit
from repro.cluster.loadgen import LoadgenConfig, run_loadgen
from repro.cluster.service import ClusterConfig, ClusterService
from repro.runtime.cache import aggregate_sidecar_stats

WORKER_COUNTS = (1, 2, 4)
MODES = ("duplicate", "distinct")
RPS = 20.0
DURATION = 2.0
CLIENTS = 6

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve_scale.json"

_EMPTY = {
    "hits": 0,
    "misses": 0,
    "stores": 0,
    "disk_hits": 0,
    "cross_hits": 0,
}


def cache_totals(cache_dir: str) -> dict:
    totals = aggregate_sidecar_stats(cache_dir)
    if totals is None:
        return dict(_EMPTY)
    return {field: totals[field] for field in _EMPTY}


def one_run(
    run_index: int, workers: int, mode: str, cache_dir: str, runtime_dir: str
) -> dict:
    """One (worker count, traffic mode) point through a fresh cluster."""
    before = cache_totals(cache_dir)
    cluster = ClusterService(
        ClusterConfig(
            workers=workers,
            port=0,
            runtime_dir=runtime_dir,
            cache_dir=cache_dir,
            request_timeout=30.0,
            # Unique per-run writer labels keep every run's sidecar (and
            # its cross-hit accounting) distinct in the shared store.
            service={
                "batch_window": 0.005,
                "cache_label": f"run{run_index}-{{shard}}",
            },
        )
    )
    with cluster:
        report = run_loadgen(
            LoadgenConfig(
                url=cluster.url,
                rps=RPS,
                duration=DURATION,
                clients=CLIENTS,
                mode=mode,
                timeout=20.0,
            )
        )
    after = cache_totals(cache_dir)
    return {
        "workers": workers,
        "mode": mode,
        "requests": report["requests"],
        "rps_target": report["rps_target"],
        "rps_achieved": report["rps_achieved"],
        "statuses": report["statuses"],
        "error_rate": report["error_rate"],
        "latency": report["latency"],
        "send_lateness_p95": report["send_lateness_p95"],
        "cache_delta": {
            field: after[field] - before[field] for field in _EMPTY
        },
    }


def measure() -> dict:
    runs = []
    with tempfile.TemporaryDirectory(prefix="repro-scale-") as scratch:
        cache_dir = os.path.join(scratch, "cache")
        for index, workers in enumerate(WORKER_COUNTS):
            for offset, mode in enumerate(MODES):
                run_index = index * len(MODES) + offset
                runs.append(
                    one_run(
                        run_index,
                        workers,
                        mode,
                        cache_dir,
                        os.path.join(scratch, f"run-{run_index}"),
                    )
                )
        totals = cache_totals(cache_dir)
        writers = aggregate_sidecar_stats(cache_dir)["writers"]
    return {
        "bench": "serve_scale",
        "config": {
            "worker_counts": list(WORKER_COUNTS),
            "modes": list(MODES),
            "rps_target": RPS,
            "duration_seconds": DURATION,
            "clients": CLIENTS,
            "cpu_count": os.cpu_count(),
        },
        "runs": runs,
        "shared_cache": {**totals, "writers": writers},
    }


class TestServeScaleBench:
    def test_rps_curves_and_shared_tier(self):
        document = measure()
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")

        for run in document["runs"]:
            label = f"{run['workers']}w/{run['mode']}"
            assert run["rps_achieved"] > 0, label
            latency = run["latency"]
            assert 0 < latency["p50"] <= latency["p95"] <= latency["max"], label
            ok = run["statuses"].get("200", 0)
            assert ok / run["requests"] >= 0.9, (label, run["statuses"])

        # Duplicate traffic must ride a cache/coalescing fast path:
        # cheaper at the median than cold distinct solves on the same
        # fleet size.
        by_key = {(r["workers"], r["mode"]): r for r in document["runs"]}
        for workers in document["config"]["worker_counts"]:
            dup = by_key[(workers, "duplicate")]
            dis = by_key[(workers, "distinct")]
            assert dup["latency"]["p50"] <= dis["latency"]["p50"] * 1.5

        # The shared tier crossed process boundaries: some worker served
        # an entry a *different* worker process wrote.
        shared = document["shared_cache"]
        assert shared["writers"] >= sum(WORKER_COUNTS)
        assert shared["cross_hits"] > 0
        assert shared["stores"] > 0
