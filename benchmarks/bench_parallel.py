"""Runtime subsystem benchmark: parallel farm + schedule cache.

Measures, on a 100-replicate solve batch (a sweep-shaped workload: a
few unique instances crossed with a seed axis, the shape of every
evaluation in the paper and in Buchsbaum et al. / Bar-Noy & Baumer's
randomized-sweep methodology):

1. **batch speedup** -- the pre-runtime baseline (a serial loop of
   ``solve`` calls, one per replicate) against the runtime path
   (``solve_many`` with ``jobs=4`` and a fresh schedule cache).  The
   runtime wins by (a) collapsing duplicate fingerprints so each unique
   instance is solved once and (b) farming the unique solves across
   workers; on a single-core CI box (a) carries the speedup and (b) is
   neutral, on multicore they compound.
2. **pool-only speedup** -- ``jobs=4`` vs ``jobs=1`` on all-unique
   instances with no cache: the honest measure of (b) alone.  Expect
   ~1x on one core; recorded (with the core count) rather than pinned.
3. **cache latency** -- a cold (miss) vs warm (hit) ``solve_cached`` on
   a 300-sensor instance: the repeat-solve latency a serving deployment
   sees.

The rows are emitted as ``BENCH_parallel.json`` at the repo root (and
printed) so downstream tooling can track the trajectory.  Pinned
shape: the runtime path is >= 2x the serial baseline on the replicate
batch, and a warm hit is >= 10x faster than the cold solve.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.core.problem import SchedulingProblem
from repro.core.solver import solve
from repro.energy.period import ChargingPeriod
from repro.runtime import ScheduleCache, solve_cached, solve_many
from repro.utility.detection import HomogeneousDetectionUtility

PERIOD = ChargingPeriod.paper_sunny()
P = 0.4
JOBS = 4

#: 4 unique instances x 25 seeds = the 100-replicate batch.
UNIQUE_SENSOR_COUNTS = (150, 200, 250, 300)
SEEDS_PER_INSTANCE = 25

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


def make_problem(n: int) -> SchedulingProblem:
    return SchedulingProblem(
        num_sensors=n,
        period=PERIOD,
        utility=HomogeneousDetectionUtility(range(n), p=P),
    )


def replicate_tasks():
    """The 100-replicate batch: unique instances crossed with seeds."""
    return [
        (make_problem(n), "greedy", seed)
        for seed in range(SEEDS_PER_INSTANCE)
        for n in UNIQUE_SENSOR_COUNTS
    ]


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def measure() -> dict:
    tasks = replicate_tasks()

    # 1. Serial baseline: what every workload did before the runtime.
    serial_results, serial_seconds = timed(
        lambda: [solve(p, method=m, rng=s) for p, m, s in tasks]
    )

    # 2. Runtime path: dedup + cache + jobs=4 worker farm.
    def runtime_run():
        return solve_many(tasks, jobs=JOBS, cache=ScheduleCache())

    (runtime_results, telemetry), runtime_seconds = timed(runtime_run)

    # Identical outputs or the comparison is meaningless.
    assert [r.schedule for r in runtime_results] == [
        r.schedule for r in serial_results
    ]

    # 3. Pool-only speedup on all-unique instances (no cache, no dedup).
    unique = [(make_problem(n), "greedy", None) for n in range(80, 120, 5)]
    (_, _), pool_serial_seconds = timed(lambda: solve_many(unique, jobs=1))
    (_, _), pool_parallel_seconds = timed(lambda: solve_many(unique, jobs=JOBS))

    # 4. Cold vs warm repeat-solve latency through the cache.
    big = make_problem(300)
    cache = ScheduleCache()
    (_, cold_status), cold_seconds = timed(
        lambda: solve_cached(big, cache=cache)
    )
    (_, warm_status), warm_seconds = timed(
        lambda: solve_cached(big, cache=cache)
    )
    assert (cold_status, warm_status) == ("miss", "hit")

    return {
        "bench": "parallel",
        "config": {
            "jobs": JOBS,
            "cpu_count": os.cpu_count(),
            "replicates": len(tasks),
            "unique_instances": len(UNIQUE_SENSOR_COUNTS),
            "sensor_counts": list(UNIQUE_SENSOR_COUNTS),
            "seeds_per_instance": SEEDS_PER_INSTANCE,
        },
        "batch": {
            "serial_seconds": serial_seconds,
            "runtime_seconds": runtime_seconds,
            "speedup": serial_seconds / runtime_seconds,
            "cache": {
                "hits": sum(1 for t in telemetry if t.cache == "hit"),
                "misses": sum(1 for t in telemetry if t.cache == "miss"),
            },
        },
        "pool_only": {
            "tasks": len(unique),
            "serial_seconds": pool_serial_seconds,
            "parallel_seconds": pool_parallel_seconds,
            "speedup": pool_serial_seconds / pool_parallel_seconds,
        },
        "cache_latency": {
            "sensors": 300,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
        },
    }


class TestParallelRuntime:
    def test_batch_and_cache_speedups(self):
        document = measure()
        emit(json.dumps(document, indent=2))
        BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")

        batch = document["batch"]
        assert batch["cache"]["misses"] == len(UNIQUE_SENSOR_COUNTS)
        assert batch["cache"]["hits"] == (
            document["config"]["replicates"] - len(UNIQUE_SENSOR_COUNTS)
        )
        assert batch["speedup"] >= 2.0, (
            f"runtime path only {batch['speedup']:.2f}x over serial"
        )
        warm = document["cache_latency"]
        assert warm["warm_speedup"] >= 10.0, (
            f"warm hit only {warm['warm_speedup']:.1f}x faster than cold"
        )

    def test_bench_warm_cached_solve(self, benchmark):
        cache = ScheduleCache()
        problem = make_problem(200)
        solve_cached(problem, cache=cache)  # prime

        def warm_hit():
            result, status = solve_cached(problem, cache=cache)
            assert status == "hit"
            return result

        result = benchmark(warm_hit)
        assert result.total_utility > 0
