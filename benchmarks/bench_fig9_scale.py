"""Fig. 9 reproduction: average utility vs #targets for n = 100..500.

Paper setup (Sec. VI-B): a larger simulated system driven by the
measured charging data; targets m = 10..50, sensors n = 100..500.
Reported shape: average utility per target >= 0.69 for n = 100-200,
>= 0.78 for n = 300-500, always >= 0.5 (corroborating the 1/2-approx),
decreasing mildly in m and increasing in n.

Our workload is geometric, mirroring "targets distributed in a
region": sensors and targets uniform in 100 m x 100 m, disk sensing of
radius 21 m at p = 0.4.  At n = 100 each target is covered by ~12
sensors (~3 active per slot), which puts the per-target utility right
at the paper's 0.69 floor; more sensors raise it from there.  (As with
Fig. 8, the ideal scheduler's absolute numbers at large n sit above the
paper's weather-limited testbed numbers; the floors and orderings are
the reproducible shape.)
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import (
    ChargingPeriod,
    DiskSensingModel,
    SchedulingProblem,
    TargetSystem,
    coverage_sets,
    solve,
    uniform_deployment,
)
from repro.analysis.report import render_figure9_table
from repro.coverage.matrix import ensure_coverable

PERIOD = ChargingPeriod.paper_sunny()
TARGET_COUNTS = [10, 20, 30, 40, 50]
SENSOR_COUNTS = [100, 200, 300, 400, 500]
RADIUS = 21.0
P = 0.4


def fig9_cell(n, m, seed):
    sensing = DiskSensingModel(radius=RADIUS, p=P)
    deployment = ensure_coverable(
        uniform_deployment(num_sensors=n, num_targets=m, rng=seed), sensing
    )
    covers = coverage_sets(deployment, sensing)
    utility = TargetSystem.homogeneous_detection(covers, p=P)
    problem = SchedulingProblem(num_sensors=n, period=PERIOD, utility=utility)
    return solve(problem, method="greedy").average_utility_per_target


@pytest.fixture(scope="module")
def fig9_data():
    data = {}
    for n in SENSOR_COUNTS:
        data[n] = [fig9_cell(n, m, seed=1000 + n + m) for m in TARGET_COUNTS]
    return data


def test_fig9_table_and_floors(fig9_data):
    emit(render_figure9_table(TARGET_COUNTS, fig9_data))

    # Paper's floors.
    for n in (100, 200):
        assert all(u >= 0.69 for u in fig9_data[n]), f"n={n} under 0.69"
    for n in (300, 400, 500):
        assert all(u >= 0.78 for u in fig9_data[n]), f"n={n} under 0.78"
    # "in either case, the average utility is no less than 0.5".
    for series in fig9_data.values():
        assert all(u >= 0.5 for u in series)


def test_fig9_monotone_in_sensors(fig9_data):
    # More sensors help at every target count.
    for j in range(len(TARGET_COUNTS)):
        column = [fig9_data[n][j] for n in SENSOR_COUNTS]
        for a, b in zip(column, column[1:]):
            assert b >= a - 0.02  # allow seed noise, forbid real drops


def test_fig9_mild_decrease_in_targets(fig9_data):
    # With fixed sensors, more targets dilute per-target coverage; the
    # drop from m=10 to m=50 is mild (the paper's curves are flat-ish).
    for n in SENSOR_COUNTS:
        series = fig9_data[n]
        assert series[-1] >= series[0] - 0.1


def test_bench_greedy_n500_m50(benchmark):
    sensing = DiskSensingModel(radius=RADIUS, p=P)
    deployment = ensure_coverable(
        uniform_deployment(num_sensors=500, num_targets=50, rng=7), sensing
    )
    utility = TargetSystem.homogeneous_detection(
        coverage_sets(deployment, sensing), p=P
    )
    problem = SchedulingProblem(num_sensors=500, period=PERIOD, utility=utility)
    result = benchmark(solve, problem, "greedy")
    assert result.average_utility_per_target >= 0.5
