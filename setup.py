"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so
``pip install -e .`` works on minimal offline environments that lack
the ``wheel`` package (pip falls back to ``setup.py develop`` with
``--no-use-pep517``).
"""

from setuptools import setup

setup()
