#!/usr/bin/env python
"""Time-varying monitoring priorities: scheduling with per-slot utilities.

The paper's analysis fixes one utility per slot, but Algorithm 1 never
uses stationarity -- it only needs each slot's utility to be
submodular.  The library exposes that generality through
``PerSlotUtility``: this example schedules a wildlife-monitoring
deployment where detection matters most at dawn and dusk (animal
activity peaks) by weighting the per-slot utility accordingly, and
shows how the greedy allocation shifts sensors into the high-priority
slots compared with the stationary schedule.

Run:  python examples/time_varying_priorities.py
"""

from repro import ChargingPeriod, HomogeneousDetectionUtility, SchedulingProblem
from repro.analysis import format_table
from repro.core.greedy import greedy_schedule
from repro.utility.operations import ScaledUtility
from repro.utility.target_system import PerSlotUtility

N = 16
P = 0.4

# One charging period = 4 slots of 15 min.  Map the period onto a
# dawn-centred hour: slot 0 = civil twilight (peak activity), slot 1 =
# sunrise (high), slots 2-3 = full daylight (baseline).
SLOT_WEIGHTS = [3.0, 2.0, 1.0, 1.0]
SLOT_NAMES = ["twilight", "sunrise", "morning", "day"]


def main() -> None:
    period = ChargingPeriod.paper_sunny()
    base = HomogeneousDetectionUtility(range(N), p=P)
    problem = SchedulingProblem(num_sensors=N, period=period, utility=base)

    stationary = greedy_schedule(problem)

    weighted = PerSlotUtility(
        [ScaledUtility(base, w) for w in SLOT_WEIGHTS]
    )
    prioritized = greedy_schedule(problem, slot_utilities=weighted)

    rows = []
    for slot in range(4):
        stat_set = stationary.active_sets()[slot]
        prio_set = prioritized.active_sets()[slot]
        rows.append(
            [
                f"{slot} ({SLOT_NAMES[slot]})",
                SLOT_WEIGHTS[slot],
                len(stat_set),
                base.value(stat_set),
                len(prio_set),
                base.value(prio_set),
            ]
        )
    print(
        format_table(
            [
                "slot",
                "weight",
                "stationary #",
                "stationary U",
                "weighted #",
                "weighted U",
            ],
            rows,
            "{:.3f}",
        )
    )

    stationary_value = sum(
        SLOT_WEIGHTS[t] * base.value(s)
        for t, s in enumerate(stationary.active_sets())
    )
    prioritized_value = sum(
        SLOT_WEIGHTS[t] * base.value(s)
        for t, s in enumerate(prioritized.active_sets())
    )
    print(
        f"\nweighted objective: stationary {stationary_value:.4f}, "
        f"priority-aware {prioritized_value:.4f} "
        f"({(prioritized_value / stationary_value - 1):+.1%})"
    )
    print(
        "The priority-aware schedule moves sensors from daylight slots "
        "into the twilight/sunrise slots, trading a little daytime "
        "coverage for detection where it counts."
    )


if __name__ == "__main__":
    main()
