#!/usr/bin/env python
"""Week-long monitoring with weather-driven re-planning (Sec. I, II-B).

The paper's long-term story: the charging pattern (T_d, T_r) is stable
within ~2 h of one weather condition but changes across days, so the
deployment should "dynamically choose mu_d and mu_r according to
different weather condition".  This example runs that loop end to end:

1. sample a week of weather from the Markov weather process;
2. generate the synthetic testbed trace for one node per day (the
   Fig. 7-style measurement) and run the 2-hour harvest estimator on it
   to recover each day's charging period;
3. compare, day by day, the greedy schedule planned for the *estimated*
   period against a static schedule planned once for sunny weather;
4. report the utility gap -- the value of adaptation.

Run:  python examples/weather_adaptive.py
"""

from repro import (
    ChargingPeriod,
    HomogeneousDetectionUtility,
    SchedulingProblem,
    generate_node_trace,
    solve,
)
from repro.analysis import format_table
from repro.energy.profiles import profile_for_weather
from repro.solar import MarkovWeatherProcess, WeatherCondition
from repro.solar.harvest import estimate_period_from_trace

SEED = 7
NUM_SENSORS = 24
P_DETECT = 0.4


def day_utility(period: ChargingPeriod, planned_for: ChargingPeriod) -> float:
    """Average per-slot utility of a schedule planned for ``planned_for``
    but *executed* under the true ``period``.

    If the plan assumes a shorter recharge than reality, activations are
    refused and coverage is lost; we model that combinatorially: a plan
    for period T' executed under true period T >= T' only realizes
    each sensor's activation every lcm-aligned T slots -- conservatively,
    we scale the per-slot utility by min(1, T'/T) active-density.
    """
    utility = HomogeneousDetectionUtility(range(NUM_SENSORS), p=P_DETECT)
    problem = SchedulingProblem(
        num_sensors=NUM_SENSORS, period=planned_for, utility=utility
    )
    planned = solve(problem, method="greedy")
    value = planned.average_slot_utility
    t_true = period.slots_per_period
    t_plan = planned_for.slots_per_period
    if t_plan < t_true:
        # Activations come up short: each sensor is only ready every
        # t_true slots, so a fraction of planned activations is refused.
        value *= t_plan / t_true
    return value


def main() -> None:
    weather_process = MarkovWeatherProcess(
        initial=WeatherCondition.SUNNY, rng=SEED
    )
    week = [WeatherCondition.SUNNY] + weather_process.forecast(6)

    sunny_period = profile_for_weather("sunny").period
    rows = []
    total_static = 0.0
    total_adaptive = 0.0
    for day, condition in enumerate(week):
        true_period = profile_for_weather(condition.value).period

        # Measure the day: synthetic testbed trace + 2-h estimator.
        trace = generate_node_trace(
            node_id=5,
            days=1,
            weather=[condition],
            battery_capacity=50.0,
            rng=SEED + day,
        )
        estimated = estimate_period_from_trace(
            trace, capacity=50.0, discharge_time=true_period.discharge_time
        )
        est_period = estimated if estimated is not None else sunny_period

        static_u = day_utility(true_period, planned_for=sunny_period)
        adaptive_u = day_utility(true_period, planned_for=est_period)
        total_static += static_u
        total_adaptive += adaptive_u
        rows.append(
            [
                day,
                condition.value,
                f"rho={true_period.rho:g}",
                f"rho_hat={est_period.rho:g}",
                static_u,
                adaptive_u,
            ]
        )

    print(
        format_table(
            ["day", "weather", "true", "estimated", "static util", "adaptive util"],
            rows,
            float_format="{:.4f}",
        )
    )
    gain = (total_adaptive - total_static) / max(total_static, 1e-12)
    print(f"\nweek total: static {total_static:.4f}, adaptive {total_adaptive:.4f}")
    print(f"adaptation gain over the week: {gain:+.1%}")


if __name__ == "__main__":
    main()
