#!/usr/bin/env python
"""City-scale scheduling: 1000 sensors, three greedy engines compared.

The paper's testbed has 100 motes; a city-scale air-quality network has
thousands.  This example shows how the three greedy engines scale:

- the literal Algorithm 1 (full scan every step, O(n^2 T) evaluations);
- the lazy (CELF-style) variant -- identical schedule, far less work;
- the stochastic subsampled variant -- approximate, sampling instead
  of caching.

All three run on the same 1000-sensor, 100-target instance.  The
punchline is instructive: *lazy evaluation wins outright*.  Stale-gain
caching exploits submodularity so well that at n = 1000 the exact
schedule costs well under a second, while the stochastic sampler --
which re-evaluates its whole sample every step -- is slower AND
approximate.  Subsampling pays off against the naive scan (quadratic),
not against CELF; if you have lazy greedy, use it.

Run:  python examples/city_scale.py
"""

import time

from repro import ChargingPeriod, SchedulingProblem, TargetSystem
from repro.analysis import format_table
from repro.core.greedy import greedy_schedule
from repro.core.stochastic_greedy import stochastic_greedy_schedule
from repro.coverage.deployment import make_rng

N = 1000
M = 100
SEED = 5


def build_instance():
    rng = make_rng(SEED)
    covers = []
    for _ in range(M):
        cover = {v for v in range(N) if rng.random() < 0.02}  # ~20 per target
        if not cover:
            cover = {int(rng.integers(N))}
        covers.append(frozenset(cover))
    utility = TargetSystem.homogeneous_detection(covers, p=0.4)
    return SchedulingProblem(
        num_sensors=N, period=ChargingPeriod.paper_sunny(), utility=utility
    )


def main() -> None:
    problem = build_instance()
    print(f"instance: {problem}, {M} targets (~20 covering sensors each)\n")

    rows = []

    start = time.perf_counter()
    lazy = greedy_schedule(problem, lazy=True)
    lazy_seconds = time.perf_counter() - start
    lazy_value = lazy.period_utility(problem.utility)
    rows.append(["lazy greedy (exact)", lazy_seconds, lazy_value, 1.0])

    small = SchedulingProblem(
        num_sensors=300,
        period=problem.period,
        utility=problem.utility.restricted(range(300)),
    )
    start = time.perf_counter()
    greedy_schedule(small, lazy=False)
    naive_seconds = time.perf_counter() - start
    print(
        f"(naive greedy at n=300 took {naive_seconds:.2f}s; the full "
        f"n=1000 run would be ~{naive_seconds * (1000 / 300) ** 2:.0f}s "
        "for the identical schedule -- skipped)\n"
    )

    for eps in (0.2, 0.05):
        start = time.perf_counter()
        approx = stochastic_greedy_schedule(problem, epsilon=eps, rng=SEED)
        seconds = time.perf_counter() - start
        value = approx.period_utility(problem.utility)
        rows.append(
            [f"stochastic (eps={eps})", seconds, value, value / lazy_value]
        )

    print(
        format_table(
            ["engine", "seconds", "period utility", "vs lazy"],
            rows,
            "{:.3f}",
        )
    )
    print(
        "\nLazy evaluation wins outright: exact Algorithm 1 output in "
        "well under a second at n=1000.  The stochastic sampler only "
        "beats the naive quadratic scan, not CELF -- its samples are "
        "nearly as big as the ground set under a partition constraint "
        "(s ~ (n/T) ln(1/eps)) and it cannot reuse stale gains."
    )


if __name__ == "__main__":
    main()
