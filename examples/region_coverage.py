#!/usr/bin/env python
"""Region monitoring: the weighted area utility of Eq. 2 (Fig. 3b).

Instead of discrete targets, the WSN monitors a whole region Omega.
The region is subdivided into the subregions induced by the sensing
disks; each subregion carries a preference weight, and the per-slot
utility is the covered weighted area.  This example:

1. deploys 30 sensors over a 100 m x 100 m region (disk radius 18 m);
2. computes the subregion arrangement and reports the cell count (the
   paper's Fig. 3b example has 38 cells for 3 regions);
3. weights a 'high-priority' quadrant 5x over the rest;
4. schedules with greedy vs. baselines and reports covered-area
   fractions per slot.

Run:  python examples/region_coverage.py
"""

from repro import (
    AreaCoverageUtility,
    ChargingPeriod,
    DiskSensingModel,
    SchedulingProblem,
    compute_subregions,
    solve,
    uniform_deployment,
)
from repro.analysis import format_table
from repro.coverage.arrangement import covered_area
from repro.utility.area import Subregion

SEED = 42


def main() -> None:
    deployment = uniform_deployment(num_sensors=30, rng=SEED)
    region = deployment.region
    sensing = DiskSensingModel(radius=18.0, p=0.4)
    disks = [sensing.region(p) for p in deployment.sensors]

    cells = compute_subregions(region, disks, resolution=250)
    union_area = covered_area(region, disks, resolution=250)
    print(
        f"arrangement: {len(cells)} coverage classes, union covers "
        f"{union_area:.0f} of {region.area:.0f} m^2 "
        f"({union_area / region.area:.1%})"
    )

    # Re-weight cells in the north-east quadrant 5x: the paper's w_i
    # preferences over subregions.  A cell is 'in' the quadrant if every
    # sensor covering it sits there; a coarse but deterministic proxy.
    def in_priority_quadrant(cell: Subregion) -> bool:
        return all(
            deployment.sensors[v].x > 50 and deployment.sensors[v].y > 50
            for v in cell.covered_by
        )

    weighted = [
        Subregion(
            covered_by=cell.covered_by,
            area=cell.area,
            weight=5.0 if in_priority_quadrant(cell) else 1.0,
        )
        for cell in cells
    ]
    utility = AreaCoverageUtility(weighted)
    print(f"total weighted area when all active: {utility.total_weighted_area:.0f}")

    period = ChargingPeriod.paper_sunny()
    problem = SchedulingProblem(
        num_sensors=deployment.num_sensors,
        period=period,
        utility=utility,
        num_periods=12,
    )

    rows = []
    for method in ("greedy", "balanced-random", "round-robin", "all-first-slot"):
        result = solve(problem, method=method, rng=SEED)
        fraction = result.average_slot_utility / utility.total_weighted_area
        rows.append([method, result.average_slot_utility, fraction])
    print()
    print(
        format_table(
            ["method", "avg weighted area/slot", "fraction of max"],
            rows,
            float_format="{:.2f}",
        )
    )

    # Show the per-slot spread of the greedy schedule: which slots cover
    # how much of the region.
    greedy = solve(problem, method="greedy").periodic
    assert greedy is not None
    print("\ngreedy per-slot coverage (one period):")
    for slot, active in enumerate(greedy.active_sets()):
        frac = utility.coverage_fraction(active)
        print(f"  slot {slot}: {len(active):2d} sensors, {frac:.1%} weighted area")


if __name__ == "__main__":
    main()
