#!/usr/bin/env python
"""Forest monitoring: multi-target coverage with geometric deployments.

The paper's motivating application (Sec. I): sensors deployed in a
forest to monitor environmental changes at a set of points of interest.
This example builds the full geometric pipeline:

1. deploy 120 sensors and 8 targets uniformly in a 100 m x 100 m region;
2. derive the coverage relation a_ij from a disk sensing model
   (radius 25 m, in-range detection probability 0.4);
3. assemble the multi-target utility of Eq. 1 (sum over targets of the
   detection utility restricted to V(O_i));
4. schedule with the greedy hill-climbing scheme and with baselines;
5. simulate a full working day and report per-target coverage quality
   plus empirical event-detection rates under the Sec. V event model.

Run:  python examples/forest_monitoring.py
"""

import numpy as np

from repro import (
    ChargingPeriod,
    DiskSensingModel,
    SchedulingProblem,
    TargetSystem,
    coverage_sets,
    solve,
    uniform_deployment,
)
from repro.analysis import format_table
from repro.coverage.matrix import detection_probabilities, ensure_coverable
from repro.policies import SchedulePolicy
from repro.sim import PoissonEventProcess, SensorNetwork, SimulationEngine

SEED = 2011  # the paper's year -- any fixed seed reproduces this run


def main() -> None:
    sensing = DiskSensingModel(radius=25.0, p=0.4)
    deployment = uniform_deployment(
        num_sensors=120, num_targets=8, rng=SEED
    )
    deployment = ensure_coverable(deployment, sensing)
    covers = coverage_sets(deployment, sensing)
    print(
        f"deployment: {deployment.num_sensors} sensors, "
        f"{deployment.num_targets} coverable targets"
    )
    for i, cover in enumerate(covers):
        print(f"  target {i}: covered by {len(cover)} sensors")

    utility = TargetSystem.homogeneous_detection(covers, p=0.4)
    period = ChargingPeriod.paper_sunny()
    problem = SchedulingProblem(
        num_sensors=deployment.num_sensors,
        period=period,
        utility=utility,
        num_periods=12,
    )

    rows = []
    schedules = {}
    for method in ("greedy", "balanced-random", "round-robin", "all-first-slot"):
        result = solve(problem, method=method, rng=SEED)
        schedules[method] = result.periodic
        rows.append(
            [
                method,
                result.average_slot_utility,
                result.average_utility_per_target,
            ]
        )
    print()
    print(format_table(["method", "avg utility/slot", "avg per target"], rows))

    # Simulate the greedy schedule for a day with Poisson events at each
    # target and measure the empirical detection rate.
    probs = detection_probabilities(deployment, sensing)
    events = PoissonEventProcess(
        num_targets=deployment.num_targets,
        arrival_rate=0.3,  # events per slot per target
        mean_duration=1.5,  # slots
        detection_probabilities=probs,
        rng=SEED,
    )
    network = SensorNetwork(deployment.num_sensors, period, utility)
    engine = SimulationEngine(
        network, SchedulePolicy(schedules["greedy"]), event_process=events
    )
    sim = engine.run(problem.total_slots)

    print(f"\nsimulated day: {sim.num_slots} slots")
    print(f"  average utility per target : {sim.average_utility_per_target:.4f}")
    outcome = sim.detection
    assert outcome is not None
    print(
        f"  events: {outcome.events_total} arrived, "
        f"{outcome.events_detected} detected "
        f"({outcome.detection_rate:.3f} rate)"
    )
    per_target = sim.accumulator.per_target_averages()
    assert per_target is not None
    worst = int(np.argmin(per_target))
    print(
        f"  weakest target: {worst} with per-slot utility "
        f"{per_target[worst]:.4f} ({len(covers[worst])} covering sensors)"
    )


if __name__ == "__main__":
    main()
