#!/usr/bin/env python
"""The solve service end to end: batching, coalescing, backpressure.

A deployment does not re-plan schedules on the motes; it asks a
planning service.  This example embeds the `repro serve` HTTP service
in-process (no separate terminal needed) and drives it with plain
``urllib`` -- the same requests ``curl`` would send -- to show the
three behaviors that make a solver safe to put behind a socket:

1. **caching** -- the second identical request is answered from the
   schedule cache without touching the solver;
2. **coalescing** -- eight concurrent clients posting the *same*
   instance cost one solver invocation (watch the marginal-evaluation
   counter);
3. **backpressure** -- a deliberately tiny queue sheds concurrent
   distinct requests with 429 instead of queueing without bound.

Run:  python examples/service_client.py
"""

import json
import tempfile
import threading
import urllib.error
import urllib.request

from repro.obs.registry import get_registry
from repro.serve.app import ServiceConfig, SolveService

BODY = {
    "problem": {
        "num_sensors": 12,
        "rho": 3.0,
        "num_periods": 1,
        "utility": {"p": 0.4},
    },
    "method": "greedy",
}


def post_solve(url: str, body: dict) -> tuple:
    request = urllib.request.Request(
        url + "/v1/solve",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> None:
    registry = get_registry()
    registry.reset()

    with tempfile.TemporaryDirectory() as cache_dir:
        config = ServiceConfig(port=0, cache_dir=cache_dir)
        with SolveService(config) as service:
            url = service.url
            print(f"service listening on {url}\n")

            print("-- caching ------------------------------------------")
            status, cold = post_solve(url, BODY)
            print(f"first request : {status}, cache={cold['cache']}")
            status, warm = post_solve(url, BODY)
            print(f"same request  : {status}, cache={warm['cache']}")
            assert cold["result"] == warm["result"]
            print("results identical byte for byte\n")

            print("-- coalescing ---------------------------------------")
            registry.reset()
            body = dict(BODY, problem=dict(BODY["problem"], utility={"p": 0.5}))
            barrier = threading.Barrier(8)
            outcomes = []

            def client():
                barrier.wait()
                outcomes.append(post_solve(url, body))

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            evals = registry.sample_value(
                "repro_greedy_marginal_evals_total", variant="lazy"
            )
            coalesced = registry.sample_value("repro_server_coalesced_total")
            print(f"8 concurrent identical requests -> all {set(s for s, _ in outcomes)}")
            print(f"marginal-utility evaluations    : {int(evals)} (one solve)")
            print(f"requests coalesced in flight    : {int(coalesced or 0)}\n")

        print("-- backpressure -------------------------------------")
        tiny = ServiceConfig(
            port=0, use_cache=False, max_queue=2, batch_window=0.3
        )
        with SolveService(tiny) as service:
            url = service.url
            barrier = threading.Barrier(10)
            statuses = []

            def slam(i):
                body = dict(
                    BODY,
                    problem=dict(
                        BODY["problem"], utility={"p": 0.2 + 0.05 * i}
                    ),
                )
                barrier.wait()
                statuses.append(post_solve(url, body)[0])

            threads = [
                threading.Thread(target=slam, args=(i,)) for i in range(10)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            print(
                f"10 concurrent distinct requests vs max_queue=2 -> "
                f"{statuses.count(200)}x 200, {statuses.count(429)}x 429"
            )
            print("the queue sheds load at the door instead of melting")


if __name__ == "__main__":
    main()
