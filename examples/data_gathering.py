#!/usr/bin/env python
"""Data gathering: does the schedule's sensed data actually reach the sink?

The paper's deployment collects environmental data to a base station
over multi-hop radio (Sec. I), and its lifecycle gives READY nodes
periodic wake-ups -- so asleep-but-charged nodes can forward packets
while PASSIVE (recharging) nodes are dead air.  The scheduling model
optimizes coverage only; this example closes the loop:

1. deploy 80 sensors + a sink at the region corner; derive the minimum
   radio range that connects the full network;
2. plan the greedy coverage schedule;
3. for each slot of the period, compute which nodes are awake (ACTIVE
   per the schedule + READY = not currently recharging) and the
   fraction of active sensors whose data can reach the sink;
4. compare radio ranges: at the connectivity threshold vs. a 25% margin.

Run:  python examples/data_gathering.py
"""

from repro import (
    ChargingPeriod,
    DiskSensingModel,
    SchedulingProblem,
    TargetSystem,
    coverage_sets,
    solve,
    uniform_deployment,
)
from repro.analysis import format_table
from repro.coverage.connectivity import (
    communication_graph,
    delivery_fraction,
    min_range_for_connectivity,
)
from repro.coverage.geometry import Point
from repro.coverage.matrix import ensure_coverable

SEED = 17
N = 80


def main() -> None:
    sensing = DiskSensingModel(radius=25.0, p=0.4)
    deployment = ensure_coverable(
        uniform_deployment(num_sensors=N, num_targets=10, rng=SEED), sensing
    )
    sink = Point(deployment.region.x_min, deployment.region.y_min)

    base_range = min_range_for_connectivity(deployment, sink, precision=0.2)
    print(f"minimum radio range for full connectivity: {base_range:.1f} m")

    utility = TargetSystem.homogeneous_detection(
        coverage_sets(deployment, sensing), p=0.4
    )
    problem = SchedulingProblem(
        num_sensors=deployment.num_sensors,
        period=ChargingPeriod.paper_sunny(),
        utility=utility,
    )
    schedule = solve(problem, method="greedy").periodic
    T = problem.slots_per_period

    rows = []
    for label, radio_range in (
        ("threshold", base_range),
        ("1.5x", 1.5 * base_range),
        ("2x", 2.0 * base_range),
        ("3x", 3.0 * base_range),
        ("4x", 4.0 * base_range),
    ):
        graph = communication_graph(deployment, radio_range, sink=sink)
        worst = 1.0
        mean = 0.0
        for slot in range(T):
            active = schedule.active_set(slot)
            # Awake relays in steady state: the active set (everyone
            # else is mid-recharge with T = rho + 1) plus unscheduled
            # sensors, which stay READY forever and can forward.
            unscheduled = set(range(deployment.num_sensors)) - set(
                schedule.assignment
            )
            awake = set(active) | unscheduled
            fraction = delivery_fraction(graph, active, relays=awake)
            worst = min(worst, fraction)
            mean += fraction / T
        rows.append([label, f"{radio_range:.1f}", mean, worst])

    print()
    print(
        format_table(
            ["radio range", "meters", "mean delivery", "worst slot"],
            rows,
            "{:.3f}",
        )
    )
    print(
        "\nAt the bare connectivity threshold the *full* network is "
        "connected, but a duty-cycled slot keeps only ~n/T sensors "
        "awake: the relay subgraph fragments and almost nothing reaches "
        "the sink.  Because the awake density drops by a factor of T, "
        "the radio range must grow by roughly sqrt(T) = 2x to restore "
        "delivery -- the intro's range/connectivity/power trade-off, "
        "quantified."
    )


if __name__ == "__main__":
    main()
