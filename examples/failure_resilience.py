#!/usr/bin/env python
"""Failure resilience: how gracefully the greedy schedule degrades.

A 30-day deployment loses motes -- rain gets into cases, batteries die,
radio commands drop.  The paper's submodular utility model implies
built-in redundancy: losing one of many covering sensors costs far less
than proportional utility.  This example quantifies that:

1. plan the greedy schedule for a 60-sensor, 10-target deployment;
2. run a month with increasing random node-death rates and with radio
   command loss, using the failure-injection layer;
3. report achieved utility vs. the healthy run, alongside the naive
   linear-degradation expectation;
4. close the loop: re-run the heaviest death scenarios through the
   self-healing runtime (report-driven failure detection plus
   cost-aware greedy schedule repair) and compare what each retains.

Run:  python examples/failure_resilience.py
"""

from repro import (
    ChargingPeriod,
    DiskSensingModel,
    SchedulingProblem,
    TargetSystem,
    coverage_sets,
    solve,
    uniform_deployment,
)
from repro.analysis import format_table
from repro.coverage.matrix import ensure_coverable
from repro.policies import SchedulePolicy, SelfHealingPolicy
from repro.sim import SensorNetwork, SimulationEngine
from repro.sim.failures import FailureInjectedPolicy, FailurePlan

SEED = 11
N, M = 60, 10
DAYS = 30
PERIODS_PER_DAY = 12


def main() -> None:
    sensing = DiskSensingModel(radius=28.0, p=0.4)
    deployment = ensure_coverable(
        uniform_deployment(num_sensors=N, num_targets=M, rng=SEED), sensing
    )
    utility = TargetSystem.homogeneous_detection(
        coverage_sets(deployment, sensing), p=0.4
    )
    period = ChargingPeriod.paper_sunny()
    problem = SchedulingProblem(
        num_sensors=N,
        period=period,
        utility=utility,
        num_periods=DAYS * PERIODS_PER_DAY,
    )
    planned = solve(problem, method="greedy")
    horizon = problem.total_slots

    def run(policy):
        network = SensorNetwork(N, period, utility)
        return SimulationEngine(network, policy).run(horizon)

    healthy = run(SchedulePolicy(planned.periodic))
    print(
        f"healthy month: avg utility/target {healthy.average_utility_per_target:.4f}"
    )

    rows = []
    for death_rate in (0.05, 0.10, 0.20, 0.40):
        plan = FailurePlan.random_deaths(
            N, death_rate, horizon=horizon, rng=SEED
        )
        policy = FailureInjectedPolicy(SchedulePolicy(planned.periodic), plan=plan)
        result = run(policy)
        retained = result.total_utility / healthy.total_utility
        # Naive expectation: utility falls linearly with dead sensors
        # (each death costs a full sensor-share for half the month on
        # average).  Redundancy should beat this handily.
        naive = 1 - 0.5 * len(plan.deaths) / N
        rows.append(
            [f"{death_rate:.0%}", len(plan.deaths), retained, naive]
        )
    print("\nnode deaths (uniform death time over the month):")
    print(
        format_table(
            ["death rate", "nodes lost", "utility retained", "linear model"],
            rows,
            "{:.4f}",
        )
    )

    rows = []
    for loss in (0.05, 0.15, 0.30):
        policy = FailureInjectedPolicy(
            SchedulePolicy(planned.periodic), command_loss=loss, rng=SEED
        )
        result = run(policy)
        retained = result.total_utility / healthy.total_utility
        rows.append(
            [f"{loss:.0%}", policy.dropped_commands, retained, 1 - loss]
        )
    print("\nradio command loss:")
    print(
        format_table(
            ["loss rate", "commands dropped", "utility retained", "linear model"],
            rows,
            "{:.4f}",
        )
    )
    print(
        "\nutility retained > linear model everywhere: submodular coverage\n"
        "redundancy absorbs a disproportionate share of the failures."
    )

    # Closing the loop: the oblivious policy above keeps sending the
    # original schedule to dead radios.  The self-healing runtime infers
    # which nodes stopped answering from the report stream alone and
    # re-plans the survivors with an incremental greedy repair.
    rows = []
    for death_rate in (0.20, 0.40):
        plan = FailurePlan.random_deaths(
            N, death_rate, horizon=horizon, rng=SEED
        )
        oblivious = run(
            FailureInjectedPolicy(SchedulePolicy(planned.periodic), plan=plan)
        )
        healing = SelfHealingPolicy(
            SchedulePolicy(planned.periodic), horizon=horizon
        )
        healed = run(FailureInjectedPolicy(healing, plan=plan))
        rows.append(
            [
                f"{death_rate:.0%}",
                len(plan.deaths),
                oblivious.total_utility / healthy.total_utility,
                healed.total_utility / healthy.total_utility,
                healing.repairs_performed,
            ]
        )
    print("\nself-healing runtime vs. oblivious baseline (node deaths):")
    print(
        format_table(
            ["death rate", "nodes lost", "oblivious", "self-healing", "repairs"],
            rows,
            "{:.4f}",
        )
    )
    print(
        "\nthe self-healing runtime recovers part of what redundancy alone\n"
        "cannot: survivors are re-phased to cover the holes the dead left."
    )


if __name__ == "__main__":
    main()
