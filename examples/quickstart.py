#!/usr/bin/env python
"""Quickstart: schedule 20 solar-powered sensors on one target.

Reproduces the paper's basic workflow end to end:

1. define the charging pattern measured on the testbed (sunny weather:
   T_d = 15 min, T_r = 45 min, so rho = 3 and the period is T = 4 slots);
2. define the detection utility U(S) = 1 - (1-p)^|S| with p = 0.4;
3. compute the greedy hill-climbing schedule (Algorithm 1);
4. compare against the enumerated optimum is too big here, so compare
   against the closed-form upper bound U* = 1 - (1-p)^ceil(n/T);
5. execute the schedule on the simulated hardware and confirm that the
   combinatorial utility is actually achieved joule-by-joule.

Run:  python examples/quickstart.py
"""

from repro import (
    ChargingPeriod,
    HomogeneousDetectionUtility,
    SchedulingProblem,
    single_target_upper_bound,
    solve,
)
from repro.analysis import render_schedule_gantt
from repro.policies import SchedulePolicy
from repro.sim import SensorNetwork, SimulationEngine


def main() -> None:
    num_sensors = 20
    p = 0.4

    period = ChargingPeriod.paper_sunny()
    print(f"charging period: {period}")

    utility = HomogeneousDetectionUtility(range(num_sensors), p=p)
    problem = SchedulingProblem(
        num_sensors=num_sensors,
        period=period,
        utility=utility,
        num_periods=12,  # L = 12 periods = 12 h of 15-min slots
    )

    result = solve(problem, method="greedy")
    print(f"\ngreedy schedule (one period): {result.periodic}")
    print("\nas a Gantt chart (2 periods, # = active):")
    print(render_schedule_gantt(result.periodic, num_periods=2, utility=utility))
    print(f"\ngreedy average utility per slot : {result.average_slot_utility:.6f}")

    bound = single_target_upper_bound(num_sensors, problem.slots_per_period, p)
    print(f"upper bound U* = 1-(1-p)^ceil(n/T): {bound:.6f}")
    print(f"ratio vs bound                    : {result.average_slot_utility / bound:.4f}")

    # Execute on simulated hardware: exact battery accounting, refusal of
    # activations that are not energy-feasible.
    network = SensorNetwork(num_sensors, period, utility)
    engine = SimulationEngine(network, SchedulePolicy(result.periodic))
    sim = engine.run(problem.total_slots)
    print(f"\nsimulated average utility         : {sim.average_slot_utility:.6f}")
    print(f"refused activations               : {sim.refused_activations}")
    assert sim.refused_activations == 0, "greedy schedule must be energy-feasible"
    assert abs(sim.average_slot_utility - result.average_slot_utility) < 1e-9


if __name__ == "__main__":
    main()
