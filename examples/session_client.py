#!/usr/bin/env python
"""A live session riding out a failure storm, end to end.

A deployed network does not re-plan from scratch every time a mote
browns out -- it keeps a *session* open against the planning service
(``docs/SESSIONS.md``) and streams deltas at it.  This example embeds
the ``repro serve`` HTTP service in-process and drives one session
through a storm with plain ``urllib``:

1. **create** -- ``POST /v1/session`` solves the instance once and
   returns the schedule plus the session envelope;
2. **storm** -- a burst of ``sensor-failed`` deltas, each answered by
   a warm scoped repair (watch the incumbent utility degrade
   gracefully, never a re-solve from scratch);
3. **recovery** -- sensors come back; fail->recover chains hit the
   session memo and restore the pre-failure plan without solving;
4. **weather** -- a ``harvest-shift`` changes rho and the period
   structure: the one genuinely structural edit pays a cold re-solve;
5. **teardown** -- ``DELETE`` releases the session; the id answers
   410 afterwards.

Run:  python examples/session_client.py
"""

import json
import urllib.error
import urllib.request

from repro.serve.app import ServiceConfig, SolveService

CREATE = {
    "problem": {
        "num_sensors": 24,
        "rho": 3.0,
        "num_periods": 1,
        "utility": {"p": 0.4},
    },
    "method": "greedy",
    "consistency": "warm",
}

#: Fail a third of the fleet, then recover it in reverse order.
STORM = [4, 9, 13, 17, 2, 21, 7, 11]


def call(url: str, path: str, body=None, method=None) -> tuple:
    request = urllib.request.Request(
        url + path,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def delta(url: str, session_id: str, document: dict) -> tuple:
    return call(url, f"/v1/session/{session_id}/delta", {"delta": document})


def main() -> None:
    with SolveService(ServiceConfig(port=0)) as service:
        url = service.url
        print(f"service listening on {url}\n")

        print("-- create -------------------------------------------")
        status, body = call(url, "/v1/session", CREATE)
        assert status == 200, body
        session_id = body["session"]["id"]
        baseline = body["result"]["period_utility"]
        print(f"session {session_id[:12]}... created")
        print(f"incumbent period utility: {baseline:.4f}\n")

        print("-- failure storm ------------------------------------")
        for victim in STORM:
            status, body = delta(
                url, session_id, {"kind": "sensor-failed", "sensor": victim}
            )
            assert status == 200, body
            utility = body["result"]["period_utility"]
            live = body["session"]["live_sensors"]
            bar = "#" * round(40 * utility / baseline)
            print(
                f"fail {victim:>2}  resolve={body['delta']['resolve']:<4} "
                f"live={live:>2}  U={utility:.4f} |{bar}"
            )

        print("\n-- recovery (memo hits) -----------------------------")
        for sensor in reversed(STORM):
            status, body = delta(
                url, session_id, {"kind": "sensor-recovered", "sensor": sensor}
            )
            assert status == 200, body
            print(
                f"recover {sensor:>2}  resolve={body['delta']['resolve']:<4} "
                f"U={body['result']['period_utility']:.4f}"
            )
        restored = body["result"]["period_utility"]
        assert restored == baseline
        print("fleet restored: incumbent back at the pre-storm utility\n")

        print("-- weather: structural shift ------------------------")
        status, body = delta(
            url, session_id, {"kind": "harvest-shift", "factor": 4.0 / 3.0}
        )
        assert status == 200, body
        print(
            f"harvest-shift x4/3  resolve={body['delta']['resolve']} "
            f"structural={body['delta']['structural']} "
            f"slots={body['session']['slots_per_period']}"
        )
        print("a changed period structure is the one edit that must pay")
        print("a cold re-solve; everything else stayed warm\n")

        print("-- teardown -----------------------------------------")
        status, body = call(
            url, f"/v1/session/{session_id}", method="DELETE"
        )
        print(f"DELETE -> {status} ({body['kind']})")
        status, body = delta(
            url, session_id, {"kind": "sensor-failed", "sensor": 0}
        )
        print(f"post-delete delta -> {status} ({body['error']['code']})")
        assert status == 410


if __name__ == "__main__":
    main()
