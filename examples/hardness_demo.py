#!/usr/bin/env python
"""The NP-hardness reduction of Thm. 3.1, live.

The paper proves the dynamic activation problem NP-hard by encoding
Subset-Sum: give sensor v_i the integer weight I_i, use the utility
U(S) = log(1 + sum of weights in S) and a 2-slot period; the optimal
2-slot schedule reaches 2·log(1 + W/2) exactly when the weights split
into two equal halves.

This demo walks a handful of instances through the reduction: it builds
the scheduling problem, solves it exactly, shows the slot partition the
optimum induces, and compares the scheduling-based decision against a
classic dynamic-programming Subset-Sum oracle.  It also shows what the
*greedy* 1/2-approximation does on the same instances -- illustrating
why an approximation can exist for a problem whose exact version is
NP-hard.

Run:  python examples/hardness_demo.py
"""

import math

from repro.analysis import format_table
from repro.core.greedy import greedy_schedule
from repro.core.hardness import (
    SubsetSumInstance,
    decide_subset_sum_via_scheduling,
    optimum_if_yes,
    reduction_from_subset_sum,
)
from repro.core.optimal import optimal_schedule

INSTANCES = [
    (3, 5, 2),        # yes: {3,2} vs {5}
    (4, 2, 2),        # yes: {4} vs {2,2}
    (1, 2, 5),        # no
    (6, 5, 4, 3, 2),  # yes: {6,4} vs {5,3,2}
    (10, 1, 1),       # no
    (7, 3, 2, 2),     # yes: {7} vs {3,2,2}
]


def main() -> None:
    rows = []
    for weights in INSTANCES:
        instance = SubsetSumInstance(weights)
        problem = reduction_from_subset_sum(instance)

        exact = optimal_schedule(problem)
        achieved = exact.period_utility(problem.utility)
        target = optimum_if_yes(instance)

        slot_weights = [0, 0]
        for sensor, slot in exact.assignment.items():
            slot_weights[slot] += weights[sensor]

        greedy = greedy_schedule(problem).period_utility(problem.utility)

        via_scheduling = decide_subset_sum_via_scheduling(instance)
        via_dp = instance.brute_force_decide()
        assert via_scheduling == via_dp, "reduction must agree with the oracle"

        rows.append(
            [
                str(weights),
                f"{slot_weights[0]}|{slot_weights[1]}",
                achieved,
                target,
                "yes" if via_scheduling else "no",
                f"{greedy / achieved:.3f}" if achieved > 0 else "-",
            ]
        )

    print("Thm. 3.1: Subset-Sum via optimal 2-slot scheduling")
    print(
        format_table(
            [
                "weights",
                "opt split",
                "opt utility",
                "2*log(1+W/2)",
                "decision",
                "greedy/opt",
            ],
            rows,
            "{:.4f}",
        )
    )
    print(
        "\ndecision = yes  <=>  opt utility reaches the target "
        "<=>  a perfect split exists.\n"
        "The greedy column shows the 1/2-approximation at work on the\n"
        "same instances: always >= 0.5, usually ~1.0."
    )


if __name__ == "__main__":
    main()
