"""Parallel + cached parameter sweep: the repro.runtime subsystem live.

Runs the same sweep three ways and times them:

1. serially with no cache (the pre-runtime behaviour),
2. through the schedule cache, cold (duplicate cells collapse),
3. through the cache again, warm (every cell is a hit),

then shows the worker pool on a Monte-Carlo batch and prints the cache
counters and per-task telemetry the runtime collects.  The headline
numbers are identical in all runs -- parallelism and caching are
optimizations, never semantics.

Run:  PYTHONPATH=src python examples/parallel_sweep.py
"""

import time

from repro.analysis.report import format_table
from repro.analysis.sweep import SweepSpec, pivot, run_sweep
from repro.energy.period import ChargingPeriod
from repro.policies.greedy_periodic import GreedyPeriodicPolicy
from repro.runtime import ScheduleCache, summarize_telemetry
from repro.sim.batch import run_batch
from repro.sim.network import SensorNetwork
from repro.utility.detection import HomogeneousDetectionUtility

SPEC = SweepSpec(
    sensor_counts=(40, 80, 120),
    target_counts=(5,),
    methods=("greedy", "round-robin", "random"),
    seeds=tuple(range(8)),
    workload="single-target",
)

N = 12
PERIOD = ChargingPeriod.paper_sunny()


def network_factory(seed):
    """Module-level (hence picklable) factory: reaches pool workers."""
    return SensorNetwork(
        N, PERIOD, HomogeneousDetectionUtility(range(N), p=0.4)
    )


def policy_factory(seed):
    return GreedyPeriodicPolicy()


def timed(label, fn):
    start = time.perf_counter()
    value = fn()
    elapsed = time.perf_counter() - start
    print(f"{label:<28}: {elapsed * 1000:8.1f} ms")
    return value


def main():
    cells = len(list(SPEC.cells()))
    print(f"sweep grid: {cells} cells "
          f"({len(SPEC.sensor_counts)} sizes x {len(SPEC.methods)} methods "
          f"x {len(SPEC.seeds)} seeds)\n")

    baseline = timed("serial, no cache", lambda: run_sweep(SPEC))

    cache = ScheduleCache()
    cold = timed("cold cache", lambda: run_sweep(SPEC, cache=cache))
    warm = timed("warm cache", lambda: run_sweep(SPEC, cache=cache))
    print(f"\ncache counters              : {cache.stats}")

    # The single-target workload ignores the seed and greedy/round-robin
    # ignore it too, so those methods' seed axes collapsed to one solve
    # each; only `random` keys on the seed.
    for records in (cold, warm):
        assert [r.result.total_utility for r in records] == [
            r.result.total_utility for r in baseline
        ], "caching must not change results"

    table = pivot(baseline, row_key="n", col_key="method")
    methods = sorted(SPEC.methods)
    print("\n" + format_table(
        ["n"] + methods,
        [[n] + [table[n][m] for m in methods] for n in sorted(table)],
        "{:.4f}",
    ))

    print("\nMonte-Carlo batch, 12 replicates, jobs=2:")
    batch = run_batch(
        network_factory,
        policy_factory,
        num_slots=40,
        seeds=range(12),
        jobs=2,
    )
    print(f"batch                       : {batch}")
    summary = summarize_telemetry(batch.telemetry)
    print(f"worker pids                 : {summary['workers']}")
    print(f"parallel / serial tasks     : "
          f"{summary['parallel_tasks']} / {summary['serial_tasks']}")
    print(f"summed task wall time       : {summary['task_seconds']:.3f} s")


if __name__ == "__main__":
    main()
