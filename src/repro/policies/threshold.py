"""Threshold activation policies (the related-work baseline family).

The activation literature the paper builds on (Kar, Krishnamurthy,
Jaggi -- INFOCOM'05, TOSN'08, cited as [1], [7], [12]) studies
*threshold* policies: keep (up to) ``K`` sensors active at all times,
activating ready sensors as others deplete.  Those works show threshold
policies are near-optimal when the utility depends only on the *number*
of active sensors and charging is stochastic -- but they ignore *which*
sensors are active.  The paper's contribution is exactly the step from
count-based to submodular multi-target utilities; implementing the
threshold family makes that comparison runnable:

- :class:`ThresholdPolicy` -- keep up to ``K`` active, choosing
  arbitrary (lowest-id) ready sensors: the literal count-only policy.
- :class:`UtilityAwareThresholdPolicy` -- same budget, but pick ready
  sensors by marginal utility: a hybrid showing how much of the gap is
  the budget and how much is sensor choice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Set

from repro.policies.base import ActivationPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


class ThresholdPolicy(ActivationPolicy):
    """Keep up to ``threshold`` sensors active; refill from ready ones.

    Sensor choice is utility-blind (lowest id first), matching the
    count-based model of the prior work.
    """

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        active = network.active_sensors()
        need = self.threshold - len(active)
        chosen: Set[int] = set(active)  # keep running sensors running
        if need > 0:
            for v in sorted(network.ready_sensors()):
                if need == 0:
                    break
                chosen.add(v)
                need -= 1
        return frozenset(chosen)


class UtilityAwareThresholdPolicy(ActivationPolicy):
    """Same activation budget, but refill by marginal utility."""

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        active = set(network.active_sensors())
        utility = network.utility
        candidates = set(network.ready_sensors())
        while len(active) < self.threshold and candidates:
            best = max(
                candidates,
                key=lambda v: (utility.marginal(v, active), -v),
            )
            active.add(best)
            candidates.discard(best)
        return frozenset(active)


def sustainable_threshold(num_sensors: int, slots_per_period: int) -> int:
    """The largest K a period can sustain: ``floor(n / T)``.

    With one activation per sensor per period, at most ``n/T`` sensors
    can be active at once in steady state; a larger threshold just
    accumulates refused activations.
    """
    if slots_per_period < 1:
        raise ValueError(
            f"slots_per_period must be >= 1, got {slots_per_period}"
        )
    if num_sensors < 0:
        raise ValueError(f"num_sensors must be >= 0, got {num_sensors}")
    return num_sensors // slots_per_period
