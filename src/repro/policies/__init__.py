"""Online activation policies: the dynamic layer executed by the simulator.

A policy is asked, at the beginning of every time-slot, which sensors
to command active (paper Sec. II-C: "at the beginning of every
time-slot t, we will make decision on which sensors to be activated").
Policies range from verbatim execution of a precomputed schedule to
adaptive re-planning as the harvest estimate shifts:

- :class:`~repro.policies.base.ActivationPolicy` -- the interface.
- :class:`~repro.policies.schedule_policy.SchedulePolicy` -- execute a
  fixed (periodic or unrolled) schedule.
- :class:`~repro.policies.greedy_periodic.GreedyPeriodicPolicy` --
  plan with Algorithm 1 once, repeat each period (Thm. 4.3).
- :class:`~repro.policies.adaptive.AdaptiveReplanPolicy` -- re-estimate
  rho over a sliding window (the "2-hour" estimator of Sec. I/VI-A)
  and re-plan when the charging pattern changes.
- :class:`~repro.policies.partial_charge.PartialChargeGreedyPolicy` --
  the Sec. VIII future-work extension activating partially recharged
  sensors.
- :class:`~repro.policies.heterogeneous.HeterogeneousGreedyPolicy` --
  the Sec. VIII extension for per-node charging patterns.
- :class:`~repro.policies.self_healing.SelfHealingPolicy` -- wraps any
  planner with report-driven failure detection, budgeted command retry
  and greedy schedule repair over the surviving nodes.
"""

from repro.policies.base import ActivationPolicy
from repro.policies.schedule_policy import SchedulePolicy
from repro.policies.greedy_periodic import GreedyPeriodicPolicy
from repro.policies.adaptive import AdaptiveReplanPolicy
from repro.policies.partial_charge import PartialChargeGreedyPolicy
from repro.policies.heterogeneous import HeterogeneousGreedyPolicy
from repro.policies.threshold import (
    ThresholdPolicy,
    UtilityAwareThresholdPolicy,
    sustainable_threshold,
)
from repro.policies.forecast_policy import ForecastPlanningPolicy
from repro.policies.self_healing import SelfHealingPolicy

__all__ = [
    "ActivationPolicy",
    "SchedulePolicy",
    "GreedyPeriodicPolicy",
    "AdaptiveReplanPolicy",
    "PartialChargeGreedyPolicy",
    "HeterogeneousGreedyPolicy",
    "ThresholdPolicy",
    "UtilityAwareThresholdPolicy",
    "sustainable_threshold",
    "ForecastPlanningPolicy",
    "SelfHealingPolicy",
]
