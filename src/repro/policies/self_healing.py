"""Closed-loop self-healing: detect failures from reports, retry, re-plan.

The oblivious failure story (:mod:`repro.sim.failures`) measures how a
schedule planned for a healthy network degrades; this policy closes the
loop.  It wraps any planner and layers three recovery mechanisms on top
of its commands, all driven purely by the per-slot report stream (never
the injected :class:`~repro.sim.failures.FailurePlan`):

1. **Detection** -- a :class:`~repro.sim.health.HealthMonitor` counts
   consecutive missed reports per node (suspicion, then eviction) and
   latches nodes that run active without being commanded (stuck
   actuators).
2. **Command retry** -- a commanded node that reports back *idle and
   not refused* lost its activation command in transit; the command is
   re-issued with budgeted exponential backoff (``max_retries`` per
   lost command, delay doubling from ``retry_backoff``).  An off-phase
   re-activation is not free under the full-charge rule: the node
   recharges through its next scheduled slot and forfeits that
   activation, so each re-issue is gated on its marginal utility *now*
   exceeding the forfeited on-phase marginal discounted by the chance
   the next command arrives at all -- estimated, like everything else
   here, from the observed report stream (the fraction of issued
   commands that vanished).  At low loss rates the gate suppresses
   counterproductive retries; at high loss rates the on-phase future
   is itself unreliable and retries fire.
3. **Schedule repair** -- when the set of unusable nodes (DOWN or
   ROGUE) changes, a candidate re-plan is computed at the next period
   boundary with :func:`~repro.core.repair.greedy_repair` over the
   survivors.  Re-phasing is not free: a survivor moved to an
   *earlier* slot within the period cannot recharge in time and
   forfeits exactly one activation, so the candidate is adopted only
   when its steady-state improvement, amortized over the remaining
   periods (``horizon``), exceeds that one-off transition cost
   (estimated from the greedy trace's marginal gains, an upper bound
   by submodularity).  Each survivor's *reported* charge state is
   respected through the transition: during the first period after
   the boundary, commands to survivors whose batteries cannot yet
   serve their new slot are withheld rather than wasted as refusals,
   and every survivor is back in phase one period later.  An adopted
   schedule supersedes the inner plan from the boundary on.

Repair applies in the sparse regime (rho >= 1, the paper's Algorithm 1
setting); for rho < 1 the policy still detects, suppresses and retries
but leaves the plan untouched.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set

from repro.core.greedy import GreedyTrace
from repro.core.repair import greedy_repair
from repro.core.schedule import PeriodicSchedule
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.policies.base import ActivationPolicy
from repro.sim.health import HealthMonitor

_RETRIES_HELP = "Lost-command retries by outcome (issued/declined)"
_REPAIRS_HELP = "Schedule repairs by outcome (adopted/skipped)"
_SUPPRESSED_HELP = "Commands suppressed to latched-rogue nodes"

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork
    from repro.sim.node import NodeSlotReport


class SelfHealingPolicy(ActivationPolicy):
    """Wraps a planner with report-driven failure recovery.

    Parameters
    ----------
    inner:
        The planning policy whose commands are being healed.
    suspect_after / evict_after / rogue_after:
        Detection thresholds, see :class:`~repro.sim.health.HealthMonitor`.
    max_retries:
        Re-issues budgeted per lost command; 0 disables retry.
    retry_backoff:
        Delay in slots before the first re-issue; doubles per retry.
    repair:
        Re-plan over survivors when the unusable set changes.  Disable
        to measure the retry/suppression layers in isolation.
    horizon:
        Total working slots of the run, if known.  Used to amortize
        the one-off transition cost of a re-plan over the periods it
        will actually serve; ``None`` treats the run as open-ended
        (any strict steady-state improvement is adopted).
    """

    def __init__(
        self,
        inner: ActivationPolicy,
        suspect_after: int = 2,
        evict_after: int = 6,
        rogue_after: int = 2,
        max_retries: int = 2,
        retry_backoff: int = 1,
        repair: bool = True,
        horizon: Optional[int] = None,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 1:
            raise ValueError(f"retry_backoff must be >= 1, got {retry_backoff}")
        self.inner = inner
        self.suspect_after = suspect_after
        self.evict_after = evict_after
        self.rogue_after = rogue_after
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.repair_enabled = repair
        if horizon is not None and horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        self.horizon = horizon
        self.monitor: Optional[HealthMonitor] = None
        self._retry_queue: Dict[int, Set[int]] = {}  # due slot -> node ids
        self._retry_counts: Dict[int, int] = {}  # node -> retries of current loss
        self._repaired: Optional[PeriodicSchedule] = None
        self._pending_repair = False
        self._repair_boundary = 0  # slot the repaired schedule starts at
        self._ready_at: Dict[int, int] = {}  # survivor -> earliest feasible slot
        self._excluded: FrozenSet[int] = frozenset()
        self._last_commands: FrozenSet[int] = frozenset()
        self._last_active_slot: Dict[int, int] = {}  # node -> last active slot
        self._commands_delivered = 0  # commands answered by active/refused
        self._commands_lost = 0  # commands answered by idle-not-refused
        self.retries_issued = 0
        self.retries_declined = 0
        self.commands_suppressed = 0
        self.repairs_performed = 0
        self.repairs_skipped = 0

    # ------------------------------------------------------------------
    # Decide
    # ------------------------------------------------------------------

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        if self.monitor is None:
            self.monitor = HealthMonitor(
                network.num_sensors,
                suspect_after=self.suspect_after,
                evict_after=self.evict_after,
                rogue_after=self.rogue_after,
            )
        T = network.period.slots_per_period
        if (
            self._pending_repair
            and self.repair_enabled
            and slot % T == 0
            and network.period.rho >= 1
        ):
            self._repair(network, slot)

        if self._repaired is not None:
            base = self._repaired.active_set(slot)
            if slot < self._repair_boundary + T:
                # Transition period: a survivor moved to an earlier slot
                # is still recharging from its old phase; commanding it
                # would only be refused, so hold off until it is ready.
                base = frozenset(
                    v for v in base if self._ready_at.get(v, 0) <= slot
                )
        else:
            base = self.inner.decide(slot, network)

        # DOWN nodes keep receiving their scheduled commands: a command
        # to a truly dead radio costs nothing, and a node whose outage
        # just ended resumes its phase one slot sooner than waiting for
        # the monitor to see its next report (optimistic probing).  Only
        # ROGUE nodes are suppressed -- they run on their own clock, and
        # not commanding them keeps their anomalies visible.
        rogue = self.monitor.rogue_nodes()
        registry = get_registry()
        commands = set()
        for v in base:
            if v in rogue:
                self.commands_suppressed += 1
                registry.counter(
                    "repro_selfheal_suppressed_commands_total",
                    _SUPPRESSED_HELP,
                ).inc()
            else:
                commands.add(v)
        for v in self._retry_queue.pop(slot, ()):
            if v in rogue or v in commands:
                continue
            if self._retry_profitable(v, commands, network):
                commands.add(v)
                self.retries_issued += 1
                outcome = "issued"
            else:
                self.retries_declined += 1
                outcome = "declined"
            registry.counter(
                "repro_selfheal_retries_total", _RETRIES_HELP, outcome=outcome
            ).inc()
            obs_events.emit(
                "policy.retry", slot=slot, node=v, outcome=outcome
            )
        self._last_commands = frozenset(commands)
        self.monitor.note_commands(slot, self._last_commands)
        return self._last_commands

    def _loss_estimate(self) -> float:
        """Observed fraction of issued commands lost in transit."""
        answered = self._commands_delivered + self._commands_lost
        return self._commands_lost / answered if answered else 0.0

    def _retry_profitable(
        self, v: int, commands: Set[int], network: "SensorNetwork"
    ) -> bool:
        """Re-activating ``v`` off-phase now earns ``m_now`` but (under
        the full-charge rule) leaves it recharging through its next
        scheduled slot, forfeiting that on-phase marginal -- which only
        materializes if the next command survives the channel."""
        utility = network.utility
        m_now = utility.marginal(v, frozenset(commands))
        T = network.period.slots_per_period
        p = self._current_phase(v, T)
        if p is None:
            return m_now > 1e-12
        usable = self.monitor.usable_nodes()
        cohort = frozenset(
            u
            for u, s in self._last_active_slot.items()
            if u != v and u in usable and s % T == p
        )
        m_phase = utility.marginal(v, cohort)
        arrival = 1.0 - self._loss_estimate()
        return m_now > arrival * m_phase + 1e-12

    # ------------------------------------------------------------------
    # Observe
    # ------------------------------------------------------------------

    def observe(self, slot: int, reports: Sequence["NodeSlotReport"]) -> None:
        self.inner.observe(slot, reports)
        if self.monitor is None:  # observe before any decide: nothing to do
            return
        self.monitor.observe(slot, reports)

        reported = {r.node_id: r for r in reports}
        for r in reports:
            if r.was_active:
                self._last_active_slot[r.node_id] = slot
        for v in self._last_commands:
            report = reported.get(v)
            if report is None:
                continue  # no report: the monitor's miss counter handles it
            if report.was_active:
                self._commands_delivered += 1
                self._retry_counts.pop(v, None)
                continue
            if report.refused_activation:
                # The node heard us but had no charge; re-sending the
                # same command would be refused again.
                self._commands_delivered += 1
                self._retry_counts.pop(v, None)
                continue
            # Alive, idle, not refused: the command was lost in transit.
            self._commands_lost += 1
            count = self._retry_counts.get(v, 0)
            if count < self.max_retries:
                delay = self.retry_backoff * (2 ** count)
                self._retry_queue.setdefault(slot + delay, set()).add(v)
                self._retry_counts[v] = count + 1
            else:
                self._retry_counts.pop(v, None)

        if self.repair_enabled:
            unusable = frozenset(
                self.monitor.down_nodes() | self.monitor.rogue_nodes()
            )
            if unusable != self._excluded:
                self._pending_repair = True

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def _earliest_feasible_slot(
        self, network: "SensorNetwork", v: int, boundary: int
    ) -> int:
        """Earliest absolute slot this survivor can honour an activation,
        derived from its last *reported* charge state."""
        last = self.monitor.last_report(v)
        if last is None:
            return boundary
        _, level, state = last
        node = network.node(v)
        target = node.ready_threshold * node.battery.capacity
        if state == "ready":
            return boundary
        if state == "active":
            # Will drain to empty, then needs a full recharge.
            needed = target
        else:  # passive: recharging from its reported level
            needed = max(0.0, target - level)
        slots = int(math.ceil(needed / node.charge_per_slot - 1e-9))
        return boundary + max(slots, 0)

    def _current_phase(self, v: int, T: int) -> Optional[int]:
        """The slot-within-period node ``v`` currently activates at, as
        observed from its reports; ``None`` if never seen active."""
        last = self._last_active_slot.get(v)
        return None if last is None else last % T

    def _repair(self, network: "SensorNetwork", boundary: int) -> None:
        T = network.period.slots_per_period
        unusable = frozenset(
            self.monitor.down_nodes() | self.monitor.rogue_nodes()
        )
        survivors = [
            v for v in range(network.num_sensors) if v not in unusable
        ]
        # The plan actually in force: the adopted repair if there is
        # one (a survivor absent from it earns nothing, e.g. a node
        # whose outage ended after the last re-plan), else the phases
        # observed from activations (still purely report-driven).
        if self._repaired is not None:
            phase = {
                v: self._repaired.assignment.get(v) for v in survivors
            }
        else:
            phase = {v: self._current_phase(v, T) for v in survivors}
        incumbent = {v: p for v, p in phase.items() if p is not None}
        trace = GreedyTrace()
        candidate = greedy_repair(
            survivors, T, network.utility, prefer=incumbent, trace=trace
        )

        # Steady-state utility per period the in-force plan will keep
        # earning with only the survivors.
        current_value = sum(
            network.utility.value(
                frozenset(v for v in survivors if phase[v] == t)
            )
            for t in range(T)
        )
        candidate_value = trace.total_utility

        # A survivor whose new slot lands before it can recharge misses
        # exactly one activation during the transition (the decide-time
        # mask withholds the wasted command); its recorded greedy gain
        # upper-bounds that loss (submodularity).
        ready_at = {
            v: self._earliest_feasible_slot(network, v, boundary)
            for v in survivors
        }
        transition_cost = sum(
            step.gain
            for step in trace.steps
            if boundary + step.slot < ready_at[step.sensor]
        )
        gain_per_period = candidate_value - current_value
        if self.horizon is None:
            adopt = gain_per_period > 1e-12
        else:
            remaining_periods = max(0, self.horizon - boundary) / T
            adopt = (
                gain_per_period * remaining_periods
                > transition_cost + 1e-12
            )

        if adopt:
            self._repaired = candidate
            self._repair_boundary = boundary
            self._ready_at = ready_at
            self.repairs_performed += 1
        else:
            self.repairs_skipped += 1
        outcome = "adopted" if adopt else "skipped"
        get_registry().counter(
            "repro_selfheal_repairs_total", _REPAIRS_HELP, outcome=outcome
        ).inc()
        obs_events.emit(
            "policy.repair",
            slot=boundary,
            outcome=outcome,
            unusable=sorted(unusable),
            gain_per_period=gain_per_period,
            transition_cost=transition_cost,
        )
        self._excluded = unusable
        self._pending_repair = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.inner.reset()
        self.monitor = None
        self._retry_queue = {}
        self._retry_counts = {}
        self._repaired = None
        self._pending_repair = False
        self._repair_boundary = 0
        self._ready_at = {}
        self._excluded = frozenset()
        self._last_commands = frozenset()
        self._last_active_slot = {}
        self._commands_delivered = 0
        self._commands_lost = 0
        self.retries_issued = 0
        self.retries_declined = 0
        self.commands_suppressed = 0
        self.repairs_performed = 0
        self.repairs_skipped = 0

    def state_dict(self) -> dict:
        from repro.io.serialization import schedule_to_dict

        return {
            "monitor": (
                None
                if self.monitor is None
                else {
                    "num_sensors": self.monitor.num_sensors,
                    "state": self.monitor.state_dict(),
                }
            ),
            "retry_queue": {
                str(due): sorted(nodes)
                for due, nodes in self._retry_queue.items()
            },
            "retry_counts": {
                str(v): c for v, c in self._retry_counts.items()
            },
            "repaired": (
                None
                if self._repaired is None
                else schedule_to_dict(self._repaired)
            ),
            "pending_repair": self._pending_repair,
            "repair_boundary": self._repair_boundary,
            "ready_at": {str(v): s for v, s in self._ready_at.items()},
            "excluded": sorted(self._excluded),
            "last_commands": sorted(self._last_commands),
            "last_active_slot": {
                str(v): s for v, s in self._last_active_slot.items()
            },
            "commands_delivered": self._commands_delivered,
            "commands_lost": self._commands_lost,
            "retries_declined": self.retries_declined,
            "retries_issued": self.retries_issued,
            "commands_suppressed": self.commands_suppressed,
            "repairs_performed": self.repairs_performed,
            "repairs_skipped": self.repairs_skipped,
            "inner": self.inner.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.io.serialization import schedule_from_dict

        if state["monitor"] is None:
            self.monitor = None
        else:
            self.monitor = HealthMonitor(
                state["monitor"]["num_sensors"],
                suspect_after=self.suspect_after,
                evict_after=self.evict_after,
                rogue_after=self.rogue_after,
            )
            self.monitor.load_state_dict(state["monitor"]["state"])
        self._retry_queue = {
            int(due): set(nodes)
            for due, nodes in state["retry_queue"].items()
        }
        self._retry_counts = {
            int(v): c for v, c in state["retry_counts"].items()
        }
        self._repaired = (
            None
            if state["repaired"] is None
            else schedule_from_dict(state["repaired"])
        )
        self._pending_repair = state["pending_repair"]
        self._repair_boundary = state["repair_boundary"]
        self._ready_at = {int(v): s for v, s in state["ready_at"].items()}
        self._excluded = frozenset(state["excluded"])
        self._last_commands = frozenset(state["last_commands"])
        self._last_active_slot = {
            int(v): s for v, s in state["last_active_slot"].items()
        }
        self._commands_delivered = state["commands_delivered"]
        self._commands_lost = state["commands_lost"]
        self.retries_declined = state["retries_declined"]
        self.retries_issued = state["retries_issued"]
        self.commands_suppressed = state["commands_suppressed"]
        self.repairs_performed = state["repairs_performed"]
        self.repairs_skipped = state["repairs_skipped"]
        self.inner.load_state_dict(state["inner"])
