"""Future-work extension (Sec. VIII): activate partially recharged sensors.

The paper assumes a node activates only when fully charged and names
relaxing this as an open problem.  This policy implements the natural
online greedy for the relaxed model:

- nodes are built with ``ready_threshold < 1`` (see
  :class:`~repro.sim.node.SimulatedNode`), so they re-enter READY once
  their state of charge crosses the threshold;
- at each slot the policy greedily fills an activation budget of
  ``ceil(n / T)`` sensors (the even-spreading rate a periodic schedule
  would sustain) from the currently READY set, picking sensors by
  marginal utility, and preferring higher-charge sensors on ties so
  partially charged nodes are used as a reserve rather than first
  choice.

With ``ready_threshold = 1`` and a stationary utility this degenerates
to an online version of balanced greedy spreading, making the effect of
partial activation separable in ablations.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, FrozenSet, List, Set, Tuple

from repro.policies.base import ActivationPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


class PartialChargeGreedyPolicy(ActivationPolicy):
    """Budgeted per-slot greedy over READY (possibly partial) sensors.

    Parameters
    ----------
    budget_scale:
        Multiplier on the even-spreading budget ``ceil(n / T)``; values
        above 1 spend the partial-charge headroom more aggressively.
    min_gain:
        Stop filling the budget when the best remaining marginal gain
        falls below this (avoids draining sensors for ~zero utility).
    """

    def __init__(self, budget_scale: float = 1.0, min_gain: float = 1e-12):
        if budget_scale <= 0:
            raise ValueError(f"budget_scale must be positive, got {budget_scale}")
        self.budget_scale = budget_scale
        self.min_gain = min_gain

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        ready = network.ready_sensors()
        if not ready:
            return frozenset()
        T = network.period.slots_per_period
        budget = max(1, math.ceil(self.budget_scale * network.num_sensors / T))
        fractions = network.charge_fractions()
        utility = network.utility

        chosen: Set[int] = set()
        candidates = set(ready)
        while candidates and len(chosen) < budget:
            scored: List[Tuple[float, float, int]] = [
                (utility.marginal(v, chosen), fractions[v], -v) for v in candidates
            ]
            gain, _, neg_v = max(scored)
            if gain < self.min_gain and chosen:
                break
            v = -neg_v
            chosen.add(v)
            candidates.discard(v)
        return frozenset(chosen)
