"""The activation-policy interface.

A policy ``X`` in the paper's notation maps every time-slot to the set
of sensors commanded active (Sec. II-D).  The simulator calls
:meth:`decide` at the start of each slot and :meth:`observe` after the
slot resolves, so stateful policies (adaptive re-planning, estimators)
can learn from what actually happened -- e.g. refused activations
reveal that the assumed charging pattern was wrong.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, FrozenSet, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.network import SensorNetwork
    from repro.sim.node import NodeSlotReport


class ActivationPolicy(ABC):
    """Decides, per slot, which sensors to command active."""

    @abstractmethod
    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        """Sensors to command active at the start of ``slot``.

        Commands to non-READY nodes are refused by the hardware layer
        (and counted); a policy that wants clean execution should
        consult ``network.ready_sensors()``.
        """

    def observe(
        self, slot: int, reports: Sequence["NodeSlotReport"]
    ) -> None:  # noqa: B027 - optional hook, default no-op
        """Post-slot feedback hook; default does nothing."""

    def reset(self) -> None:  # noqa: B027 - optional hook, default no-op
        """Clear internal state before a fresh run; default no-op."""

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of mutable state for checkpointing.

        Stateless policies (and policies whose state is a deterministic
        function of the network, like a lazily-planned schedule) can
        keep the default empty dict; policies carrying RNG streams,
        estimators or repair state must override both this and
        :meth:`load_state_dict` or a resumed run will diverge from the
        uninterrupted one.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:  # noqa: B027 - optional hook
        """Restore what :meth:`state_dict` captured; default no-op."""
