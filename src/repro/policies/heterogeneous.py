"""Future-work extension (Sec. VIII): heterogeneous charging patterns.

The paper's second open problem: sensors whose charging/recharging
patterns differ (shaded vs. sunlit panels, different cells).  We
generalize the greedy hill-climbing scheme:

- sensor ``v`` has its own period ``T_v`` (in slots of a common slot
  grid) and, in the sparse regime, is activated once per its own
  period -- i.e. its activations are the arithmetic progression
  ``{t : t = phase_v (mod T_v)}``;
- the planner greedily assigns each sensor a *phase* in ``0..T_v - 1``,
  choosing at every step the (sensor, phase) pair with the maximum
  incremental utility summed over the hyperperiod (the lcm of all
  ``T_v``, capped);
- repeating the hyperperiod schedule is feasible for every node by
  construction.

With identical periods this degenerates exactly to Algorithm 1
(phases = slots, hyperperiod = T), which the test-suite checks.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.schedule import UnrolledSchedule
from repro.policies.base import ActivationPolicy
from repro.utility.base import UtilityFunction

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


def _lcm_capped(values: Sequence[int], cap: int) -> int:
    out = 1
    for v in values:
        out = out * v // math.gcd(out, v)
        if out > cap:
            raise ValueError(
                f"hyperperiod {out} exceeds the cap of {cap} slots; "
                "round the per-node periods to friendlier values"
            )
    return out


def plan_heterogeneous(
    sensor_periods: Dict[int, int],
    utility: UtilityFunction,
    hyperperiod_cap: int = 4096,
) -> UnrolledSchedule:
    """Greedy phase assignment for per-sensor periods.

    Parameters
    ----------
    sensor_periods:
        sensor id -> its period ``T_v`` in slots (>= 1).  ``T_v = 1``
        means the sensor can be active every slot.
    utility:
        The per-slot utility.
    hyperperiod_cap:
        Refuse pathological lcm blow-ups beyond this many slots.

    Returns
    -------
    An :class:`~repro.core.schedule.UnrolledSchedule` spanning one
    hyperperiod; repeat it for longer horizons.
    """
    if not sensor_periods:
        return UnrolledSchedule(slots_per_period=1, active_sets=(frozenset(),))
    for sensor, period in sensor_periods.items():
        if period < 1:
            raise ValueError(f"sensor {sensor} has period {period} < 1")
    hyper = _lcm_capped(sorted(set(sensor_periods.values())), hyperperiod_cap)
    slot_sets: List[frozenset] = [frozenset() for _ in range(hyper)]

    def phase_gain(sensor: int, period: int, phase: int) -> float:
        return sum(
            utility.marginal(sensor, slot_sets[t])
            for t in range(phase, hyper, period)
        )

    remaining = dict(sensor_periods)
    while remaining:
        best: Optional[Tuple[float, int, int]] = None
        best_pick: Tuple[int, int] = (-1, -1)
        for sensor in sorted(remaining):
            period = remaining[sensor]
            for phase in range(period):
                gain = phase_gain(sensor, period, phase)
                key = (gain, -sensor, -phase)
                if best is None or key > best:
                    best = key
                    best_pick = (sensor, phase)
        sensor, phase = best_pick
        period = remaining.pop(sensor)
        for t in range(phase, hyper, period):
            slot_sets[t] = slot_sets[t] | {sensor}

    # The schedule window constraint uses the max period for validation
    # purposes; per-node feasibility holds by construction.
    return UnrolledSchedule(
        slots_per_period=max(sensor_periods.values()),
        active_sets=tuple(slot_sets),
    )


class HeterogeneousGreedyPolicy(ActivationPolicy):
    """Execute a heterogeneous greedy plan, repeated every hyperperiod.

    Parameters
    ----------
    sensor_periods:
        Per-sensor periods in slots.  Sensors missing from the map use
        the network's homogeneous period at plan time.
    """

    def __init__(
        self,
        sensor_periods: Optional[Dict[int, int]] = None,
        hyperperiod_cap: int = 4096,
    ):
        self._overrides = dict(sensor_periods or {})
        self._cap = hyperperiod_cap
        self._plan: Optional[UnrolledSchedule] = None

    @property
    def plan(self) -> Optional[UnrolledSchedule]:
        return self._plan

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        if self._plan is None:
            default_period = network.period.slots_per_period
            periods = {
                v: self._overrides.get(v, default_period)
                for v in range(network.num_sensors)
            }
            self._plan = plan_heterogeneous(
                periods, network.utility, hyperperiod_cap=self._cap
            )
        return self._plan.active_set(slot % self._plan.total_slots)

    def reset(self) -> None:
        self._plan = None
