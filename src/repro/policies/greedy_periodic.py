"""Plan once with Algorithm 1, repeat every period (Thm. 4.3).

The paper's deployed configuration: compute the greedy hill-climbing
schedule for a single charging period, then execute it periodically for
the whole working time.  Planning is lazy -- it happens on the first
``decide`` call, using the network's own period and utility, so the
policy can be constructed before the network exists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Optional

from repro.core.greedy import greedy_schedule
from repro.core.greedy_passive import greedy_passive_schedule
from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule
from repro.policies.base import ActivationPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


class GreedyPeriodicPolicy(ActivationPolicy):
    """Greedy plan for one period, repeated forever."""

    def __init__(self, lazy: bool = True):
        self._lazy = lazy
        self._schedule: Optional[PeriodicSchedule] = None

    @property
    def schedule(self) -> Optional[PeriodicSchedule]:
        """The planned one-period schedule (``None`` before first use)."""
        return self._schedule

    def _plan(self, network: "SensorNetwork") -> PeriodicSchedule:
        problem = SchedulingProblem(
            num_sensors=network.num_sensors,
            period=network.period,
            utility=network.utility,
        )
        if problem.is_sparse_regime:
            return greedy_schedule(problem, lazy=self._lazy)
        return greedy_passive_schedule(problem, lazy=self._lazy)

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        if self._schedule is None:
            self._schedule = self._plan(network)
        return self._schedule.active_set(slot)

    def reset(self) -> None:
        self._schedule = None
