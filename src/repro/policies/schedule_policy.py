"""Execute a fixed schedule (periodic or unrolled) verbatim.

The bridge between the offline solvers and the online simulator: a
:class:`~repro.core.schedule.PeriodicSchedule` is repeated every period
(Fig. 5) and an :class:`~repro.core.schedule.UnrolledSchedule` is read
slot-by-slot (slots past its end command nothing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Union

from repro.core.schedule import PeriodicSchedule, UnrolledSchedule
from repro.policies.base import ActivationPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


class SchedulePolicy(ActivationPolicy):
    """Commands exactly what the schedule says, every slot."""

    def __init__(self, schedule: Union[PeriodicSchedule, UnrolledSchedule]):
        self.schedule = schedule

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        if isinstance(self.schedule, PeriodicSchedule):
            return self.schedule.active_set(slot)
        if slot < self.schedule.total_slots:
            return self.schedule.active_set(slot)
        return frozenset()
