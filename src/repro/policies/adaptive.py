"""Adaptive re-planning: estimate rho online, re-plan when it shifts.

The paper's deployment story (Sec. I, II-B, VI-A): the charging pattern
is stable over short windows (~2 h) but changes with the weather, so
"in order to suit long-term monitoring case, e.g. one week, we can
dynamically choose mu_d and mu_r according to different weather
condition".  This policy implements that loop:

1. Observe the energy actually charged by passive nodes each slot
   (the testbed's charging-voltage measurement, in simulation form) and
   feed a :class:`~repro.solar.harvest.HarvestEstimator`.
2. Every ``replan_interval`` slots (default 8 slots = 2 h at 15 min),
   fit a :class:`~repro.energy.period.ChargingPeriod` from the
   estimate, snapping rho to the integral grid.
3. If the fitted rho differs from the one currently planned for,
   recompute the greedy schedule under the new period, phase-aligned to
   the replan boundary.

Until the first estimate exists the policy plans with the network's
nominal period.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Optional, Sequence

from repro.core.greedy import greedy_schedule
from repro.core.greedy_passive import greedy_passive_schedule
from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule
from repro.energy.period import ChargingPeriod
from repro.policies.base import ActivationPolicy
from repro.solar.harvest import HarvestEstimator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork
    from repro.sim.node import NodeSlotReport


class AdaptiveReplanPolicy(ActivationPolicy):
    """Greedy schedule, re-planned as the charging-pattern estimate moves."""

    def __init__(
        self,
        replan_interval: int = 8,
        estimator_window_minutes: float = 120.0,
        lazy: bool = True,
    ):
        if replan_interval < 1:
            raise ValueError(
                f"replan_interval must be >= 1, got {replan_interval}"
            )
        self.replan_interval = replan_interval
        self._estimator_window = estimator_window_minutes
        self._lazy = lazy
        self._estimator: Optional[HarvestEstimator] = None
        self._schedule: Optional[PeriodicSchedule] = None
        self._planned_period: Optional[ChargingPeriod] = None
        self._plan_start_slot = 0
        self._slot_minutes: Optional[float] = None
        self.replans = 0

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan(
        self, network: "SensorNetwork", period: ChargingPeriod, slot: int
    ) -> None:
        problem = SchedulingProblem(
            num_sensors=network.num_sensors,
            period=period,
            utility=network.utility,
        )
        if problem.is_sparse_regime:
            self._schedule = greedy_schedule(problem, lazy=self._lazy)
        else:
            self._schedule = greedy_passive_schedule(problem, lazy=self._lazy)
        self._planned_period = period
        self._plan_start_slot = slot

    def _maybe_replan(self, network: "SensorNetwork", slot: int) -> None:
        if self._estimator is None:
            return
        capacity = network.nodes[0].battery.capacity if network.nodes else 1.0
        fitted = self._estimator.estimated_period(
            capacity=capacity,
            discharge_time=network.period.discharge_time,
        )
        if fitted is None:
            return
        assert self._planned_period is not None
        if abs(fitted.rho - self._planned_period.rho) > 1e-9:
            self._plan(network, fitted, slot)
            self.replans += 1

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        if self._estimator is None:
            self._estimator = HarvestEstimator(
                window_minutes=self._estimator_window
            )
        if self._slot_minutes is None:
            self._slot_minutes = network.period.slot_length
        if self._schedule is None:
            self._plan(network, network.period, slot)
        elif slot > self._plan_start_slot and slot % self.replan_interval == 0:
            self._maybe_replan(network, slot)
        assert self._schedule is not None
        phase = slot - self._plan_start_slot
        return self._schedule.active_set(phase)

    def observe(self, slot: int, reports: Sequence["NodeSlotReport"]) -> None:
        if self._estimator is None:
            return
        charging = [r.energy_charged for r in reports if r.energy_charged > 0]
        if not charging:
            return
        # One aggregate sample per slot: the mean per-slot charge across
        # recharging nodes, converted to per-minute via the slot length.
        slot_minutes = self._slot_minutes if self._slot_minutes else 15.0
        mean_rate = sum(charging) / len(charging) / slot_minutes
        minute = slot * slot_minutes
        self._estimator.observe(minute, mean_rate)

    def reset(self) -> None:
        self._estimator = None
        self._schedule = None
        self._planned_period = None
        self._plan_start_slot = 0
        self._slot_minutes = None
        self.replans = 0
