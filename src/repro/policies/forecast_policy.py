"""Forecast-driven day-ahead planning policy.

Combines :mod:`repro.solar.forecast` with the greedy scheduler: at the
start of every day, forecast tomorrow's charging profile from the
weather chain (under a chosen risk posture) and plan that day's greedy
schedule for the forecast period.  This is the planning-side
counterpart of :class:`~repro.policies.adaptive.AdaptiveReplanPolicy`
(which *reacts* to measured rates); the two bracket the design space
the paper's "choose the charging pattern per day" remark opens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Optional

from repro.core.greedy import greedy_schedule
from repro.core.greedy_passive import greedy_passive_schedule
from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule
from repro.policies.base import ActivationPolicy
from repro.solar.forecast import RiskPosture, forecast_profile
from repro.solar.weather import MarkovWeatherProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


class ForecastPlanningPolicy(ActivationPolicy):
    """Re-plan each simulated day from the weather forecast.

    Parameters
    ----------
    weather_process:
        The (shared) weather chain; :meth:`decide` samples it forward
        one step per simulated day, so the policy sees the same weather
        sequence the simulation's charging model was built from when
        both are driven by the same chain parameters and seed.
    slots_per_day:
        Day length in slots (48 for 12 h of 15-min slots).
    posture:
        Forecast risk posture (see
        :func:`repro.solar.forecast.forecast_profile`).
    """

    def __init__(
        self,
        weather_process: MarkovWeatherProcess,
        slots_per_day: int = 48,
        posture: RiskPosture = "pessimistic",
    ):
        if slots_per_day < 1:
            raise ValueError(f"slots_per_day must be >= 1, got {slots_per_day}")
        self.weather = weather_process
        self.slots_per_day = slots_per_day
        self.posture = posture
        self._schedule: Optional[PeriodicSchedule] = None
        self._planned_day = -1
        self.plans_made = 0

    def _plan_for_day(self, network: "SensorNetwork", day: int) -> None:
        profile = forecast_profile(self.weather, posture=self.posture)
        problem = SchedulingProblem(
            num_sensors=network.num_sensors,
            period=profile.period,
            utility=network.utility,
        )
        if problem.is_sparse_regime:
            self._schedule = greedy_schedule(problem)
        else:
            self._schedule = greedy_passive_schedule(problem)
        self._planned_day = day
        self.plans_made += 1

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        day = slot // self.slots_per_day
        if day != self._planned_day:
            if self._planned_day >= 0:
                # A day passed: advance the weather chain.
                self.weather.step()
            self._plan_for_day(network, day)
        assert self._schedule is not None
        phase = slot % self.slots_per_day
        return self._schedule.active_set(phase)

    def reset(self) -> None:
        self._schedule = None
        self._planned_day = -1
        self.plans_made = 0
