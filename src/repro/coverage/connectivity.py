"""Communication connectivity: can active sensors report to the sink?

The paper's motivating deployment (Sec. I) gathers sensed data to a
base station over multi-hop radio, and notes that reducing transmission
range "may of course not be always possible depending on network
connectivity constraints".  The scheduling model abstracts this away;
this module makes it checkable so deployments can validate a schedule
against radio reality:

- :func:`communication_graph` -- the unit-disk graph over sensors (and
  the sink) at a given radio range, as a :mod:`networkx` graph;
- :func:`reachable_from_sink` -- which nodes can reach the sink through
  a set of *relay-capable* nodes (in the paper's lifecycle, ACTIVE and
  READY nodes wake and can forward; PASSIVE nodes are dead air);
- :func:`delivery_fraction` -- fraction of an active set whose data can
  reach the sink;
- :func:`min_range_for_connectivity` -- the smallest radio range making
  the full deployment connected (bisection over the unit-disk radius),
  quantifying the intro's range/connectivity trade-off.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

import networkx as nx

from repro.coverage.deployment import Deployment
from repro.coverage.geometry import Point

#: Node key used for the base station in communication graphs.
SINK = "sink"


def communication_graph(
    deployment: Deployment,
    radio_range: float,
    sink: Optional[Point] = None,
) -> nx.Graph:
    """Unit-disk communication graph over the deployment's sensors.

    Sensors are nodes ``0..n-1``; if ``sink`` is given it becomes the
    node :data:`SINK`.  Two nodes are linked iff their distance is at
    most ``radio_range``.
    """
    if radio_range <= 0:
        raise ValueError(f"radio range must be positive, got {radio_range}")
    graph = nx.Graph()
    positions = list(deployment.sensors)
    graph.add_nodes_from(range(len(positions)))
    if sink is not None:
        graph.add_node(SINK)
    for i, a in enumerate(positions):
        for j in range(i + 1, len(positions)):
            if a.distance_to(positions[j]) <= radio_range + 1e-12:
                graph.add_edge(i, j)
        if sink is not None and a.distance_to(sink) <= radio_range + 1e-12:
            graph.add_edge(i, SINK)
    return graph


def reachable_from_sink(
    graph: nx.Graph, relays: Iterable[int]
) -> FrozenSet[int]:
    """Sensors that can reach the sink through relay-capable nodes.

    ``relays`` are the awake nodes (ACTIVE + READY); the subgraph
    induced by them plus the sink is searched from the sink.  A node in
    ``relays`` adjacent to that component is reachable.
    """
    if SINK not in graph:
        raise ValueError("graph has no sink node; pass sink= to communication_graph")
    relay_set: Set = set(relays) & set(graph.nodes)
    induced = graph.subgraph(relay_set | {SINK})
    component = nx.node_connected_component(induced, SINK)
    return frozenset(v for v in component if v != SINK)


def delivery_fraction(
    graph: nx.Graph,
    active: Iterable[int],
    relays: Optional[Iterable[int]] = None,
) -> float:
    """Fraction of the active set able to deliver data to the sink.

    ``relays`` defaults to the active set itself (only sensing nodes
    forward); pass the awake set (ACTIVE + READY) for the paper's
    lifecycle, where READY nodes wake periodically and can relay.
    """
    active_set = frozenset(active)
    if not active_set:
        return 1.0  # vacuously: nothing to deliver, nothing lost
    relay_set = frozenset(relays) if relays is not None else active_set
    reachable = reachable_from_sink(graph, relay_set | active_set)
    return len(active_set & reachable) / len(active_set)


def is_connected_deployment(
    deployment: Deployment, radio_range: float, sink: Point
) -> bool:
    """True iff every sensor could reach the sink with everyone awake."""
    graph = communication_graph(deployment, radio_range, sink=sink)
    reachable = reachable_from_sink(graph, range(deployment.num_sensors))
    return len(reachable) == deployment.num_sensors


def min_range_for_connectivity(
    deployment: Deployment,
    sink: Point,
    precision: float = 0.1,
    upper: Optional[float] = None,
) -> float:
    """Smallest radio range connecting all sensors to the sink.

    Bisection over the unit-disk radius; ``upper`` defaults to the
    region diagonal (always sufficient).  The intro's trade-off in a
    number: below this range, some sensor's data cannot be gathered no
    matter the schedule.
    """
    if precision <= 0:
        raise ValueError(f"precision must be positive, got {precision}")
    if deployment.num_sensors == 0:
        return 0.0
    region = deployment.region
    hi = upper if upper is not None else (region.width**2 + region.height**2) ** 0.5
    if not is_connected_deployment(deployment, hi, sink):
        raise ValueError(
            f"deployment is not connected even at range {hi}; "
            "is the sink inside the region?"
        )
    lo = 0.0
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if is_connected_deployment(deployment, mid, sink):
            hi = mid
        else:
            lo = mid
    return hi
