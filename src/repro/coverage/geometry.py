"""Planar geometry primitives for sensing-coverage computations.

Minimal, dependency-free 2-D geometry: points, axis-aligned rectangles
(the region Omega in Fig. 3b is "a large rectangle area") and disks
(the canonical convex sensing region ``R(v_i)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


@dataclass(frozen=True)
class Rectangle:
    """Axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(
                f"degenerate rectangle: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @classmethod
    def square(cls, side: float) -> "Rectangle":
        """The square ``[0, side]^2`` -- the default deployment region."""
        return cls(0.0, 0.0, side, side)

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    def contains(self, p: Point) -> bool:
        return self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max

    def grid_points(self, nx: int, ny: int) -> Iterator[Point]:
        """Cell-center points of an ``nx x ny`` grid over the rectangle."""
        if nx <= 0 or ny <= 0:
            raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}")
        dx = self.width / nx
        dy = self.height / ny
        for j in range(ny):
            for i in range(nx):
                yield Point(
                    self.x_min + (i + 0.5) * dx,
                    self.y_min + (j + 0.5) * dy,
                )


@dataclass(frozen=True)
class Disk:
    """Closed disk: the sensing region of a fixed-power sensor (Sec. II-A)."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"disk radius must be non-negative, got {self.radius}")

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def contains(self, p: Point) -> bool:
        return self.center.distance_to(p) <= self.radius + 1e-12

    def bounding_box(self) -> Rectangle:
        return Rectangle(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )


def disks_intersect(a: Disk, b: Disk) -> bool:
    """True iff the two closed disks share at least one point."""
    return a.center.distance_to(b.center) <= a.radius + b.radius + 1e-12


def circle_intersections(a: Disk, b: Disk) -> List[Point]:
    """Intersection points of the two disk *boundaries* (0, 1 or 2 points).

    Used by the arrangement refinement to seed sample points near cell
    boundaries, where uniform sampling is least accurate.
    """
    d = a.center.distance_to(b.center)
    if d == 0.0:
        return []  # concentric: no isolated intersection points
    if d > a.radius + b.radius or d < abs(a.radius - b.radius):
        return []
    # Distance from a.center to the line through the intersection points.
    along = (a.radius**2 - b.radius**2 + d**2) / (2 * d)
    h_sq = a.radius**2 - along**2
    if h_sq < 0:
        h_sq = 0.0
    h = math.sqrt(h_sq)
    ux = (b.center.x - a.center.x) / d
    uy = (b.center.y - a.center.y) / d
    mid = Point(a.center.x + along * ux, a.center.y + along * uy)
    if h == 0.0:
        return [mid]
    return [
        Point(mid.x - h * uy, mid.y + h * ux),
        Point(mid.x + h * uy, mid.y - h * ux),
    ]
