"""Uniform-grid spatial index over sensor positions (fleet scale).

Brute-force coverage construction tests every (target, sensor) pair --
``O(n * m)`` calls through :meth:`SensingModel.covers` -- which tops out
around 10^3 sensors.  The sensing models here have *bounded reach* (a
sensor can never cover a point farther than its sensing radius), so a
point's covering sensors all live in a small neighbourhood.  This module
exploits that with the classic uniform grid: hash every sensor into a
square cell whose side is the model's maximum sensing radius, and answer
"who can cover this point?" by scanning only the nearby cells.

Bit-exactness contract
----------------------
The indexed path must be indistinguishable from brute force, down to the
bit.  Three properties make that hold:

1. **Superset candidates.**  The scanned neighbourhood is sized from
   ``max_radius + 1e-12`` (the models' own boundary tolerance), so every
   sensor that could possibly cover the query point is among the
   candidates.  Missing a candidate would silently change results;
   extra candidates are merely filtered out by ``covers``.
2. **Ascending-id filtering.**  Brute force iterates sensors ``j = 0..
   n-1`` and inserts covering ids into a ``frozenset`` in that order.
   Hash-table layout -- and therefore iteration order everywhere
   downstream (see :mod:`repro.utility.incremental`'s contract) --
   depends on insertion order, so :meth:`SpatialGridIndex.candidates`
   returns ids **sorted ascending** and the filter preserves that
   order.  Identical membership + identical insertion sequence =
   bit-identical frozensets.
3. **Same predicate.**  Candidates are accepted by the *same*
   ``model.covers`` / ``model.detection_probability`` calls the brute
   force makes; the index never re-derives geometry.

``REPRO_SPATIAL`` selects the path: default on (``1``), ``0`` /
``false`` / ``off`` force brute force everywhere, and ``verify`` runs
*both* paths and raises :class:`SpatialMismatchError` on any
discrepancy -- the differential guard CI exercises.  Even when on, the
index auto-disables below :data:`SPATIAL_MIN_SENSORS` sensors (the
build cost cannot win) and for models without a finite
:meth:`~repro.coverage.sensing.SensingModel.max_radius`.
"""

from __future__ import annotations

import math
import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.coverage.geometry import Point
from repro.coverage.sensing import SensingModel
from repro.obs.registry import get_registry

#: Below this sensor count the grid build costs more than it saves.
SPATIAL_MIN_SENSORS = 64


class SpatialMismatchError(AssertionError):
    """The indexed path disagreed with brute force (``REPRO_SPATIAL=verify``)."""


def spatial_mode() -> str:
    """The ``REPRO_SPATIAL`` setting: ``"on"``, ``"off"`` or ``"verify"``.

    Defaults to on; ``0`` / ``false`` / ``off`` disable the index,
    ``verify`` runs index + brute force and asserts bit-identity.
    Read at query time, so the toggle applies per call.
    """
    raw = os.environ.get("REPRO_SPATIAL", "1").strip().lower()
    if raw in ("0", "false", "off"):
        return "off"
    if raw == "verify":
        return "verify"
    return "on"


def spatial_enabled(num_sensors: int, model: SensingModel) -> bool:
    """Whether the indexed path applies for this (size, model) pair."""
    if spatial_mode() == "off":
        return False
    if num_sensors < SPATIAL_MIN_SENSORS:
        return False
    return model.max_radius() is not None


class SpatialGridIndex:
    """Uniform grid over sensor positions with ascending-id queries.

    Parameters
    ----------
    sensors:
        Sensor positions; index ``j`` in this sequence is the sensor id
        used everywhere else (schedules, coverage sets).
    model:
        The sensing model; supplies the reach bound (cell size) and the
        coverage predicate.
    """

    def __init__(self, sensors: Sequence[Point], model: SensingModel):
        radius = model.max_radius()
        if radius is None:
            raise ValueError(
                f"{type(model).__name__} has unbounded reach; "
                "a spatial index needs a finite max_radius()"
            )
        if radius <= 0:
            raise ValueError(f"max_radius must be positive, got {radius}")
        self.model = model
        self.sensors = list(sensors)
        #: Boundary tolerance of the sensing models' ``covers``.
        self._reach = float(radius) + 1e-12
        self.cell_size = float(radius)
        # How many cells the reach can straddle: normally 1, but tiny
        # radii (reach > cell) or float rounding get the safe ceiling.
        self._span = max(1, int(math.ceil(self._reach / self.cell_size)))
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        for j, sensor in enumerate(self.sensors):
            self._cells.setdefault(self._key(sensor.x, sensor.y), []).append(j)
        registry = get_registry()
        registry.counter(
            "repro_spatial_index_builds_total",
            "Spatial grid indexes constructed",
        ).inc()
        self._m_queries = registry.counter(
            "repro_spatial_queries_total", "Point queries answered by the index"
        )
        self._m_candidates = registry.counter(
            "repro_spatial_candidates_total",
            "Candidate sensors examined by indexed queries",
        )
        self._m_pruned = registry.counter(
            "repro_spatial_pruned_total",
            "Sensors skipped by indexed queries vs. brute force",
        )

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (
            int(math.floor(x / self.cell_size)),
            int(math.floor(y / self.cell_size)),
        )

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    def candidates(self, point: Point) -> List[int]:
        """Sensor ids near ``point``, **sorted ascending**.

        A superset of the sensors covering the point: everything in the
        ``(2 * span + 1)``-cell neighbourhood of the point's cell.
        """
        cx, cy = self._key(point.x, point.y)
        span = self._span
        found: List[int] = []
        for gx in range(cx - span, cx + span + 1):
            for gy in range(cy - span, cy + span + 1):
                bucket = self._cells.get((gx, gy))
                if bucket:
                    found.extend(bucket)
        found.sort()
        self._m_queries.inc()
        self._m_candidates.inc(len(found))
        self._m_pruned.inc(len(self.sensors) - len(found))
        return found

    def covering_sensors(self, point: Point) -> FrozenSet[int]:
        """``V(point)``: ids of sensors whose region contains the point.

        Bit-identical to the brute-force frozenset: candidates are
        filtered through the same ``covers`` predicate in ascending-id
        order (see the module docstring).
        """
        model = self.model
        sensors = self.sensors
        return frozenset(
            j for j in self.candidates(point) if model.covers(sensors[j], point)
        )

    def detection_map(self, point: Point) -> Dict[int, float]:
        """``{sensor: p}`` for sensors with positive detection probability.

        Mirrors the brute-force map in :func:`~repro.coverage.matrix.
        detection_probabilities` bit-for-bit: same probability calls,
        ascending-id insertion order.
        """
        model = self.model
        sensors = self.sensors
        probs: Dict[int, float] = {}
        for j in self.candidates(point):
            p = model.detection_probability(sensors[j], point)
            if p > 0.0:
                probs[j] = p
        return probs


def index_for(
    sensors: Sequence[Point], model: SensingModel
) -> Optional[SpatialGridIndex]:
    """Build an index iff the indexed path applies, else ``None``.

    The single gate the wiring layers (:mod:`repro.coverage.matrix`,
    :mod:`repro.utility.incremental`) call: it folds together the
    ``REPRO_SPATIAL`` toggle, the size threshold and the model's reach
    bound, so callers need no policy of their own.
    """
    if not spatial_enabled(len(sensors), model):
        return None
    return SpatialGridIndex(sensors, model)


def verify_covering(
    index: SpatialGridIndex, point: Point, indexed: FrozenSet[int]
) -> FrozenSet[int]:
    """Differential guard: assert the indexed answer matches brute force.

    Called by the wiring layers under ``REPRO_SPATIAL=verify``.  Returns
    ``indexed`` unchanged on success so call sites can use it inline.
    """
    model = index.model
    brute = frozenset(
        j
        for j, sensor in enumerate(index.sensors)
        if model.covers(sensor, point)
    )
    if brute != indexed:
        missing = sorted(brute - indexed)
        extra = sorted(indexed - brute)
        raise SpatialMismatchError(
            f"spatial index diverged from brute force at {point}: "
            f"missing={missing} extra={extra}"
        )
    get_registry().counter(
        "repro_spatial_verified_total",
        "Point queries cross-checked against brute force",
    ).inc()
    return indexed
