"""Seeded deployments of sensors and targets in a 2-D region.

The paper deploys sensors over a region and monitors either discrete
targets (red hexagons in Fig. 3a) or the whole region.  Evaluation runs
use 100-500 sensors and 1-50 targets (Sec. VI-B, Fig. 8/9).  All
generators here take an explicit :class:`numpy.random.Generator` (or an
int seed) so every experiment is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.coverage.geometry import Point, Rectangle

RngLike = Union[int, np.random.Generator, None]


def make_rng(rng: RngLike) -> np.random.Generator:
    """Coerce an int seed / Generator / None into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass(frozen=True)
class Deployment:
    """Sensor and target positions inside a region.

    Attributes
    ----------
    region:
        The deployment region Omega.
    sensors:
        Sensor positions; sensor ``i``'s id is its index.
    targets:
        Target positions; target ``i``'s id is its index.  Empty for
        region-monitoring scenarios.
    """

    region: Rectangle
    sensors: Tuple[Point, ...]
    targets: Tuple[Point, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for kind, points in (("sensor", self.sensors), ("target", self.targets)):
            for i, p in enumerate(points):
                if not self.region.contains(p):
                    raise ValueError(
                        f"{kind} {i} at ({p.x}, {p.y}) is outside region {self.region}"
                    )

    @property
    def num_sensors(self) -> int:
        return len(self.sensors)

    @property
    def num_targets(self) -> int:
        return len(self.targets)

    def with_targets(self, targets: Sequence[Point]) -> "Deployment":
        return Deployment(self.region, self.sensors, tuple(targets))

    def sensor_array(self) -> np.ndarray:
        """Sensor coordinates as an ``(n, 2)`` array."""
        return np.array([[p.x, p.y] for p in self.sensors]).reshape(-1, 2)

    def target_array(self) -> np.ndarray:
        """Target coordinates as an ``(m, 2)`` array."""
        return np.array([[p.x, p.y] for p in self.targets]).reshape(-1, 2)


def _uniform_points(
    region: Rectangle, count: int, rng: np.random.Generator
) -> List[Point]:
    xs = rng.uniform(region.x_min, region.x_max, size=count)
    ys = rng.uniform(region.y_min, region.y_max, size=count)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def uniform_deployment(
    num_sensors: int,
    num_targets: int = 0,
    region: Rectangle | None = None,
    rng: RngLike = None,
) -> Deployment:
    """Sensors and targets i.i.d. uniform over the region.

    This is the standard random-deployment assumption for rooftop /
    forest monitoring scenarios (paper Sec. I) and what we use to drive
    the Fig. 8 and Fig. 9 reproductions.
    """
    if num_sensors < 0 or num_targets < 0:
        raise ValueError("counts must be non-negative")
    region = region or Rectangle.square(100.0)
    generator = make_rng(rng)
    sensors = _uniform_points(region, num_sensors, generator)
    targets = _uniform_points(region, num_targets, generator)
    return Deployment(region, tuple(sensors), tuple(targets))


def grid_deployment(
    nx: int,
    ny: int,
    num_targets: int = 0,
    region: Rectangle | None = None,
    jitter: float = 0.0,
    rng: RngLike = None,
) -> Deployment:
    """Sensors on an ``nx x ny`` grid, optionally jittered; targets uniform.

    Grid deployments give predictable overlap structure; useful for
    tests where coverage sets must be known exactly.
    """
    if nx <= 0 or ny <= 0:
        raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}")
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    region = region or Rectangle.square(100.0)
    generator = make_rng(rng)
    sensors: List[Point] = []
    for p in region.grid_points(nx, ny):
        if jitter > 0:
            dx, dy = generator.uniform(-jitter, jitter, size=2)
            candidate = Point(
                min(max(p.x + float(dx), region.x_min), region.x_max),
                min(max(p.y + float(dy), region.y_min), region.y_max),
            )
        else:
            candidate = p
        sensors.append(candidate)
    targets = _uniform_points(region, num_targets, generator)
    return Deployment(region, tuple(sensors), tuple(targets))


def cluster_deployment(
    num_clusters: int,
    sensors_per_cluster: int,
    num_targets: int = 0,
    region: Rectangle | None = None,
    spread: float = 5.0,
    rng: RngLike = None,
) -> Deployment:
    """Sensors in Gaussian clusters around uniform cluster centers.

    Models patchy deployments (sensors dropped in batches), producing
    highly non-uniform coverage -- a stress case for the scheduler: the
    greedy scheme must spread cluster members across time-slots to avoid
    wasted simultaneous coverage.
    """
    if num_clusters <= 0 or sensors_per_cluster <= 0:
        raise ValueError("cluster counts must be positive")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    region = region or Rectangle.square(100.0)
    generator = make_rng(rng)
    centers = _uniform_points(region, num_clusters, generator)
    sensors: List[Point] = []
    for center in centers:
        offsets = generator.normal(0.0, spread, size=(sensors_per_cluster, 2))
        for dx, dy in offsets:
            sensors.append(
                Point(
                    min(max(center.x + float(dx), region.x_min), region.x_max),
                    min(max(center.y + float(dy), region.y_min), region.y_max),
                )
            )
    targets = _uniform_points(region, num_targets, generator)
    return Deployment(region, tuple(sensors), tuple(targets))


def poisson_deployment(
    intensity: float,
    num_targets: int = 0,
    region: Rectangle | None = None,
    rng: RngLike = None,
) -> Deployment:
    """Poisson point process with the given intensity (sensors per unit area).

    The sensor *count* is Poisson-distributed; positions are uniform.
    """
    if intensity < 0:
        raise ValueError(f"intensity must be non-negative, got {intensity}")
    region = region or Rectangle.square(100.0)
    generator = make_rng(rng)
    count = int(generator.poisson(intensity * region.area))
    sensors = _uniform_points(region, count, generator)
    targets = _uniform_points(region, num_targets, generator)
    return Deployment(region, tuple(sensors), tuple(targets))
