"""The coverage relation: ``a_ij``, ``V(O_i)`` and helpers (Sec. IV-A-1).

Given a deployment and a sensing model, these functions compute the
indicator

.. math::

    a_{ij} = \\begin{cases} 1 & \\text{if sensor } v_j \\text{ covers
    target } O_i \\\\ 0 & \\text{else} \\end{cases}

and the per-target sensor sets ``V(O_i)`` used everywhere in the
scheduling layer.

At fleet scale the all-pairs loop is the bottleneck (``O(n * m)``
``covers`` calls), so every helper here routes through the uniform-grid
index of :mod:`repro.coverage.spatial` when ``REPRO_SPATIAL`` allows it
-- bit-identical results by the index's ascending-id contract, with
``REPRO_SPATIAL=verify`` cross-checking every query against brute
force.
"""

from __future__ import annotations

from typing import FrozenSet, List

import numpy as np

from repro.coverage.deployment import Deployment
from repro.coverage.sensing import SensingModel
from repro.coverage.spatial import index_for, spatial_mode, verify_covering


def coverage_sets(
    deployment: Deployment, model: SensingModel
) -> List[FrozenSet[int]]:
    """``V(O_i)`` for every target: sensors whose region contains it."""
    index = index_for(deployment.sensors, model)
    if index is not None:
        verify = spatial_mode() == "verify"
        sets: List[FrozenSet[int]] = []
        for target in deployment.targets:
            covering = index.covering_sensors(target)
            if verify:
                covering = verify_covering(index, target, covering)
            sets.append(covering)
        return sets
    sets = []
    for target in deployment.targets:
        covering = frozenset(
            j
            for j, sensor in enumerate(deployment.sensors)
            if model.covers(sensor, target)
        )
        sets.append(covering)
    return sets


def coverage_matrix(deployment: Deployment, model: SensingModel) -> np.ndarray:
    """Indicator matrix ``a`` of shape ``(m, n)``, ``a[i, j] = a_ij``."""
    m = deployment.num_targets
    n = deployment.num_sensors
    a = np.zeros((m, n), dtype=np.int8)
    for i, covering in enumerate(coverage_sets(deployment, model)):
        for j in covering:
            a[i, j] = 1
    return a


def detection_probabilities(
    deployment: Deployment, model: SensingModel
) -> List[dict]:
    """Per-target ``{sensor: p}`` maps from the sensing model.

    For a :class:`~repro.coverage.sensing.DiskSensingModel` every
    in-range probability is the constant ``p``; probabilistic models
    give distance-dependent values.  Feed each map into
    :class:`~repro.utility.detection.DetectionUtility`.
    """
    index = index_for(deployment.sensors, model)
    if index is not None:
        # Positive detection probability implies coverage distance for
        # both built-in models, so the candidate superset is valid here
        # too; ascending-id insertion keeps the dicts bit-identical.
        return [index.detection_map(target) for target in deployment.targets]
    maps: List[dict] = []
    for target in deployment.targets:
        probs = {}
        for j, sensor in enumerate(deployment.sensors):
            p = model.detection_probability(sensor, target)
            if p > 0.0:
                probs[j] = p
        maps.append(probs)
    return maps


def ensure_coverable(
    deployment: Deployment, model: SensingModel
) -> Deployment:
    """Drop targets no sensor can cover.

    Random deployments can leave targets outside every sensing disk;
    such targets contribute zero utility under any schedule and only
    dilute the "average utility per target" metric.  The paper's
    testbed scenarios implicitly have every target covered (p=0.4 per
    covering sensor); this helper reproduces that precondition.
    """
    sets = coverage_sets(deployment, model)
    kept = [
        target
        for target, covering in zip(deployment.targets, sets)
        if covering
    ]
    if len(kept) == deployment.num_targets:
        return deployment
    return deployment.with_targets(kept)
