"""Coverage geometry: deployments, sensing regions, the coverage
relation ``a_ij`` and the subregion arrangement of Fig. 3.

The paper places ``n`` sensors in a 2-D region; each sensor ``v_i``
monitors a fixed region ``R(v_i)`` (Sec. II-A).  Two monitoring modes
are supported:

- **Targets** (Fig. 3a): discrete points ``O_1..O_m``; the coverage
  relation ``a_ij`` says which sensors can monitor which target.
  Built by :func:`~repro.coverage.matrix.coverage_sets` /
  :func:`~repro.coverage.matrix.coverage_matrix`.
- **Region** (Fig. 3b): the whole region Omega is subdivided into the
  cells of the arrangement of the sensing regions, bounded by a
  polynomial number of subregions; each cell becomes a
  :class:`~repro.utility.area.Subregion` with an area and preference
  weight.  Built by :func:`~repro.coverage.arrangement.compute_subregions`.
"""

from repro.coverage.geometry import (
    Disk,
    Point,
    Rectangle,
    disks_intersect,
    distance,
)
from repro.coverage.sensing import (
    DiskSensingModel,
    ProbabilisticSensingModel,
    SensingModel,
)
from repro.coverage.deployment import (
    Deployment,
    cluster_deployment,
    grid_deployment,
    poisson_deployment,
    uniform_deployment,
)
from repro.coverage.matrix import (
    coverage_matrix,
    coverage_sets,
    detection_probabilities,
    ensure_coverable,
)
from repro.coverage.arrangement import compute_subregions, count_subregions

__all__ = [
    "Point",
    "Disk",
    "Rectangle",
    "distance",
    "disks_intersect",
    "SensingModel",
    "DiskSensingModel",
    "ProbabilisticSensingModel",
    "Deployment",
    "uniform_deployment",
    "grid_deployment",
    "cluster_deployment",
    "poisson_deployment",
    "coverage_sets",
    "coverage_matrix",
    "detection_probabilities",
    "ensure_coverable",
    "compute_subregions",
    "count_subregions",
]
