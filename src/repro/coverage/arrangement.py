"""Subdivision of a region into subregions induced by sensing disks (Fig. 3b).

The paper subdivides the monitored region Omega by the arrangement of
the ``n`` sensing regions into at most ``O(n^2)`` cells, each labelled
by the set of sensors covering it; the area utility (Eq. 2) is then a
weighted coverage function over those cells.

We compute the decomposition *numerically*: every point of Omega gets a
signature (the frozenset of disks containing it); points sharing a
signature belong to the same union of arrangement cells, and the area
of each signature class is estimated by quadrature over a fine grid.
For the utility function (which only needs *signature -> area*), merging
all cells with equal signatures is exact -- ``I_i(S)`` in Eq. 2 depends
only on the covering set, not on which connected component the cell is.

Area error is O(cell perimeter * grid pitch); the test-suite checks
convergence against closed-form disk areas.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

import numpy as np

from repro.coverage.geometry import Disk, Point, Rectangle
from repro.utility.area import Subregion


def _signature_grid(
    region: Rectangle, disks: Sequence[Disk], resolution: int
) -> Dict[FrozenSet[int], int]:
    """Count grid cells per coverage signature using vectorized numpy.

    Returns a mapping ``signature -> number of grid cells``, including
    the empty signature for uncovered cells.
    """
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    xs = region.x_min + (np.arange(resolution) + 0.5) * (region.width / resolution)
    ys = region.y_min + (np.arange(resolution) + 0.5) * (region.height / resolution)
    grid_x, grid_y = np.meshgrid(xs, ys)
    flat_x = grid_x.ravel()
    flat_y = grid_y.ravel()
    num_points = flat_x.size

    # Bit-pack coverage of each point into python ints via per-disk masks.
    # For n <= ~500 disks this is fast and exact.
    signatures = np.zeros(num_points, dtype=object)
    signatures[:] = 0
    for disk_id, disk in enumerate(disks):
        dx = flat_x - disk.center.x
        dy = flat_y - disk.center.y
        inside = dx * dx + dy * dy <= disk.radius * disk.radius
        bit = 1 << disk_id
        for idx in np.flatnonzero(inside):
            signatures[idx] += bit

    counts: Dict[int, int] = {}
    for sig in signatures:
        counts[sig] = counts.get(sig, 0) + 1

    decoded: Dict[FrozenSet[int], int] = {}
    for packed, count in counts.items():
        members = frozenset(
            disk_id for disk_id in range(len(disks)) if packed >> disk_id & 1
        )
        decoded[members] = decoded.get(members, 0) + count
    return decoded


def compute_subregions(
    region: Rectangle,
    disks: Sequence[Disk],
    resolution: int = 200,
    weights: Dict[FrozenSet[int], float] | None = None,
    default_weight: float = 1.0,
    include_uncovered: bool = False,
) -> List[Subregion]:
    """Decompose ``region`` into signature classes of the disk arrangement.

    Parameters
    ----------
    region:
        The monitored region Omega.
    disks:
        Sensing regions ``R(v_i)``; disk ``i``'s id is its index.
    resolution:
        Grid resolution per axis for area quadrature; error shrinks
        linearly with the pitch.
    weights:
        Optional per-signature preference weight ``w_i``; defaults to
        ``default_weight`` for every class.
    include_uncovered:
        If True, also emit the uncovered class (empty signature) --
        useful for reporting the uncovered area; it never contributes
        utility.

    Returns
    -------
    One :class:`~repro.utility.area.Subregion` per coverage signature,
    with area estimated by quadrature.
    """
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    cell_area = region.area / (resolution * resolution)
    decoded = _signature_grid(region, disks, resolution)
    subregions: List[Subregion] = []
    for signature, count in sorted(
        decoded.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))
    ):
        if not signature and not include_uncovered:
            continue
        weight = default_weight
        if weights is not None and signature in weights:
            weight = weights[signature]
        if not signature:
            # Uncovered area is reported with weight as given but will be
            # filtered out by AreaCoverageUtility anyway.
            subregions.append(
                Subregion(covered_by=signature, area=count * cell_area, weight=weight)
            )
        else:
            subregions.append(
                Subregion(covered_by=signature, area=count * cell_area, weight=weight)
            )
    return subregions


def count_subregions(
    region: Rectangle, disks: Sequence[Disk], resolution: int = 200
) -> int:
    """Number of distinct non-empty coverage signatures in the region.

    Fig. 3b's example shows 38 subregions for 3 overlapping regions in a
    rectangle; this function reproduces such counts (connected
    components with identical signatures are merged, so counts here are
    a lower bound on the paper's purely geometric cell count; the
    utility value is unaffected).
    """
    decoded = _signature_grid(region, disks, resolution)
    return sum(1 for signature in decoded if signature)


def uncovered_area(
    region: Rectangle, disks: Sequence[Disk], resolution: int = 200
) -> float:
    """Area of the region not covered by any disk (quadrature estimate)."""
    decoded = _signature_grid(region, disks, resolution)
    cell_area = region.area / (resolution * resolution)
    return decoded.get(frozenset(), 0) * cell_area


def covered_area(
    region: Rectangle, disks: Sequence[Disk], resolution: int = 200
) -> float:
    """Area covered by the union of the disks, clipped to the region."""
    return region.area - uncovered_area(region, disks, resolution)
