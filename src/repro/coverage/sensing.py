"""Sensing models: which sensors can monitor which points, and how well.

The paper fixes each sensor's operating power, so its monitored region
``R(v_i)`` is fixed (Sec. II-A).  Two concrete models:

- :class:`DiskSensingModel` -- the boolean disk model: ``v`` monitors
  every point within its sensing radius; detection probability is a
  constant ``p`` inside the disk (``p = 0.4`` in the paper's
  evaluation) and 0 outside.
- :class:`ProbabilisticSensingModel` -- distance-decaying detection
  probability ``p(d) = p0 * exp(-beta * d)`` truncated at the sensing
  radius; a common refinement that still yields a submodular detection
  utility (the miss probabilities multiply).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.coverage.geometry import Disk, Point


class SensingModel(ABC):
    """Maps (sensor position, point) to coverage and detection quality."""

    @abstractmethod
    def covers(self, sensor: Point, point: Point) -> bool:
        """True iff the point lies inside the sensor's monitored region."""

    @abstractmethod
    def detection_probability(self, sensor: Point, point: Point) -> float:
        """Per-event detection probability of this sensor for the point."""

    @abstractmethod
    def region(self, sensor: Point) -> Disk:
        """The monitored region ``R(v)`` as a disk."""

    def max_radius(self) -> float | None:
        """Upper bound on any sensor's reach, or ``None`` if unbounded.

        The reach bound a :class:`~repro.coverage.spatial.
        SpatialGridIndex` sizes its cells from: ``covers(s, p)`` must be
        False whenever ``p`` is farther than this from ``s`` (plus the
        models' ``1e-12`` boundary tolerance).  Both built-in models are
        disk-truncated, so the default reads their ``radius``; exotic
        models without a finite bound return ``None``, which disables
        spatial indexing for them.
        """
        radius = getattr(self, "radius", None)
        return float(radius) if radius is not None else None


@dataclass(frozen=True)
class DiskSensingModel(SensingModel):
    """Boolean disk sensing with constant in-range detection probability.

    Parameters
    ----------
    radius:
        Sensing radius (same units as the deployment region).
    p:
        Detection probability for any point inside the disk.  The paper
        uses ``p = 0.4``.
    """

    radius: float
    p: float = 0.4

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"sensing radius must be positive, got {self.radius}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"detection probability must be in [0, 1], got {self.p}")

    def covers(self, sensor: Point, point: Point) -> bool:
        return sensor.distance_to(point) <= self.radius + 1e-12

    def detection_probability(self, sensor: Point, point: Point) -> float:
        return self.p if self.covers(sensor, point) else 0.0

    def region(self, sensor: Point) -> Disk:
        return Disk(sensor, self.radius)


@dataclass(frozen=True)
class ProbabilisticSensingModel(SensingModel):
    """Exponentially decaying detection probability, truncated at ``radius``.

    ``p(d) = p0 * exp(-beta * d)`` for ``d <= radius``, else 0.
    """

    radius: float
    p0: float = 0.9
    beta: float = 0.5

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"sensing radius must be positive, got {self.radius}")
        if not 0.0 <= self.p0 <= 1.0:
            raise ValueError(f"p0 must be in [0, 1], got {self.p0}")
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")

    def covers(self, sensor: Point, point: Point) -> bool:
        return sensor.distance_to(point) <= self.radius + 1e-12

    def detection_probability(self, sensor: Point, point: Point) -> float:
        d = sensor.distance_to(point)
        if d > self.radius + 1e-12:
            return 0.0
        return self.p0 * math.exp(-self.beta * d)

    def region(self, sensor: Point) -> Disk:
        return Disk(sensor, self.radius)
