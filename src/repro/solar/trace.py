"""Synthetic testbed traces: the software stand-in for Fig. 7's data.

The paper logged (time, light strength, charging voltage) for rooftop
TelosB motes from the evening of July 16 2009 to the evening of July 17
2009 and plotted three days (July 15-17) for nodes 5 and 6.  We cannot
rerun that testbed, so :func:`generate_node_trace` synthesizes the same
kind of per-minute log from the irradiance, weather and panel models,
while also integrating the node's battery through active/passive cycles
so the trace shows the recharge sawtooth.

What must (and does) match the paper qualitatively:

- light strength rises after sunrise, peaks near noon, falls to zero at
  night, with visible high-frequency fluctuation;
- charging voltage is ~flat at the regulation level whenever the light
  is above the charger's turn-on threshold -- regardless of how much
  the light itself swings;
- consequently the recharge rate, hence ``T_r``, is stable within the
  day (the premise of the paper's fixed-rho scheduling).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.coverage.deployment import RngLike, make_rng
from repro.energy.battery import Battery
from repro.solar.irradiance import DiurnalIrradiance
from repro.solar.panel import SolarPanel
from repro.solar.weather import WEATHER_ATTENUATION, WeatherCondition


@dataclass(frozen=True)
class TraceSample:
    """One per-minute log row of the (simulated) testbed."""

    minute: float  # running minutes since trace start
    light: float  # measured light strength, W/m^2
    voltage: float  # charging voltage, V
    battery_level: float  # energy stored, J
    charge_rate: float  # instantaneous mu_r, J/min
    is_active: bool  # node was ACTIVE (draining) this minute


@dataclass(frozen=True)
class NodeTrace:
    """A full multi-day log for one node."""

    node_id: int
    weather_by_day: Sequence[WeatherCondition]
    samples: Sequence[TraceSample]

    @property
    def duration_minutes(self) -> float:
        return self.samples[-1].minute - self.samples[0].minute if self.samples else 0.0

    def light_array(self) -> np.ndarray:
        return np.array([s.light for s in self.samples])

    def voltage_array(self) -> np.ndarray:
        return np.array([s.voltage for s in self.samples])

    def minute_array(self) -> np.ndarray:
        return np.array([s.minute for s in self.samples])

    def battery_array(self) -> np.ndarray:
        return np.array([s.battery_level for s in self.samples])

    def daytime_voltage_stability(self) -> float:
        """Relative std of the charging voltage while harvesting.

        The paper's Fig. 7 takeaway is that this number is small even
        though the light's relative std is large.
        """
        volts = np.array([s.voltage for s in self.samples if s.voltage > 0])
        if volts.size == 0:
            return 0.0
        return float(volts.std() / volts.mean())

    def daytime_light_variability(self) -> float:
        """Relative std of the light strength during daylight."""
        light = np.array([s.light for s in self.samples if s.light > 0])
        if light.size == 0:
            return 0.0
        return float(light.std() / light.mean())

    def to_csv(self) -> str:
        """Serialize to CSV (minute, light, voltage, battery, rate, active)."""
        buffer = io.StringIO()
        buffer.write("minute,light,voltage,battery_level,charge_rate,is_active\n")
        for s in self.samples:
            buffer.write(
                f"{s.minute:.1f},{s.light:.3f},{s.voltage:.3f},"
                f"{s.battery_level:.4f},{s.charge_rate:.5f},{int(s.is_active)}\n"
            )
        return buffer.getvalue()


def generate_node_trace(
    node_id: int,
    days: int = 3,
    weather: Sequence[WeatherCondition] | None = None,
    irradiance: DiurnalIrradiance | None = None,
    panel: SolarPanel | None = None,
    battery_capacity: float = 50.0,
    active_power: float = 0.055,
    duty_cycle_period: float = 60.0,
    rng: RngLike = None,
) -> NodeTrace:
    """Simulate one node's testbed log at 1-minute resolution.

    The node runs a fixed duty cycle mimicking the paper's deployment:
    in every ``duty_cycle_period`` minutes of daylight it goes ACTIVE at
    the start of the period and drains until its battery empties (which,
    with the default parameters, takes ~15 minutes -- the measured T_d),
    then recharges for the rest of the period (~45 minutes with the
    default panel under sunny noon light -- the measured T_r).

    Parameters
    ----------
    node_id:
        Id recorded into the trace (the paper shows nodes 5 and 6).
    days:
        Number of full days to simulate (Fig. 7 shows 3).
    weather:
        One condition per day; defaults to all sunny, which is the
        July window the paper measured.
    battery_capacity:
        ``B`` in joules.  Default 50 J, sized so active drain empties it
        in ~15 min.
    active_power:
        Drain while ACTIVE, in watts.  Default 55 mW (TelosB radio-on
        ballpark).
    """
    if days <= 0:
        raise ValueError(f"days must be positive, got {days}")
    if weather is None:
        weather = [WeatherCondition.SUNNY] * days
    if len(weather) != days:
        raise ValueError(f"need {days} weather entries, got {len(weather)}")
    irradiance = irradiance or DiurnalIrradiance()
    panel = panel or SolarPanel()
    generator = make_rng(rng)

    battery = Battery(battery_capacity)
    samples: List[TraceSample] = []
    discharge_per_minute = active_power * 60.0

    total_minutes = days * 24 * 60
    is_active = False
    for minute in range(total_minutes):
        day = minute // (24 * 60)
        condition = weather[day]
        params = WEATHER_ATTENUATION[condition]
        clear = irradiance.at(minute)
        flicker = 1.0 + params.flicker * float(generator.standard_normal())
        light = float(np.clip(clear * params.mean_attenuation * flicker, 0.0, clear))

        # Duty cycle: start an activation at each period boundary during
        # daylight, if the battery is full (paper: only fully charged
        # sensors activate).
        if (
            minute % duty_cycle_period == 0
            and irradiance.is_daylight(minute)
            and battery.is_full
        ):
            is_active = True

        charge_rate = 0.0
        voltage = 0.0
        if is_active:
            battery.discharge(discharge_per_minute)
            if battery.is_empty:
                is_active = False
        else:
            # Diffuse-light derating: under clouds the usable charging
            # power drops even when the light level alone would saturate
            # the charger (see WeatherParams.charger_derating).
            charge_rate = panel.recharge_rate(light) * params.charger_derating
            if charge_rate > 0:
                battery.charge(charge_rate)
                voltage = panel.charging_voltage(light)

        samples.append(
            TraceSample(
                minute=float(minute),
                light=light,
                voltage=voltage,
                battery_level=battery.level,
                charge_rate=charge_rate,
                is_active=is_active,
            )
        )

    return NodeTrace(node_id=node_id, weather_by_day=tuple(weather), samples=samples)
