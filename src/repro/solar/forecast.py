"""Day-ahead harvest forecasting from the weather process.

The paper's long-term operating mode chooses a charging pattern per day
by weather.  Given today's condition and the weather chain, tomorrow's
condition -- hence tomorrow's (T_d, T_r) profile -- is a distribution,
and a deployment can plan against its expectation instead of waiting to
re-measure.  This module provides:

- :func:`next_day_distribution` -- the conditional distribution of
  tomorrow's weather given today's;
- :func:`expected_rho` -- the expectation of tomorrow's rho under that
  distribution (with the catalogue profiles);
- :func:`forecast_profile` -- the most robust planning profile for
  tomorrow under a chosen risk posture: ``"expected"`` plans for the
  snapped expected rho, ``"pessimistic"`` for the worst
  plausible rho (never refuses activations), ``"mode"`` for the most
  likely condition.
"""

from __future__ import annotations

from typing import Dict, Literal

import numpy as np

from repro.energy.period import ChargingPeriod
from repro.energy.profiles import ChargingProfile, profile_for_weather
from repro.solar.weather import MarkovWeatherProcess, WeatherCondition

RiskPosture = Literal["expected", "pessimistic", "mode"]

_ORDER = (
    WeatherCondition.SUNNY,
    WeatherCondition.CLOUDY,
    WeatherCondition.RAINY,
)


def next_day_distribution(
    process: MarkovWeatherProcess,
    today: WeatherCondition | None = None,
) -> Dict[WeatherCondition, float]:
    """P(tomorrow = c | today) from the chain's transition matrix."""
    condition = today if today is not None else process.current
    row_index = _ORDER.index(condition)
    row = process._matrix[row_index]  # the chain owns its matrix
    return {c: float(p) for c, p in zip(_ORDER, row)}


def expected_rho(distribution: Dict[WeatherCondition, float]) -> float:
    """E[rho(tomorrow)] under the catalogue profiles."""
    total = 0.0
    for condition, probability in distribution.items():
        total += probability * profile_for_weather(condition.value).rho
    return total


def _snap_up(rho: float) -> float:
    """Snap to the next integral rho at or above (conservative)."""
    import math

    if rho >= 1:
        return float(math.ceil(rho - 1e-9))
    k = math.floor(1.0 / rho + 1e-9)
    return 1.0 / max(1, k)


def forecast_profile(
    process: MarkovWeatherProcess,
    today: WeatherCondition | None = None,
    posture: RiskPosture = "pessimistic",
) -> ChargingProfile:
    """Pick tomorrow's planning profile.

    - ``"mode"``: the most likely condition's measured profile.
    - ``"expected"``: a synthetic profile at the snapped-up expected
      rho (conservative rounding: planning for a slightly slower
      recharge only costs utility, never feasibility).
    - ``"pessimistic"``: the slowest-charging condition with
      probability >= 10% -- activations are never refused at the cost
      of duty cycle.
    """
    distribution = next_day_distribution(process, today)
    if posture == "mode":
        best = max(distribution.items(), key=lambda kv: kv[1])[0]
        return profile_for_weather(best.value)
    if posture == "pessimistic":
        plausible = [
            c for c, p in distribution.items() if p >= 0.10
        ] or list(distribution)
        worst = max(plausible, key=lambda c: profile_for_weather(c.value).rho)
        return profile_for_weather(worst.value)
    if posture == "expected":
        rho = _snap_up(expected_rho(distribution))
        discharge = profile_for_weather("sunny").period.discharge_time
        return ChargingProfile(
            name=f"forecast-rho{rho:g}",
            weather="forecast",
            period=ChargingPeriod.from_ratio(rho, discharge_time=discharge),
        )
    raise ValueError(
        f"unknown posture {posture!r}; choose expected/pessimistic/mode"
    )
