"""Short-window harvest estimation: the "2-hour" mu_r / rho estimator.

The scheduling layer does not consume raw light samples; it consumes a
:class:`~repro.energy.period.ChargingPeriod` believed to hold for the
near future.  The paper argues (Sec. I, II-B, VI-A) that within ~2 h of
stable weather the recharge speed barely moves, so estimating over a
sliding short window and re-planning when the estimate shifts is sound.
This module is that estimator:

- :class:`HarvestEstimator` ingests (minute, charging-power) samples and
  reports the windowed mean recharge rate, its relative dispersion (the
  stability check) and the implied ``T_r``/``rho``.
- :func:`estimate_period_from_trace` runs the estimator over a recorded
  node trace (:class:`~repro.solar.trace.NodeTrace`) and returns the
  fitted :class:`~repro.energy.period.ChargingPeriod`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import numpy as np

from repro.energy.period import ChargingPeriod, normalize_ratio


@dataclass(frozen=True)
class HarvestEstimate:
    """Windowed estimate of the recharge process."""

    mean_rate: float  # mu_r estimate, energy units per minute
    relative_std: float  # dispersion of the rate within the window
    window_minutes: float  # how much data backs the estimate

    @property
    def is_stable(self) -> bool:
        """Paper-style stability: rate moved < 10% within the window."""
        return self.relative_std < 0.10


class HarvestEstimator:
    """Sliding-window estimator of the recharge speed ``mu_r``.

    Parameters
    ----------
    window_minutes:
        Length of the sliding window; the paper's working assumption is
        2 hours (120 minutes).
    """

    def __init__(self, window_minutes: float = 120.0):
        if window_minutes <= 0:
            raise ValueError(
                f"window must be positive, got {window_minutes} minutes"
            )
        self._window = window_minutes
        self._samples: Deque[Tuple[float, float]] = deque()

    @property
    def window_minutes(self) -> float:
        return self._window

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def observe(self, minute: float, charge_rate: float) -> None:
        """Record one (time, recharge-rate) sample and expire old ones."""
        if charge_rate < 0:
            raise ValueError(f"charge rate must be non-negative, got {charge_rate}")
        if self._samples and minute < self._samples[-1][0]:
            raise ValueError(
                f"samples must be time-ordered: got {minute} after "
                f"{self._samples[-1][0]}"
            )
        self._samples.append((minute, charge_rate))
        cutoff = minute - self._window
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def estimate(self) -> Optional[HarvestEstimate]:
        """Current windowed estimate, or ``None`` with no data.

        Only harvesting samples (rate > 0) enter the mean: the paper's
        T_r is the recharge time *while harvesting*; night samples would
        say "weather changed" when only the sun set.
        """
        if not self._samples:
            return None
        rates = np.array([rate for _, rate in self._samples if rate > 0])
        if rates.size == 0:
            return None
        mean = float(rates.mean())
        rel_std = float(rates.std() / mean) if mean > 0 else 0.0
        span = self._samples[-1][0] - self._samples[0][0]
        return HarvestEstimate(
            mean_rate=mean, relative_std=rel_std, window_minutes=span
        )

    def estimated_recharge_time(self, capacity: float) -> Optional[float]:
        """``T_r = B / mu_r`` from the current estimate (minutes)."""
        est = self.estimate()
        if est is None or est.mean_rate <= 0:
            return None
        return capacity / est.mean_rate

    def estimated_period(
        self, capacity: float, discharge_time: float
    ) -> Optional[ChargingPeriod]:
        """Fit a :class:`ChargingPeriod`, snapping rho to the integer grid.

        The paper assumes integral rho (or 1/rho); a raw estimate like
        2.93 becomes rho = 3.  Returns ``None`` when there is no
        harvesting data yet.
        """
        t_r = self.estimated_recharge_time(capacity)
        if t_r is None:
            return None
        raw_rho = t_r / discharge_time
        snapped = _snap_rho(raw_rho)
        return ChargingPeriod(
            discharge_time=discharge_time,
            recharge_time=snapped * discharge_time,
        )


def _snap_rho(raw: float) -> float:
    """Snap a raw ratio to the nearest valid integral rho (or 1/k)."""
    if raw >= 1:
        return float(max(1, round(raw)))
    k = max(1, round(1.0 / raw))
    return normalize_ratio(1.0 / k)


def estimate_period_from_trace(
    trace: "NodeTrace",
    capacity: float,
    discharge_time: float,
    window_minutes: float = 120.0,
) -> Optional[ChargingPeriod]:
    """Run the windowed estimator over a recorded trace.

    Feeds every sample of the trace through a fresh
    :class:`HarvestEstimator`, re-fitting as the window slides, and
    returns the *last* period fitted while harvesting data was in the
    window.  (The terminal window of a full-day trace is night -- no
    harvesting samples -- so returning only the end-of-trace fit would
    always be ``None``; what the deployment wants is the daytime fit.)
    Returns ``None`` when the trace never harvested at all.
    """
    from repro.solar.trace import NodeTrace  # local import to avoid a cycle

    if not isinstance(trace, NodeTrace):
        raise TypeError(f"expected NodeTrace, got {type(trace).__name__}")
    estimator = HarvestEstimator(window_minutes=window_minutes)
    last_fit: Optional[ChargingPeriod] = None
    for sample in trace.samples:
        estimator.observe(sample.minute, sample.charge_rate)
        if sample.charge_rate > 0:
            fitted = estimator.estimated_period(capacity, discharge_time)
            if fitted is not None:
                last_fit = fitted
    return last_fit
