"""Solar panel + charging-circuit model.

Maps light strength to charging current and to the *regulated charging
voltage* the paper's testbed logged (Fig. 7).  The key qualitative
behaviour the paper reports -- and that this model reproduces -- is:

    "within one day, the light strength varies significantly. However,
    the charging voltage almost remains at the same level as long as it
    starts to harvest the energy."

i.e. the charging circuit regulates its output: above a small turn-on
irradiance threshold the voltage sits near the regulation set-point
(TelosB solar boards regulate a bit above the 3 V supply), while the
*current* (and hence the recharge speed mu_r) scales with light until
the charger saturates.  Because the charger saturates well below
midday irradiance on a sunny day, mu_r is effectively constant over the
daytime -- which is exactly why the paper can treat T_r as fixed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SolarPanel:
    """A small sensor-node solar panel with a regulating charger.

    Parameters
    ----------
    panel_area:
        Panel area in m^2 (TelosB solar boards are a few cm^2;
        default 0.003 m^2 = 30 cm^2, matching a mote with two cells).
    efficiency:
        Photovoltaic conversion efficiency (default 15%).
    regulated_voltage:
        Charging-circuit output voltage once harvesting (default 3.3 V).
    turn_on_irradiance:
        Minimum irradiance (W/m^2) for the charger to start (default 30).
    max_charge_power:
        Charger saturation power in W (default 0.0185 W, sized so a
        50 J mote battery refills in ~45 min -- the measured sunny
        T_r).  Saturation is what flattens mu_r across the day.
    """

    panel_area: float = 0.003
    efficiency: float = 0.15
    regulated_voltage: float = 3.3
    turn_on_irradiance: float = 30.0
    max_charge_power: float = 0.0185

    def __post_init__(self) -> None:
        if self.panel_area <= 0:
            raise ValueError(f"panel area must be positive, got {self.panel_area}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.regulated_voltage <= 0:
            raise ValueError(
                f"regulated voltage must be positive, got {self.regulated_voltage}"
            )
        if self.turn_on_irradiance < 0:
            raise ValueError(
                f"turn-on irradiance must be non-negative, got {self.turn_on_irradiance}"
            )
        if self.max_charge_power <= 0:
            raise ValueError(
                f"max charge power must be positive, got {self.max_charge_power}"
            )

    def is_harvesting(self, irradiance: float) -> bool:
        """True iff the charger is on at the given light strength."""
        return irradiance >= self.turn_on_irradiance

    def charge_power(self, irradiance: float) -> float:
        """Electrical charging power (W) delivered at the given irradiance.

        Linear in light up to the charger's saturation power, zero below
        the turn-on threshold.
        """
        if irradiance < 0:
            raise ValueError(f"irradiance must be non-negative, got {irradiance}")
        if not self.is_harvesting(irradiance):
            return 0.0
        raw = irradiance * self.panel_area * self.efficiency
        return min(raw, self.max_charge_power)

    def charge_current(self, irradiance: float) -> float:
        """Charging current (A) into the battery at the given irradiance."""
        return self.charge_power(irradiance) / self.regulated_voltage

    def charging_voltage(self, irradiance: float) -> float:
        """The measured charging voltage (what Fig. 7 plots).

        Zero when the charger is off; near the regulation set-point (with
        a slight soft-start below ~2x the turn-on threshold) once
        harvesting -- producing the flat voltage plateau of Fig. 7.
        """
        if not self.is_harvesting(irradiance):
            return 0.0
        soft_start_ceiling = 2.0 * self.turn_on_irradiance
        if irradiance < soft_start_ceiling and soft_start_ceiling > 0:
            ramp = irradiance / soft_start_ceiling
            return self.regulated_voltage * (0.9 + 0.1 * ramp)
        return self.regulated_voltage

    def recharge_rate(self, irradiance: float) -> float:
        """``mu_r`` in energy units per minute (W * 60 s)."""
        return self.charge_power(irradiance) * 60.0

    def time_to_full(self, capacity: float, irradiance: float) -> float:
        """Minutes to recharge an empty battery of ``capacity`` joules.

        ``inf`` when the charger is off.
        """
        rate = self.recharge_rate(irradiance)
        if rate <= 0:
            return float("inf")
        return capacity / rate
