"""Clear-sky diurnal irradiance curve.

A standard half-sinusoid clear-sky model: irradiance is zero before
sunrise and after sunset and follows

.. math:: G(t) = G_{peak} \\sin\\Bigl(\\pi \\frac{t - t_{rise}}{t_{set} - t_{rise}}\\Bigr)

between them.  This is the textbook first-order model of global
horizontal irradiance and reproduces the qualitative shape of the
paper's Fig. 7 light-strength measurements (ramp up after sunrise,
midday peak, ramp down, plus high-frequency fluctuation which the
weather layer adds).

Times are minutes since local midnight throughout, matching the paper's
July (Hangzhou) measurement window: the experiment of Fig. 7 spans
roughly 05:30-19:00 of daylight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DiurnalIrradiance:
    """Half-sinusoid clear-sky irradiance.

    Parameters
    ----------
    sunrise_minute:
        Local sunrise, minutes after midnight (default 05:30).
    sunset_minute:
        Local sunset (default 19:00).
    peak:
        Solar-noon irradiance in W/m^2 (default 1000, the standard
        test condition for panels).
    """

    sunrise_minute: float = 5.5 * 60
    sunset_minute: float = 19.0 * 60
    peak: float = 1000.0

    def __post_init__(self) -> None:
        if not 0 <= self.sunrise_minute < self.sunset_minute <= 24 * 60:
            raise ValueError(
                f"need 0 <= sunrise < sunset <= 1440, got "
                f"{self.sunrise_minute}, {self.sunset_minute}"
            )
        if self.peak <= 0:
            raise ValueError(f"peak irradiance must be positive, got {self.peak}")

    @property
    def day_length(self) -> float:
        """Daylight duration in minutes."""
        return self.sunset_minute - self.sunrise_minute

    def at(self, minute_of_day: float) -> float:
        """Clear-sky irradiance (W/m^2) at the given minute of the day.

        ``minute_of_day`` is taken modulo 24 h so multi-day simulations
        can pass a running minute counter.
        """
        t = minute_of_day % (24 * 60)
        if t <= self.sunrise_minute or t >= self.sunset_minute:
            return 0.0
        phase = (t - self.sunrise_minute) / self.day_length
        return self.peak * math.sin(math.pi * phase)

    def sample(self, minutes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at` over an array of running minutes."""
        t = np.asarray(minutes, dtype=float) % (24 * 60)
        phase = (t - self.sunrise_minute) / self.day_length
        values = self.peak * np.sin(np.pi * np.clip(phase, 0.0, 1.0))
        values[(t <= self.sunrise_minute) | (t >= self.sunset_minute)] = 0.0
        return values

    def daily_energy(self) -> float:
        """Integral of the clear-sky curve over one day (W-min/m^2).

        For the half-sinusoid this is ``peak * day_length * 2 / pi``.
        """
        return self.peak * self.day_length * 2.0 / math.pi

    def is_daylight(self, minute_of_day: float) -> bool:
        t = minute_of_day % (24 * 60)
        return self.sunrise_minute < t < self.sunset_minute
