"""Solar harvesting model: the simulated substitute for the paper's testbed.

The paper's Sec. VI-A measures charging patterns of TelosB motes with
solar cells on a rooftop (Fig. 6/7): light strength over a day varies
widely, but the *charging voltage* stays nearly flat once harvesting
starts, so the recharge time ``T_r`` is effectively constant within a
day of stable weather.  We reproduce those measurements in software:

- :mod:`~repro.solar.irradiance` -- a clear-sky diurnal irradiance
  curve (sunrise/sunset, solar-noon peak).
- :mod:`~repro.solar.weather` -- weather conditions, attenuation
  factors and a Markov day-to-day weather process.
- :mod:`~repro.solar.panel` -- panel + charging-circuit model mapping
  light to charging current and regulated charging voltage.
- :mod:`~repro.solar.harvest` -- the short-window (2-hour) estimators
  for ``mu_r`` and ``rho`` that the scheduling layer consumes.
- :mod:`~repro.solar.trace` -- end-to-end synthetic testbed traces
  (time, light, voltage, battery) à la Fig. 7.
"""

from repro.solar.irradiance import DiurnalIrradiance
from repro.solar.weather import (
    WEATHER_ATTENUATION,
    MarkovWeatherProcess,
    WeatherCondition,
)
from repro.solar.panel import SolarPanel
from repro.solar.harvest import HarvestEstimator, estimate_period_from_trace
from repro.solar.trace import NodeTrace, TraceSample, generate_node_trace
from repro.solar.forecast import (
    expected_rho,
    forecast_profile,
    next_day_distribution,
)

__all__ = [
    "DiurnalIrradiance",
    "WeatherCondition",
    "WEATHER_ATTENUATION",
    "MarkovWeatherProcess",
    "SolarPanel",
    "HarvestEstimator",
    "estimate_period_from_trace",
    "TraceSample",
    "NodeTrace",
    "generate_node_trace",
    "next_day_distribution",
    "expected_rho",
    "forecast_profile",
]
