"""Weather conditions, attenuation and a day-to-day Markov process.

The paper's algorithms assume the (T_d, T_r) pattern is stable within a
short window (~2 h) of a given weather condition but may change across
days ("we may choose different charging pattern each day for different
weather condition", Sec. II-B).  The weather layer supplies:

- :class:`WeatherCondition` -- the catalogue of conditions with mean
  attenuation (fraction of clear-sky irradiance reaching the panel)
  and a cloud-flicker amplitude (the high-frequency light fluctuation
  visible in Fig. 7).
- :class:`MarkovWeatherProcess` -- a first-order Markov chain over
  conditions, one step per day, for multi-day simulations like the
  30-day run of Sec. VI-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.coverage.deployment import RngLike, make_rng


class WeatherCondition(Enum):
    """Catalogued weather conditions."""

    SUNNY = "sunny"
    CLOUDY = "cloudy"
    RAINY = "rainy"


#: Mean fraction of clear-sky irradiance that reaches the panel, and the
#: relative amplitude of short-term fluctuation around that mean.
WEATHER_ATTENUATION: Mapping[WeatherCondition, "WeatherParams"] = {}


@dataclass(frozen=True)
class WeatherParams:
    """Attenuation statistics of a weather condition.

    ``charger_derating`` models the disproportionate loss small
    harvesters suffer under diffuse (cloud-scattered) light: even when
    the photometric light level would saturate the charger, the usable
    charging power drops.  The deratings are calibrated so the trace
    generator reproduces the catalogue profiles of
    :mod:`repro.energy.profiles` (sunny T_r = 45 min, cloudy 90, rainy
    180 for the default 50 J mote battery).
    """

    mean_attenuation: float  # fraction of clear sky, in (0, 1]
    flicker: float  # std of relative fluctuation, >= 0
    charger_derating: float = 1.0  # usable fraction of charging power, (0, 1]

    def __post_init__(self) -> None:
        if not 0 < self.mean_attenuation <= 1:
            raise ValueError(
                f"mean attenuation must be in (0, 1], got {self.mean_attenuation}"
            )
        if self.flicker < 0:
            raise ValueError(f"flicker must be non-negative, got {self.flicker}")
        if not 0 < self.charger_derating <= 1:
            raise ValueError(
                f"charger derating must be in (0, 1], got {self.charger_derating}"
            )


WEATHER_ATTENUATION = {
    WeatherCondition.SUNNY: WeatherParams(
        mean_attenuation=1.0, flicker=0.05, charger_derating=1.0
    ),
    WeatherCondition.CLOUDY: WeatherParams(
        mean_attenuation=0.45, flicker=0.25, charger_derating=0.5
    ),
    WeatherCondition.RAINY: WeatherParams(
        mean_attenuation=0.15, flicker=0.35, charger_derating=0.25
    ),
}


class MarkovWeatherProcess:
    """First-order Markov chain over weather conditions, one step per day.

    The default transition matrix is sticky (weather persists), which is
    what makes the paper's "choose the charging pattern per day" policy
    sensible: tomorrow usually looks like today.
    """

    _ORDER: Sequence[WeatherCondition] = (
        WeatherCondition.SUNNY,
        WeatherCondition.CLOUDY,
        WeatherCondition.RAINY,
    )

    _DEFAULT_MATRIX = np.array(
        [
            [0.70, 0.25, 0.05],  # sunny ->
            [0.30, 0.50, 0.20],  # cloudy ->
            [0.20, 0.40, 0.40],  # rainy ->
        ]
    )

    def __init__(
        self,
        initial: WeatherCondition = WeatherCondition.SUNNY,
        transition_matrix: np.ndarray | None = None,
        rng: RngLike = None,
    ):
        matrix = (
            self._DEFAULT_MATRIX
            if transition_matrix is None
            else np.asarray(transition_matrix, dtype=float)
        )
        if matrix.shape != (3, 3):
            raise ValueError(f"transition matrix must be 3x3, got {matrix.shape}")
        if not np.allclose(matrix.sum(axis=1), 1.0):
            raise ValueError("transition matrix rows must sum to 1")
        if (matrix < 0).any():
            raise ValueError("transition probabilities must be non-negative")
        self._matrix = matrix
        self._state = initial
        self._rng = make_rng(rng)
        self._index: Dict[WeatherCondition, int] = {
            c: i for i, c in enumerate(self._ORDER)
        }

    @property
    def current(self) -> WeatherCondition:
        return self._state

    def step(self) -> WeatherCondition:
        """Advance one day and return the new condition."""
        row = self._matrix[self._index[self._state]]
        next_index = int(self._rng.choice(len(self._ORDER), p=row))
        self._state = self._ORDER[next_index]
        return self._state

    def forecast(self, days: int) -> List[WeatherCondition]:
        """Sample a sequence of daily conditions, starting from tomorrow."""
        if days < 0:
            raise ValueError(f"days must be non-negative, got {days}")
        return [self.step() for _ in range(days)]

    def stationary_distribution(self) -> np.ndarray:
        """Long-run fraction of days in each condition (left eigenvector)."""
        eigenvalues, eigenvectors = np.linalg.eig(self._matrix.T)
        idx = int(np.argmin(np.abs(eigenvalues - 1.0)))
        vec = np.real(eigenvectors[:, idx])
        vec = np.abs(vec)
        return vec / vec.sum()


def attenuated_irradiance(
    clear_sky: float,
    condition: WeatherCondition,
    rng: RngLike = None,
) -> float:
    """One noisy attenuated sample: clear-sky value through the weather.

    Multiplies by the condition's mean attenuation and a lognormal-ish
    positive flicker factor, then clips to the physical [0, clear_sky]
    range.
    """
    params = WEATHER_ATTENUATION[condition]
    generator = make_rng(rng)
    factor = params.mean_attenuation * (
        1.0 + params.flicker * float(generator.standard_normal())
    )
    return float(np.clip(clear_sky * factor, 0.0, clear_sky))
