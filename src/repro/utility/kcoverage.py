"""k-coverage utility: targets want *several* simultaneous observers.

A standard strengthening of the coverage objective (localization and
triangulation need >= k sensors watching a target at once).  The
per-target utility is the truncated count

.. math:: U_i(S) = \\min(k_i, |S \\cap V(O_i)|) / k_i,

normalized to 1 when the requirement is met.  Truncated-count functions
are concave in the count, hence submodular -- so k-coverage drops into
every scheduler in :mod:`repro.core` unchanged, and the count-based LP
linearization applies exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set
from repro.utility.target_system import TargetSystem


class KCoverageUtility(UtilityFunction):
    """``U(S) = min(k, |S & ground|) / k`` for one target."""

    def __init__(self, sensors: Iterable[int], k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._ground: SensorSet = as_sensor_set(sensors)
        self._k = k

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def k(self) -> int:
        return self._k

    def count(self, sensors: Iterable[int]) -> int:
        return len(as_sensor_set(sensors) & self._ground)

    def value_of_count(self, count: int) -> float:
        """Count-based form (used by the LP linearization)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return min(self._k, count) / self._k

    def value(self, sensors: Iterable[int]) -> float:
        return self.value_of_count(self.count(sensors))

    def is_satisfied(self, sensors: Iterable[int]) -> bool:
        """True iff the full k-coverage requirement is met."""
        return self.count(sensors) >= self._k

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set or sensor not in self._ground:
            return 0.0
        c = self.count(base_set)
        return self.value_of_count(c + 1) - self.value_of_count(c)


def k_coverage_system(
    coverage_sets: Sequence[Iterable[int]],
    k: int | Sequence[int] = 2,
) -> TargetSystem:
    """A multi-target system whose targets each demand k-coverage.

    Parameters
    ----------
    coverage_sets:
        ``V(O_i)`` per target.
    k:
        A single requirement shared by all targets, or one per target.
    """
    m = len(coverage_sets)
    if isinstance(k, int):
        requirements = [k] * m
    else:
        requirements = list(k)
        if len(requirements) != m:
            raise ValueError(
                f"{m} coverage sets but {len(requirements)} k values"
            )
    utilities = [
        KCoverageUtility(cover, k=req)
        for cover, req in zip(coverage_sets, requirements)
    ]
    return TargetSystem(coverage_sets, utilities)
