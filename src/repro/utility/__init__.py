"""Submodular utility functions for coverage service (paper Sec. II-C).

The paper assumes that the utility a WSN gains from activating a set
``S`` of sensors at a timeslot is a non-decreasing, submodular set
function with ``U(empty) = 0``.  This subpackage provides:

- :class:`~repro.utility.base.UtilityFunction` -- the abstract interface
  every utility implements, with marginal-gain helpers and numeric
  property checkers (monotonicity, submodularity, normalization).
- :class:`~repro.utility.detection.DetectionUtility` -- the probabilistic
  detection utility ``U(S) = 1 - prod_{v in S}(1 - p_v)`` used throughout
  the paper's evaluation (Sec. VI-B with ``p = 0.4``).
- :class:`~repro.utility.area.AreaCoverageUtility` -- the weighted area
  utility ``U(S) = sum_i I_i(S) w_i |A_i|`` over subregions (Eq. 2).
- :class:`~repro.utility.logsum.LogSumUtility` -- the
  ``log(1 + sum I_i)`` utility from the NP-hardness proof (Thm. 3.1).
- :class:`~repro.utility.coverage_count.CoverageCountUtility` and
  :class:`~repro.utility.coverage_count.WeightedCoverageUtility` --
  classic (weighted) coverage utilities.
- :mod:`~repro.utility.operations` -- submodularity-preserving
  combinators, most importantly the *residual* construction
  ``U'(A) = U(A | F) - U(F)`` that drives the induction in Lemma 4.1
  and whose submodularity is Lemma 4.2.
- :class:`~repro.utility.target_system.TargetSystem` -- the multi-target
  objective ``sum_i U_i(S intersect V(O_i))`` (Eq. 1) together with the
  coverage relation ``a_ij``.
- :mod:`~repro.utility.incremental` -- stateful marginal-gain
  evaluators for every family, bit-for-bit equal to the from-scratch
  ``marginal``/``decrement``/``value`` calls they replace (toggle with
  ``REPRO_INCREMENTAL=0``).
"""

from repro.utility.base import (
    UtilityFunction,
    check_monotone,
    check_normalized,
    check_submodular,
)
from repro.utility.detection import DetectionUtility, HomogeneousDetectionUtility
from repro.utility.area import AreaCoverageUtility
from repro.utility.logsum import LogSumUtility
from repro.utility.coverage_count import CoverageCountUtility, WeightedCoverageUtility
from repro.utility.kcoverage import KCoverageUtility, k_coverage_system
from repro.utility.concave import ConcaveOverModularUtility
from repro.utility.operations import (
    CappedCardinalityUtility,
    ResidualUtility,
    ScaledUtility,
    SumUtility,
    residual,
)
from repro.utility.target_system import PerSlotUtility, TargetSystem
from repro.utility.incremental import (
    IncrementalEvaluator,
    SlotValueMemo,
    flush_ops,
    incremental_enabled,
    make_evaluator,
    make_slot_evaluators,
)

__all__ = [
    "UtilityFunction",
    "check_monotone",
    "check_normalized",
    "check_submodular",
    "DetectionUtility",
    "HomogeneousDetectionUtility",
    "AreaCoverageUtility",
    "LogSumUtility",
    "CoverageCountUtility",
    "WeightedCoverageUtility",
    "KCoverageUtility",
    "k_coverage_system",
    "ConcaveOverModularUtility",
    "ResidualUtility",
    "SumUtility",
    "ScaledUtility",
    "CappedCardinalityUtility",
    "residual",
    "TargetSystem",
    "PerSlotUtility",
    "IncrementalEvaluator",
    "SlotValueMemo",
    "flush_ops",
    "incremental_enabled",
    "make_evaluator",
    "make_slot_evaluators",
]
