"""Submodularity-preserving combinators over utility functions.

The central construction is :class:`ResidualUtility`: given a utility
``U`` and a *fixed* already-activated set ``F``, the residual

.. math:: U'(A) = U(A \\cup F) - U(F)

is again normalized, non-decreasing and submodular -- this is exactly
Lemma 4.2 of the paper, and it is what makes the induction in
Lemma 4.1 (the 1/2-approximation of the greedy hill-climbing scheme)
go through: after the greedy scheme commits sensor ``v_1`` to slot
``i``, the remaining problem ``P'`` replaces the slot-``i`` utility by
its residual with respect to ``{v_1}``.

The other combinators (:class:`SumUtility`, :class:`ScaledUtility`,
:class:`RestrictedUtility`, :class:`CappedCardinalityUtility`) cover
the standard closure properties used elsewhere in the library, e.g.
the multi-target objective Eq. 1 is a :class:`SumUtility` of restricted
per-target utilities.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set


class ResidualUtility(UtilityFunction):
    """``U'(A) = U(A | fixed) - U(fixed)`` (paper Lemma 4.2).

    ``fixed`` sensors are removed from the ground set: they are treated
    as permanently active and querying them yields zero gain.
    """

    def __init__(self, base: UtilityFunction, fixed: Iterable[int]):
        self._base = base
        self._fixed: SensorSet = as_sensor_set(fixed)
        self._offset = base.value(self._fixed)
        self._ground: SensorSet = base.ground_set - self._fixed

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def fixed(self) -> SensorSet:
        return self._fixed

    @property
    def base(self) -> UtilityFunction:
        return self._base

    def value(self, sensors: Iterable[int]) -> float:
        active = as_sensor_set(sensors) - self._fixed
        return self._base.value(active | self._fixed) - self._offset

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        if sensor in self._fixed:
            return 0.0
        base_set = as_sensor_set(base) - self._fixed
        return self._base.marginal(sensor, base_set | self._fixed)


def residual(base: UtilityFunction, fixed: Iterable[int]) -> UtilityFunction:
    """Build the residual of ``base`` w.r.t. ``fixed``, flattening nesting.

    Residual-of-residual is collapsed into a single residual over the
    union of the fixed sets, so long greedy runs do not build deep
    wrapper chains (each level would add an evaluation indirection).
    """
    fixed_set = as_sensor_set(fixed)
    if not fixed_set:
        return base
    if isinstance(base, ResidualUtility):
        return ResidualUtility(base.base, base.fixed | fixed_set)
    return ResidualUtility(base, fixed_set)


class SumUtility(UtilityFunction):
    """Non-negative sum of utility functions (closure under addition)."""

    def __init__(self, terms: Sequence[UtilityFunction]):
        if not terms:
            raise ValueError("SumUtility needs at least one term")
        self._terms = tuple(terms)
        ground: set = set()
        for term in self._terms:
            ground |= term.ground_set
        self._ground: SensorSet = frozenset(ground)

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def terms(self) -> Sequence[UtilityFunction]:
        return self._terms

    def value(self, sensors: Iterable[int]) -> float:
        active = as_sensor_set(sensors)
        return sum(term.value(active) for term in self._terms)

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set:
            return 0.0
        return sum(term.marginal(sensor, base_set) for term in self._terms)


class ScaledUtility(UtilityFunction):
    """``c * U`` for ``c >= 0`` (closure under non-negative scaling)."""

    def __init__(self, base: UtilityFunction, factor: float):
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        self._base = base
        self._factor = factor

    @property
    def ground_set(self) -> SensorSet:
        return self._base.ground_set

    @property
    def factor(self) -> float:
        return self._factor

    def value(self, sensors: Iterable[int]) -> float:
        return self._factor * self._base.value(sensors)

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        return self._factor * self._base.marginal(sensor, base)


class RestrictedUtility(UtilityFunction):
    """``U(S & allowed)`` -- the per-target restriction of Sec. II-D.

    The paper evaluates ``U_i`` on ``S_X(O_i, t) = S(t) & V(O_i)``; this
    wrapper performs the intersection so callers can pass the full
    active set.
    """

    def __init__(self, base: UtilityFunction, allowed: Iterable[int]):
        self._base = base
        self._allowed: SensorSet = as_sensor_set(allowed) & base.ground_set

    @property
    def ground_set(self) -> SensorSet:
        return self._allowed

    def value(self, sensors: Iterable[int]) -> float:
        return self._base.value(as_sensor_set(sensors) & self._allowed)

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        if sensor not in self._allowed:
            return 0.0
        return self._base.marginal(sensor, as_sensor_set(base) & self._allowed)


class CappedCardinalityUtility(UtilityFunction):
    """``U(S) = min(|S & ground|, cap)`` -- a simple budget-style utility.

    Useful in tests as a non-strictly-concave submodular function whose
    greedy behaviour is easy to reason about.
    """

    def __init__(self, sensors: Iterable[int], cap: int):
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        self._ground: SensorSet = as_sensor_set(sensors)
        self._cap = cap

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    def value(self, sensors: Iterable[int]) -> float:
        return float(min(len(as_sensor_set(sensors) & self._ground), self._cap))
