"""Concave-of-modular utilities: ``U(S) = g(sum of weights in S)``.

The general family behind several of the library's concrete utilities:
for any non-decreasing concave ``g`` with ``g(0) = 0`` and non-negative
weights, ``g(w(S))`` is normalized, monotone and submodular.  The
log-sum utility is ``g = log1p``; the homogeneous detection utility is
``g(x) = 1 - (1-p)^x`` over unit weights.  Bringing the family in as a
first-class class lets users express budgeted/energy/bandwidth-style
utilities (sqrt throughput, capped revenue, ...) without writing a new
set-function each time.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set


class ConcaveOverModularUtility(UtilityFunction):
    """``U(S) = g(sum_{v in S} w_v)`` for concave non-decreasing ``g``.

    Parameters
    ----------
    weights:
        Non-negative per-sensor weights.
    g:
        The scalar transform.  Must satisfy ``g(0) == 0``, be
        non-decreasing and concave on the reachable range; these are
        *checked numerically* at construction over a probe grid, so a
        convex transform fails fast instead of silently breaking every
        scheduler guarantee.
    """

    _PROBES = 17

    def __init__(
        self,
        weights: Mapping[int, float],
        g: Callable[[float], float],
    ):
        for sensor, w in weights.items():
            if w < 0:
                raise ValueError(
                    f"weight for sensor {sensor} must be non-negative, got {w}"
                )
        self._weights: Dict[int, float] = dict(weights)
        self._ground: SensorSet = frozenset(self._weights)
        self._g = g
        self._check_transform()

    def _check_transform(self) -> None:
        if abs(self._g(0.0)) > 1e-9:
            raise ValueError(f"g(0) must be 0, got {self._g(0.0)}")
        total = sum(self._weights.values())
        if total <= 0:
            return
        step = total / self._PROBES
        values = [self._g(i * step) for i in range(self._PROBES + 1)]
        for a, b in zip(values, values[1:]):
            if b < a - 1e-9:
                raise ValueError("g must be non-decreasing on [0, w(V)]")
        diffs = [b - a for a, b in zip(values, values[1:])]
        for a, b in zip(diffs, diffs[1:]):
            if b > a + 1e-9:
                raise ValueError("g must be concave on [0, w(V)]")

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    def total_weight(self, sensors: Iterable[int]) -> float:
        """``w(S)`` over the ground set."""
        return sum(
            self._weights[v]
            for v in as_sensor_set(sensors)
            if v in self._weights
        )

    def value(self, sensors: Iterable[int]) -> float:
        return self._g(self.total_weight(sensors))

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set:
            return 0.0
        w = self._weights.get(sensor)
        if not w:
            return 0.0
        base_weight = self.total_weight(base_set)
        return self._g(base_weight + w) - self._g(base_weight)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def sqrt(cls, weights: Mapping[int, float]) -> "ConcaveOverModularUtility":
        """``U(S) = sqrt(w(S))`` -- throughput-style diminishing returns."""
        return cls(weights, math.sqrt)

    @classmethod
    def log1p(cls, weights: Mapping[int, float]) -> "ConcaveOverModularUtility":
        """``U(S) = log(1 + w(S))`` -- the Thm. 3.1 family."""
        return cls(weights, math.log1p)

    @classmethod
    def capped(
        cls, weights: Mapping[int, float], cap: float
    ) -> "ConcaveOverModularUtility":
        """``U(S) = min(w(S), cap)`` -- budgeted revenue."""
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        return cls(weights, lambda x: min(x, cap))

    @classmethod
    def saturating(
        cls, weights: Mapping[int, float], rate: float = 1.0
    ) -> "ConcaveOverModularUtility":
        """``U(S) = 1 - exp(-rate * w(S))`` -- detection-style saturation."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return cls(weights, lambda x: -math.expm1(-rate * x))
