"""Probabilistic detection utility (paper Sec. II-C and VI-B).

For each sensor ``v_j`` that can monitor a target, let ``p_j`` be the
probability that ``v_j`` detects an event at the target.  Assuming
independent detections, the probability that *some* active sensor
detects the event is

.. math:: U(S) = 1 - \\prod_{v_j \\in S} (1 - p_j).

This is the utility used in the paper's evaluation with homogeneous
``p = 0.4`` (Sec. VI-B), where the achieved average utility of the
greedy scheme is 0.983408764 against an upper bound of 0.999380 for
``n = 100`` sensors, ``rho = 3``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set


class DetectionUtility(UtilityFunction):
    """``U(S) = 1 - prod_{v in S intersect ground}(1 - p_v)``.

    Parameters
    ----------
    probabilities:
        Mapping from sensor id to its per-event detection probability in
        ``[0, 1]``.  Sensors absent from the mapping are outside the
        ground set and contribute nothing.
    """

    def __init__(self, probabilities: Mapping[int, float]):
        for sensor, p in probabilities.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"detection probability for sensor {sensor} must be in "
                    f"[0, 1], got {p}"
                )
        self._probabilities: Dict[int, float] = dict(probabilities)
        self._ground: SensorSet = frozenset(self._probabilities)

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def probabilities(self) -> Mapping[int, float]:
        return dict(self._probabilities)

    def miss_probability(self, sensors: Iterable[int]) -> float:
        """Probability ``prod (1 - p_v)`` that every active sensor misses."""
        miss = 1.0
        for sensor in as_sensor_set(sensors):
            p = self._probabilities.get(sensor)
            if p is None:
                continue
            miss *= 1.0 - p
        return miss

    def value(self, sensors: Iterable[int]) -> float:
        return 1.0 - self.miss_probability(sensors)

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        # Closed form: adding v multiplies the miss probability by (1-p_v),
        # so the gain is p_v * miss(base).  O(|base|) instead of two full
        # evaluations; exercised heavily by the greedy scheduler.
        base_set = as_sensor_set(base)
        if sensor in base_set:
            return 0.0
        p = self._probabilities.get(sensor)
        if p is None:
            return 0.0
        return p * self.miss_probability(base_set)


class HomogeneousDetectionUtility(UtilityFunction):
    """Detection utility with a single shared probability ``p``.

    ``U(S) = 1 - (1 - p)^{|S intersect ground|}`` -- exactly the form the
    paper evaluates (``p = 0.4``).  Only the *size* of the active subset
    matters, which also yields the closed-form optimum upper bound
    ``U* = 1 - (1-p)^{ceil(n/T)}`` of Sec. VI-B (see
    :func:`repro.core.bounds.single_target_upper_bound`).
    """

    def __init__(self, sensors: Iterable[int], p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"detection probability must be in [0, 1], got {p}")
        self._ground: SensorSet = as_sensor_set(sensors)
        self._p = p

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def p(self) -> float:
        return self._p

    def count(self, sensors: Iterable[int]) -> int:
        """Number of activated sensors that belong to the ground set."""
        return len(as_sensor_set(sensors) & self._ground)

    def value_of_count(self, k: int) -> float:
        """``U`` of any active subset of size ``k``: ``1 - (1-p)^k``."""
        if k < 0:
            raise ValueError(f"count must be non-negative, got {k}")
        if self._p == 1.0:
            return 0.0 if k == 0 else 1.0
        return -math.expm1(k * math.log1p(-self._p))

    def value(self, sensors: Iterable[int]) -> float:
        return self.value_of_count(self.count(sensors))

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set or sensor not in self._ground:
            return 0.0
        k = self.count(base_set)
        return self.value_of_count(k + 1) - self.value_of_count(k)
