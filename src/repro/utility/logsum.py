"""The ``log(1 + sum I_i)`` utility from the NP-hardness proof (Thm. 3.1).

The paper reduces Subset-Sum to the scheduling problem by giving sensor
``v_i`` the integer weight ``I_i`` and using the utility

.. math:: U(S) = \\log\\bigl(1 + \\sum_{v_i \\in S} I_i\\bigr),

which is normalized, non-decreasing and submodular (it is a concave
function of a modular function).  An optimal 2-slot schedule reaches
``2 log(1 + W/2)`` (with ``W`` the total weight) iff the weights can be
split into two halves of equal sum -- i.e. iff the Subset-Sum instance
is a yes-instance.  :mod:`repro.core.hardness` builds the full
reduction on top of this class.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set


class LogSumUtility(UtilityFunction):
    """``U(S) = log(1 + sum_{v in S} weight_v)`` with non-negative weights."""

    def __init__(self, weights: Mapping[int, float]):
        for sensor, w in weights.items():
            if w < 0:
                raise ValueError(
                    f"weight for sensor {sensor} must be non-negative, got {w}"
                )
        self._weights: Dict[int, float] = dict(weights)
        self._ground: SensorSet = frozenset(self._weights)

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def weights(self) -> Mapping[int, float]:
        return dict(self._weights)

    def total_weight(self, sensors: Iterable[int]) -> float:
        return sum(
            self._weights[v] for v in as_sensor_set(sensors) if v in self._weights
        )

    def value(self, sensors: Iterable[int]) -> float:
        return math.log1p(self.total_weight(sensors))

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set:
            return 0.0
        w = self._weights.get(sensor)
        if not w:
            return 0.0
        base_total = self.total_weight(base_set)
        return math.log1p(base_total + w) - math.log1p(base_total)
