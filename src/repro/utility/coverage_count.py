"""Classic coverage-count utilities.

These are the simplest members of the family the paper's model admits:

- :class:`CoverageCountUtility` -- ``U(S) = |union of elements covered
  by S|``: the unweighted maximum-coverage objective.  With targets as
  elements this gives "number of targets covered by at least one active
  sensor".
- :class:`WeightedCoverageUtility` -- same with per-element weights,
  the discrete analogue of the area utility (Eq. 2).

Both are normalized, monotone and submodular, so they slot directly
into the greedy and LP schedulers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set


class WeightedCoverageUtility(UtilityFunction):
    """Weighted set-coverage utility.

    Parameters
    ----------
    covers:
        Mapping from sensor id to the set of *element* ids it covers.
        Elements can be targets, grid cells, subregions -- anything.
    element_weights:
        Optional mapping from element id to a non-negative weight
        (defaults to 1 for every element that appears in ``covers``).
    """

    def __init__(
        self,
        covers: Mapping[int, Iterable[int]],
        element_weights: Mapping[int, float] | None = None,
    ):
        self._covers: Dict[int, FrozenSet[int]] = {
            sensor: frozenset(elements) for sensor, elements in covers.items()
        }
        all_elements: Set[int] = set()
        for elements in self._covers.values():
            all_elements |= elements
        if element_weights is None:
            self._weights: Dict[int, float] = {e: 1.0 for e in all_elements}
        else:
            self._weights = {e: float(element_weights.get(e, 0.0)) for e in all_elements}
            for element, w in self._weights.items():
                if w < 0:
                    raise ValueError(
                        f"weight for element {element} must be non-negative, got {w}"
                    )
        self._ground: SensorSet = frozenset(self._covers)

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def elements(self) -> FrozenSet[int]:
        return frozenset(self._weights)

    def covers_of(self, sensor: int) -> FrozenSet[int]:
        """Elements covered by one sensor (empty for unknown sensors)."""
        return self._covers.get(sensor, frozenset())

    def element_weight(self, element: int) -> float:
        """Weight of one element (0 for unknown elements)."""
        return self._weights.get(element, 0.0)

    def covered_elements(self, sensors: Iterable[int]) -> FrozenSet[int]:
        covered: Set[int] = set()
        for v in as_sensor_set(sensors) & self._ground:
            covered |= self._covers[v]
        return frozenset(covered)

    def value(self, sensors: Iterable[int]) -> float:
        return sum(self._weights[e] for e in self.covered_elements(sensors))

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set or sensor not in self._ground:
            return 0.0
        already = self.covered_elements(base_set)
        return sum(
            self._weights[e] for e in self._covers[sensor] if e not in already
        )

    def decrement(self, sensor: int, base: Iterable[int]) -> float:
        # Direct sum over the uniquely-covered elements of ``sensor``,
        # in ``covers[sensor]`` iteration order -- the same generator
        # shape as ``marginal``, so CoverageEvaluator can reproduce it
        # bit-for-bit from its counters.
        base_set = as_sensor_set(base)
        if sensor not in base_set or sensor not in self._ground:
            return 0.0
        others = self.covered_elements(base_set - {sensor})
        return sum(
            self._weights[e] for e in self._covers[sensor] if e not in others
        )


class CoverageCountUtility(WeightedCoverageUtility):
    """Unweighted coverage count: ``U(S) = |covered elements|``."""

    def __init__(self, covers: Mapping[int, Iterable[int]]):
        super().__init__(covers, element_weights=None)
