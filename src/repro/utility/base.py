"""Abstract utility-function interface and set-function property checkers.

Paper reference (Sec. II-C): for every target ``O_i`` the utility
``U_i()`` is assumed to satisfy

.. math::

    U_i(\\emptyset) = 0, \\qquad
    U_i(S_1) \\le U_i(S_2) \\text{ for } S_1 \\subseteq S_2, \\qquad
    U_i(S_1 \\cup A) - U_i(S_1) \\ge U_i(S_2 \\cup A) - U_i(S_2)
    \\text{ for } S_1 \\subseteq S_2.

i.e. it is normalized, non-decreasing, and submodular.  Everything in
:mod:`repro.core` relies only on this interface, so any user-supplied
set function with these properties can be scheduled.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, Sequence

SensorSet = FrozenSet[int]

_EMPTY: SensorSet = frozenset()


def as_sensor_set(sensors: Iterable[int]) -> SensorSet:
    """Normalize any iterable of sensor ids to the canonical frozenset form."""
    if isinstance(sensors, frozenset):
        return sensors
    return frozenset(sensors)


class UtilityFunction(ABC):
    """A normalized, non-decreasing, submodular set function over sensor ids.

    Subclasses implement :meth:`value`.  All other operations --
    marginal gains, greedy-friendly batch evaluation, property checks --
    are derived, though subclasses may override them with faster
    closed-form versions (e.g. :class:`~repro.utility.detection.DetectionUtility`
    overrides :meth:`marginal`).

    The *ground set* is the set of sensor ids the function is defined
    over.  Evaluating on ids outside the ground set is allowed and must
    be a no-op (sensors that cannot contribute simply contribute zero);
    this matches the paper's convention that only sensors in ``V(O_i)``
    affect ``U_i``.
    """

    @abstractmethod
    def value(self, sensors: Iterable[int]) -> float:
        """Return ``U(S)`` for the activated set ``S``."""

    @property
    @abstractmethod
    def ground_set(self) -> SensorSet:
        """Sensor ids that can affect this function's value."""

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        """Return the marginal gain ``U(base + {sensor}) - U(base)``.

        This is the quantity maximized at every step of the greedy
        hill-climbing scheme (Algorithm 1).
        """
        base_set = as_sensor_set(base)
        if sensor in base_set:
            return 0.0
        return self.value(base_set | {sensor}) - self.value(base_set)

    def marginal_set(self, addition: Iterable[int], base: Iterable[int]) -> float:
        """Return ``U(base | addition) - U(base)`` for a whole set ``addition``."""
        base_set = as_sensor_set(base)
        add_set = as_sensor_set(addition)
        return self.value(base_set | add_set) - self.value(base_set)

    def decrement(self, sensor: int, base: Iterable[int]) -> float:
        """Return the loss ``U(base) - U(base - {sensor})``.

        Used by the rho <= 1 greedy variant (Sec. IV-B), which allocates
        *passive* slots so as to minimize the decremental utility.
        """
        base_set = as_sensor_set(base)
        if sensor not in base_set:
            return 0.0
        return self.value(base_set) - self.value(base_set - {sensor})

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------

    def value_of_all(self) -> float:
        """Utility when every sensor in the ground set is active."""
        return self.value(self.ground_set)

    def restricted(self, allowed: Iterable[int]) -> "UtilityFunction":
        """Return this utility restricted to a subset of the ground set.

        ``restricted(A).value(S) == value(S & A)`` for every ``S``.
        Restriction preserves normalization, monotonicity and
        submodularity.
        """
        from repro.utility.operations import RestrictedUtility

        return RestrictedUtility(self, allowed)

    def __call__(self, sensors: Iterable[int]) -> float:
        return self.value(sensors)


# ----------------------------------------------------------------------
# Numeric property checkers (used by the test-suite and by users who
# bring their own utility functions).
# ----------------------------------------------------------------------


def check_normalized(fn: UtilityFunction, tol: float = 1e-9) -> bool:
    """Return ``True`` iff ``U(empty) == 0`` up to ``tol``."""
    return abs(fn.value(_EMPTY)) <= tol


def check_monotone(
    fn: UtilityFunction,
    subsets: Sequence[Iterable[int]] | None = None,
    tol: float = 1e-9,
) -> bool:
    """Check ``U(S) <= U(S + {v})`` for the given subsets (or exhaustively).

    With ``subsets=None`` the ground set must be small (the check
    enumerates all ``2^n`` subsets).  Otherwise every provided subset is
    checked against every single-element extension.
    """
    ground = sorted(fn.ground_set)
    if subsets is None:
        if len(ground) > 12:
            raise ValueError(
                "exhaustive monotonicity check needs |ground set| <= 12; "
                "pass explicit subsets for larger functions"
            )
        subsets = [
            frozenset(combo)
            for r in range(len(ground) + 1)
            for combo in itertools.combinations(ground, r)
        ]
    for subset in subsets:
        base = as_sensor_set(subset)
        base_value = fn.value(base)
        for v in ground:
            if v in base:
                continue
            if fn.value(base | {v}) < base_value - tol:
                return False
    return True


def check_submodular(
    fn: UtilityFunction,
    subsets: Sequence[Iterable[int]] | None = None,
    tol: float = 1e-9,
) -> bool:
    """Check the diminishing-returns property.

    Uses the equivalent characterization: for all ``X subset Y`` and
    ``v not in Y``, ``U(X+{v}) - U(X) >= U(Y+{v}) - U(Y)``.  With
    ``subsets=None`` the ground set must be small and every nested pair
    is checked; otherwise every ordered pair of provided subsets with
    ``X subset Y`` is checked.
    """
    ground = sorted(fn.ground_set)
    if subsets is None:
        if len(ground) > 10:
            raise ValueError(
                "exhaustive submodularity check needs |ground set| <= 10; "
                "pass explicit subsets for larger functions"
            )
        subsets = [
            frozenset(combo)
            for r in range(len(ground) + 1)
            for combo in itertools.combinations(ground, r)
        ]
    normalized = [as_sensor_set(s) for s in subsets]
    for small in normalized:
        for big in normalized:
            if not small <= big:
                continue
            for v in ground:
                if v in big:
                    continue
                gain_small = fn.marginal(v, small)
                gain_big = fn.marginal(v, big)
                if gain_small < gain_big - tol:
                    return False
    return True
