"""Incremental marginal-gain evaluators for every shipped utility family.

Every solver in :mod:`repro.core` and the per-slot accounting in
:mod:`repro.sim` bottom out in :meth:`UtilityFunction.marginal`, which
recomputes ``U(S | {v}) - U(S)`` from scratch: O(|S| * m) per query.
The paper's structure (Sec. II-C: per-target sums of submodular
utilities) makes each family *incrementally* updatable -- an evaluator
that owns the running active set can answer ``gain(v)`` from a handful
of cached scalars and only pays for a refresh when the set actually
changes.

The accumulation contract (bit-for-bit exactness)
-------------------------------------------------

The incremental path must produce the **same bits** as the from-scratch
path, not merely close values, because the differential suite compares
schedules and utilities exactly.  Floating-point addition and
multiplication are not associative, and ``frozenset`` iteration order
depends on the set's internal hash-table layout -- which itself depends
on how the set was *constructed*, not only on its contents.  Three
rules make exactness hold:

1. **Identical set construction.**  The evaluator mutates its active
   set with exactly the operations the legacy consumers used
   (``S | {v}`` to add, ``S - {v}`` to remove, starting from the same
   initial object).  Same operation sequence on the same objects =>
   identical layout => identical iteration order.
2. **Cached scalars are recomputed by the family's own code.**  A
   cached quantity (the detection miss product, the log-sum total) is
   never updated arithmetically (``miss *= 1-p`` would change the
   rounding order); it is recomputed from scratch *by the same method
   the legacy path calls*, over the same set object, whenever the set
   mutates.  Queries between mutations then reuse the exact value the
   legacy path would have recomputed per query.
3. **Identical accumulation order in gains.**  ``gain(v)`` evaluates
   the same expression, over the same containers in the same iteration
   order, as the family's ``marginal``.  The numpy-batched kernel in
   :class:`TargetSystemEvaluator` multiplies element-wise (IEEE-exact
   per element) and then reduces **sequentially in Python** -- numpy's
   pairwise summation would change the bits.

:class:`TargetSystemEvaluator` refreshes *all* per-target children on
every mutation, not only the targets of the mutated sensor: the legacy
path evaluates children on a fresh ``S & V(O_i)`` at query time, and
that intersection's layout can change whenever ``S`` changes (CPython
iterates the smaller operand), even for targets the sensor does not
cover.

Set ``REPRO_INCREMENTAL=0`` to fall back to the from-scratch path: the
base :class:`IncrementalEvaluator` delegates every query to the wrapped
function over identically-built sets, which *is* the legacy behavior.
"""

from __future__ import annotations

import math
import os
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.obs.registry import MetricsRegistry, get_registry
from repro.utility.area import AreaCoverageUtility
from repro.utility.base import SensorSet, UtilityFunction
from repro.utility.coverage_count import WeightedCoverageUtility
from repro.utility.detection import (
    DetectionUtility,
    HomogeneousDetectionUtility,
)
from repro.utility.logsum import LogSumUtility
from repro.utility.target_system import TargetSystem

#: Help text for the evaluator-operation counter (mirrored in obs/catalog.py).
_OPS_HELP = "Incremental-evaluator operations by family and kind"

_EMPTY: SensorSet = frozenset()


def incremental_enabled() -> bool:
    """Whether the incremental kernels are active (``REPRO_INCREMENTAL``).

    Defaults to on; ``0`` / ``false`` / ``off`` select the from-scratch
    escape hatch.  Read at evaluator-construction time, so the toggle
    applies per solve/simulate call.
    """
    raw = os.environ.get("REPRO_INCREMENTAL", "1").strip().lower()
    return raw not in ("0", "false", "off")


class IncrementalEvaluator:
    """Stateful marginal-gain evaluator over a running active set.

    The base class is also the ``REPRO_INCREMENTAL=0`` escape hatch: it
    caches nothing and delegates ``gain``/``loss``/``value`` to the
    wrapped function over sets built by the exact operation sequence the
    legacy consumers used -- i.e. it *is* the from-scratch path.

    Subclasses override the ``_``-prefixed hooks to maintain cached
    state; the public API (and the op accounting) lives here.
    """

    family = "recompute"

    def __init__(self, fn: UtilityFunction):
        self._fn = fn
        self._active: SensorSet = _EMPTY
        self._cached_value: Optional[float] = None
        self._ops: Dict[str, int] = {}
        self._rebuild()

    # -- public API ----------------------------------------------------

    @property
    def fn(self) -> UtilityFunction:
        return self._fn

    @property
    def active(self) -> SensorSet:
        """The current active set (the exact object queries run against)."""
        return self._active

    def reset(self, active: SensorSet = _EMPTY) -> None:
        """Rebase onto ``active`` *without copying it*.

        Callers that need bit-exactness must pass the same frozenset
        object the legacy path would have evaluated (e.g. the shared
        ``everyone`` set the passive greedy starts every slot from).
        """
        self._count("reset")
        self._active = active
        self._cached_value = None
        self._rebuild()

    def add(self, sensor: int) -> None:
        """Activate ``sensor`` (mirrors the legacy ``S | {v}`` update)."""
        self._count("add")
        before = self._active
        self._active = before | {sensor}
        self._cached_value = None
        self._on_add(sensor, before)

    def remove(self, sensor: int) -> None:
        """Deactivate ``sensor`` (mirrors the legacy ``S - {v}`` update)."""
        self._count("remove")
        before = self._active
        self._active = before - {sensor}
        self._cached_value = None
        self._on_remove(sensor, before)

    def gain(self, sensor: int) -> float:
        """``U(S | {v}) - U(S)`` -- bit-equal to ``fn.marginal(v, S)``."""
        self._count("gain")
        return self._gain(sensor)

    def loss(self, sensor: int) -> float:
        """``U(S) - U(S - {v})`` -- bit-equal to ``fn.decrement(v, S)``."""
        self._count("loss")
        return self._loss(sensor)

    def value(self) -> float:
        """``U(S)`` -- bit-equal to ``fn.value(S)``; cached until mutation."""
        self._count("value")
        return self._current_value()

    def gains(self, candidates: Sequence[int]) -> np.ndarray:
        """Batched ``gain`` over ``candidates`` as a float64 vector.

        Element ``i`` is bit-equal to ``self.gain(candidates[i])``
        (specializations use a vectorized kernel; see
        :class:`TargetSystemEvaluator`).
        """
        self._ops["gain"] = self._ops.get("gain", 0) + len(candidates)
        out = np.empty(len(candidates), dtype=np.float64)
        for i, sensor in enumerate(candidates):
            out[i] = self._gain(sensor)
        return out

    def snapshot(self) -> Tuple[Any, ...]:
        """An O(cached-state) token that :meth:`restore` accepts."""
        self._count("snapshot")
        return (self._active, self._cached_value, self._state())

    def restore(self, token: Tuple[Any, ...]) -> None:
        """Rewind to a prior :meth:`snapshot` -- including the exact
        active-set object, so post-restore queries are bit-identical to
        the queries issued when the snapshot was taken."""
        self._count("restore")
        self._active, self._cached_value, state = token
        self._load_state(state)

    # -- op accounting -------------------------------------------------

    def _count(self, op: str) -> None:
        self._ops[op] = self._ops.get(op, 0) + 1

    def drain_ops(self) -> Iterator[Tuple[str, Dict[str, int]]]:
        """Yield ``(family, op-counts)`` and reset the local counters."""
        ops, self._ops = self._ops, {}
        if ops:
            yield (self.family, ops)

    # -- hooks (override in specializations) ---------------------------

    def _rebuild(self) -> None:
        """Recompute every cached scalar from ``self._active``."""

    def _on_add(self, sensor: int, before: SensorSet) -> None:
        self._rebuild()

    def _on_remove(self, sensor: int, before: SensorSet) -> None:
        self._rebuild()

    def _gain(self, sensor: int) -> float:
        return self._fn.marginal(sensor, self._active)

    def _loss(self, sensor: int) -> float:
        return self._fn.decrement(sensor, self._active)

    def _compute_value(self) -> float:
        return self._fn.value(self._active)

    def _current_value(self) -> float:
        if self._cached_value is None:
            self._cached_value = self._compute_value()
        return self._cached_value

    def _state(self) -> Any:
        return None

    def _load_state(self, state: Any) -> None:
        self._rebuild()


class DetectionEvaluator(IncrementalEvaluator):
    """Running miss-product cache for :class:`DetectionUtility`.

    ``marginal`` in the legacy path is ``p_v * miss(S)`` with ``miss``
    recomputed per query (O(|S|)); here ``miss`` is recomputed once per
    mutation by the same method over the same set object, making every
    ``gain`` O(1).
    """

    family = "detection"

    def __init__(self, fn: DetectionUtility):
        self._probs = fn._probabilities  # shared ref; the public property copies
        super().__init__(fn)

    def _rebuild(self) -> None:
        self._miss = self._fn.miss_probability(self._active)

    def _gain(self, sensor: int) -> float:
        if sensor in self._active:
            return 0.0
        p = self._probs.get(sensor)
        if p is None:
            return 0.0
        return p * self._miss

    def _loss(self, sensor: int) -> float:
        if sensor not in self._active:
            return 0.0
        return (1.0 - self._miss) - self._fn.value(self._active - {sensor})

    def _compute_value(self) -> float:
        return 1.0 - self._miss

    def _state(self) -> Any:
        return self._miss

    def _load_state(self, state: Any) -> None:
        self._miss = state


class HomogeneousDetectionEvaluator(IncrementalEvaluator):
    """Exact O(1) add/remove/gain for the count-based homogeneous family.

    Only the integer ``|S & ground|`` matters, and integers carry no
    rounding history, so the count can be maintained arithmetically.
    """

    family = "homogeneous-detection"

    def __init__(self, fn: HomogeneousDetectionUtility):
        self._ground = fn.ground_set
        super().__init__(fn)

    def _rebuild(self) -> None:
        self._k = self._fn.count(self._active)

    def _on_add(self, sensor: int, before: SensorSet) -> None:
        if sensor in self._ground and sensor not in before:
            self._k += 1

    def _on_remove(self, sensor: int, before: SensorSet) -> None:
        if sensor in self._ground and sensor in before:
            self._k -= 1

    def _gain(self, sensor: int) -> float:
        if sensor in self._active or sensor not in self._ground:
            return 0.0
        fn = self._fn
        return fn.value_of_count(self._k + 1) - fn.value_of_count(self._k)

    def _loss(self, sensor: int) -> float:
        if sensor not in self._active:
            return 0.0
        drop = 1 if sensor in self._ground else 0
        fn = self._fn
        return fn.value_of_count(self._k) - fn.value_of_count(self._k - drop)

    def _compute_value(self) -> float:
        return self._fn.value_of_count(self._k)

    def _state(self) -> Any:
        return self._k

    def _load_state(self, state: Any) -> None:
        self._k = state


class LogSumEvaluator(IncrementalEvaluator):
    """Running weight total for :class:`LogSumUtility`.

    The total is recomputed per mutation over the set's own iteration
    order (never ``+=``-updated -- rule 2 of the accumulation contract),
    so ``gain`` drops from O(|S|) to O(1).
    """

    family = "logsum"

    def __init__(self, fn: LogSumUtility):
        self._weights = fn._weights  # shared ref; the public property copies
        super().__init__(fn)

    def _rebuild(self) -> None:
        self._total = self._fn.total_weight(self._active)

    def _gain(self, sensor: int) -> float:
        if sensor in self._active:
            return 0.0
        w = self._weights.get(sensor)
        if not w:
            return 0.0
        return math.log1p(self._total + w) - math.log1p(self._total)

    def _loss(self, sensor: int) -> float:
        if sensor not in self._active:
            return 0.0
        return math.log1p(self._total) - self._fn.value(self._active - {sensor})

    def _compute_value(self) -> float:
        return math.log1p(self._total)

    def _state(self) -> Any:
        return self._total

    def _load_state(self, state: Any) -> None:
        self._total = state


class CoverageEvaluator(IncrementalEvaluator):
    """Per-element cover counters for the (weighted) coverage family.

    ``gain(v)`` sums the weights of elements of ``covers[v]`` whose
    cover count is zero -- the same generator, over the same frozenset,
    in the same order as the legacy ``marginal``, with the O(|S| * d)
    ``covered_elements`` scan replaced by O(1) counter probes.  Counts
    are integers, so maintaining them arithmetically is exact.
    """

    family = "coverage"

    def __init__(self, fn: WeightedCoverageUtility):
        self._covers = fn._covers
        self._weights = fn._weights
        super().__init__(fn)

    def _rebuild(self) -> None:
        counts: Dict[int, int] = {}
        for v in self._active:
            for e in self._covers.get(v, ()):
                counts[e] = counts.get(e, 0) + 1
        self._counts = counts

    def _on_add(self, sensor: int, before: SensorSet) -> None:
        if sensor in before:
            return
        cover = self._covers.get(sensor)
        if cover is None:
            return
        counts = self._counts
        for e in cover:
            counts[e] = counts.get(e, 0) + 1

    def _on_remove(self, sensor: int, before: SensorSet) -> None:
        if sensor not in before:
            return
        cover = self._covers.get(sensor)
        if cover is None:
            return
        counts = self._counts
        for e in cover:
            counts[e] -= 1

    def _gain(self, sensor: int) -> float:
        if sensor in self._active or sensor not in self._covers:
            return 0.0
        counts = self._counts
        weights = self._weights
        return sum(
            weights[e] for e in self._covers[sensor] if not counts.get(e)
        )

    def _loss(self, sensor: int) -> float:
        # An element vanishes from the cover exactly when this sensor
        # is its *only* active coverer (count == 1).  Same frozenset,
        # same order, same summation shape as
        # ``WeightedCoverageUtility.decrement`` -- bit-equal, but O(d)
        # instead of the O(|S| * d) covered-elements rescan.
        if sensor not in self._active or sensor not in self._covers:
            return 0.0
        counts = self._counts
        weights = self._weights
        return sum(
            weights[e] for e in self._covers[sensor] if counts[e] == 1
        )

    def _state(self) -> Any:
        return dict(self._counts)

    def _load_state(self, state: Any) -> None:
        self._counts = dict(state)


class AreaEvaluator(IncrementalEvaluator):
    """Per-cell covered counts for :class:`AreaCoverageUtility` (Eq. 2)."""

    family = "area"

    def __init__(self, fn: AreaCoverageUtility):
        self._cells_of = fn._cells_of_sensor
        self._subregions = fn._subregions
        super().__init__(fn)

    def _rebuild(self) -> None:
        counts = [0] * len(self._subregions)
        for v in self._active:
            for cid in self._cells_of.get(v, ()):
                counts[cid] += 1
        self._counts = counts

    def _on_add(self, sensor: int, before: SensorSet) -> None:
        if sensor in before:
            return
        counts = self._counts
        for cid in self._cells_of.get(sensor, ()):
            counts[cid] += 1

    def _on_remove(self, sensor: int, before: SensorSet) -> None:
        if sensor not in before:
            return
        counts = self._counts
        for cid in self._cells_of.get(sensor, ()):
            counts[cid] -= 1

    def _gain(self, sensor: int) -> float:
        if sensor in self._active or sensor not in self._cells_of:
            return 0.0
        counts = self._counts
        subregions = self._subregions
        return sum(
            subregions[cid].weighted_area
            for cid in self._cells_of[sensor]
            if not counts[cid]
        )

    def _state(self) -> Any:
        return list(self._counts)

    def _load_state(self, state: Any) -> None:
        self._counts = list(state)


class TargetSystemEvaluator(IncrementalEvaluator):
    """Composed per-target evaluators for :class:`TargetSystem` (Eq. 1).

    Every mutation refreshes **all** children on the fresh
    ``S & V(O_i)`` intersections (see the module docstring for why the
    targets of the mutated sensor alone would not be bit-safe); a
    ``gain`` then touches only the targets the candidate covers, each in
    O(1) when the child is a :class:`DetectionEvaluator`.

    When every child is a detection evaluator whose probability table
    covers its target's sensors, :meth:`gains` switches to a numpy
    kernel: per-sensor ``(target-ids, probs)`` arrays are gathered
    against the maintained per-target miss vector, multiplied
    element-wise (IEEE-exact), and reduced *sequentially in Python* to
    preserve the legacy ``gain += term`` accumulation order.
    """

    family = "target-system"

    def __init__(self, fn: TargetSystem):
        self._coverage = fn._coverage
        self._targets_of = fn._targets_of_sensor
        self._num_targets = len(fn._coverage)
        self._children: List[IncrementalEvaluator] = [
            make_evaluator(child, incremental=True)
            for child in fn._utilities
        ]
        self._build_fast_kernel()
        super().__init__(fn)

    def _build_fast_kernel(self) -> None:
        self._fast: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        fast = all(
            isinstance(c, DetectionEvaluator) for c in self._children
        )
        if fast:
            for v, tids in self._targets_of.items():
                probs = []
                for tid in tids:
                    p = self._children[tid]._probs.get(v)
                    if p is None:
                        fast = False
                        break
                    probs.append(p)
                if not fast:
                    break
                self._fast[v] = (
                    np.array(tids, dtype=np.intp),
                    np.array(probs, dtype=np.float64),
                )
        self._fast_enabled = fast
        self._miss_vec = (
            np.empty(self._num_targets, dtype=np.float64) if fast else None
        )

    def _rebuild(self) -> None:
        active = self._active
        coverage = self._coverage
        children = self._children
        for tid in range(self._num_targets):
            children[tid].reset(active & coverage[tid])
        if self._fast_enabled:
            miss_vec = self._miss_vec
            for tid in range(self._num_targets):
                miss_vec[tid] = children[tid]._miss  # type: ignore[attr-defined]

    def _gain(self, sensor: int) -> float:
        if sensor in self._active:
            return 0.0
        gain = 0.0
        children = self._children
        for tid in self._targets_of.get(sensor, ()):
            gain += children[tid]._gain(sensor)
        return gain

    def _loss(self, sensor: int) -> float:
        if sensor not in self._active:
            return 0.0
        return self._current_value() - self._fn.value(self._active - {sensor})

    def _compute_value(self) -> float:
        children = self._children
        return sum(
            children[i]._current_value() for i in range(self._num_targets)
        )

    def per_target_values(self) -> np.ndarray:
        """Vector of per-target values -- bit-equal to
        :meth:`TargetSystem.per_target_values` on the active set."""
        children = self._children
        return np.array(
            [children[i]._current_value() for i in range(self._num_targets)]
        )

    def gains(self, candidates: Sequence[int]) -> np.ndarray:
        if not self._fast_enabled:
            return super().gains(candidates)
        self._ops["gain"] = self._ops.get("gain", 0) + len(candidates)
        out = np.empty(len(candidates), dtype=np.float64)
        active = self._active
        miss_vec = self._miss_vec
        fast = self._fast
        for i, sensor in enumerate(candidates):
            if sensor in active:
                out[i] = 0.0
                continue
            entry = fast.get(sensor)
            if entry is None:
                out[i] = 0.0
                continue
            tids, probs = entry
            terms = probs * miss_vec[tids]
            gain = 0.0
            for term in terms.tolist():
                gain += term
            out[i] = gain
        return out

    def _state(self) -> Any:
        return tuple(child.snapshot() for child in self._children)

    def _load_state(self, state: Any) -> None:
        children = self._children
        for child, token in zip(children, state):
            child.restore(token)
        if self._fast_enabled:
            miss_vec = self._miss_vec
            for tid in range(self._num_targets):
                miss_vec[tid] = children[tid]._miss  # type: ignore[attr-defined]

    def drain_ops(self) -> Iterator[Tuple[str, Dict[str, int]]]:
        yield from super().drain_ops()
        for child in self._children:
            yield from child.drain_ops()


def make_evaluator(
    fn: UtilityFunction, incremental: Optional[bool] = None
) -> IncrementalEvaluator:
    """Build the best evaluator for ``fn``.

    ``incremental=None`` consults :func:`incremental_enabled`; ``False``
    forces the from-scratch base evaluator (the escape hatch / the
    differential-test reference); utilities without a specialization
    (operations combinators, user-supplied functions) also get the base
    evaluator -- correct for any :class:`UtilityFunction`.
    """
    if incremental is None:
        incremental = incremental_enabled()
    if not incremental:
        return IncrementalEvaluator(fn)
    if isinstance(fn, HomogeneousDetectionUtility):
        return HomogeneousDetectionEvaluator(fn)
    if isinstance(fn, DetectionUtility):
        return DetectionEvaluator(fn)
    if isinstance(fn, LogSumUtility):
        return LogSumEvaluator(fn)
    if isinstance(fn, WeightedCoverageUtility):  # includes CoverageCountUtility
        return CoverageEvaluator(fn)
    if isinstance(fn, AreaCoverageUtility):
        return AreaEvaluator(fn)
    if isinstance(fn, TargetSystem):
        return TargetSystemEvaluator(fn)
    return IncrementalEvaluator(fn)


def evaluator_from_deployment(
    deployment,
    model,
    p: float = 0.4,
    incremental: Optional[bool] = None,
) -> Tuple[TargetSystem, IncrementalEvaluator]:
    """Build a detection :class:`TargetSystem` + evaluator for a deployment.

    The fleet-scale construction path: per-target coverage sets are
    computed through :func:`repro.coverage.matrix.coverage_sets`, which
    routes point queries through the :mod:`repro.coverage.spatial` grid
    index when ``REPRO_SPATIAL`` allows it -- so at 10^4+ sensors the
    utility build is O(sensors in nearby cells) per target instead of
    O(n), while staying bit-identical to brute force (the per-slot
    evaluations then run over identically-constructed frozensets, which
    is what the evaluator contract above requires).

    Returns ``(utility, evaluator)`` so callers keep the utility for
    accumulators and schedules.
    """
    from repro.coverage.matrix import coverage_sets

    utility = TargetSystem.homogeneous_detection(
        coverage_sets(deployment, model), p=p
    )
    return utility, make_evaluator(utility, incremental=incremental)


def make_slot_evaluators(
    functions: Sequence[UtilityFunction],
    incremental: Optional[bool] = None,
) -> List[IncrementalEvaluator]:
    """One evaluator per slot function (the shape the schedulers use)."""
    return [make_evaluator(fn, incremental=incremental) for fn in functions]


def flush_ops(
    evaluators: Iterable[IncrementalEvaluator],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Drain evaluator op counts into ``repro_utility_incremental_ops_total``.

    Aggregates locally first so a whole solve costs one registry
    increment per (family, op) pair instead of one per operation.
    """
    totals: Dict[Tuple[str, str], int] = {}
    for evaluator in evaluators:
        for family, ops in evaluator.drain_ops():
            for op, count in ops.items():
                key = (family, op)
                totals[key] = totals.get(key, 0) + count
    if not totals:
        return
    registry = registry if registry is not None else get_registry()
    for (family, op), count in sorted(totals.items()):
        registry.counter(
            "repro_utility_incremental_ops_total",
            _OPS_HELP,
            family=family,
            op=op,
        ).inc(count)


class SlotValueMemo:
    """Content-keyed memo of per-slot utility evaluations.

    Periodic operation evaluates the *same* active sets over and over
    (an unrolled schedule repeats its period ``alpha`` times; a
    simulated network settles into its schedule's cycle).  The memo
    keys on the active frozenset and returns the stored evaluation for
    equal sets.

    Bit-exactness caveat: two equal sets can in principle iterate in
    different orders if they were built by different insertion
    sequences.  The memo is therefore only installed where every key
    comes from a single canonical construction site -- the simulation
    engine builds every active set by filtering the node list in node
    order, so equal sets there are always identically laid out and the
    memo is exact.  (The engine disables it under a ``sensing_filter``,
    whose derived sets do not share one construction order.)
    """

    def __init__(self, max_entries: int = 4096):
        self._entries: Dict[SensorSet, Any] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: SensorSet) -> Any:
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def store(self, key: SensorSet, value: Any) -> None:
        if len(self._entries) < self._max_entries:
            self._entries[key] = value
