"""Weighted area-coverage utility over subregions (paper Eq. 2, Fig. 3b).

When the WSN monitors a whole region Omega rather than discrete
targets, the paper subdivides Omega into the subregions induced by the
sensing regions ``R(v_i)`` (at most ``n^2`` of them for convex regions)
and defines

.. math:: U(S) = \\sum_{i=1}^{b} I_i(S) \\cdot w_i \\cdot |A_i|,

where ``I_i(S) = 1`` iff subregion ``A_i`` lies inside the monitored
region of some sensor in ``S``, ``w_i > 0`` is the monitoring
preference for the subregion and ``|A_i|`` its area.

This module implements the set function given a precomputed subregion
decomposition; :mod:`repro.coverage.arrangement` computes the
decomposition from sensor geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set


@dataclass(frozen=True)
class Subregion:
    """One cell of the arrangement of sensing regions.

    Attributes
    ----------
    covered_by:
        Ids of the sensors whose sensing region contains this cell.
        Every point of a cell is covered by exactly this sensor set --
        that is what makes it a single cell of the arrangement.
    area:
        ``|A_i|``, the (possibly estimated) area of the cell.
    weight:
        ``w_i``, the monitoring preference.  Must be positive.
    """

    covered_by: FrozenSet[int]
    area: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.area < 0:
            raise ValueError(f"subregion area must be non-negative, got {self.area}")
        if self.weight <= 0:
            raise ValueError(f"subregion weight must be positive, got {self.weight}")

    @property
    def weighted_area(self) -> float:
        return self.weight * self.area


class AreaCoverageUtility(UtilityFunction):
    """``U(S) = sum_i I_i(S) w_i |A_i|`` over a fixed subregion list.

    The function is a weighted coverage function, hence normalized,
    monotone and submodular.  Cells covered by no sensor never
    contribute (their indicator is always zero) and are dropped at
    construction time.
    """

    def __init__(self, subregions: Sequence[Subregion]):
        self._subregions: Tuple[Subregion, ...] = tuple(
            cell for cell in subregions if cell.covered_by
        )
        ground: set = set()
        for cell in self._subregions:
            ground |= cell.covered_by
        self._ground: SensorSet = frozenset(ground)
        # Per-sensor index: which cells does sensor v cover?  Speeds up
        # marginal-gain queries from O(b) full scans to the cells that v
        # actually touches.
        index: Dict[int, list] = {v: [] for v in self._ground}
        for cell_id, cell in enumerate(self._subregions):
            for v in cell.covered_by:
                index[v].append(cell_id)
        self._cells_of_sensor = {v: tuple(ids) for v, ids in index.items()}

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    @property
    def subregions(self) -> Tuple[Subregion, ...]:
        return self._subregions

    @property
    def total_weighted_area(self) -> float:
        """Value when every sensor is active: ``sum_i w_i |A_i|``."""
        return sum(cell.weighted_area for cell in self._subregions)

    def covered_cells(self, sensors: Iterable[int]) -> FrozenSet[int]:
        """Indices of subregions covered by the active set."""
        active = as_sensor_set(sensors)
        covered: set = set()
        for v in active & self._ground:
            covered.update(self._cells_of_sensor[v])
        return frozenset(covered)

    def value(self, sensors: Iterable[int]) -> float:
        return sum(
            self._subregions[cid].weighted_area for cid in self.covered_cells(sensors)
        )

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set or sensor not in self._ground:
            return 0.0
        already = self.covered_cells(base_set)
        return sum(
            self._subregions[cid].weighted_area
            for cid in self._cells_of_sensor[sensor]
            if cid not in already
        )

    def coverage_fraction(self, sensors: Iterable[int]) -> float:
        """Fraction of the total weighted area covered by ``sensors``."""
        total = self.total_weighted_area
        if total == 0:
            return 0.0
        return self.value(sensors) / total
