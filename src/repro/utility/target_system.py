"""Multi-target utility system (paper Sec. II-C/II-D, Eq. 1).

A WSN monitors targets ``O_1 .. O_m``; sensor ``v_j`` can monitor
``O_i`` iff ``a_ij = 1`` (equivalently ``v_j in V(O_i)``).  The per-slot
utility of an active set ``S`` is

.. math:: U(S) = \\sum_{i=1}^{m} U_i\\bigl(S \\cap V(O_i)\\bigr),

where every ``U_i`` is normalized, non-decreasing and submodular, and
possibly different per target.  The sum of restrictions of submodular
functions is submodular, so the overall per-slot utility satisfies the
same assumptions -- the fact the paper leans on when invoking
Algorithm 1 for the multi-target case.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.utility.base import SensorSet, UtilityFunction, as_sensor_set
from repro.utility.detection import DetectionUtility


class TargetSystem(UtilityFunction):
    """Targets, the coverage relation and the summed utility of Eq. 1.

    Parameters
    ----------
    coverage_sets:
        ``coverage_sets[i]`` is ``V(O_i)`` -- the ids of sensors able to
        monitor target ``i``.  Targets are indexed ``0 .. m-1``.
    target_utilities:
        ``target_utilities[i]`` is ``U_i``.  Each ``U_i`` is evaluated
        on ``S & V(O_i)`` (the intersection is applied here, so ``U_i``
        itself may have a wider ground set).
    """

    def __init__(
        self,
        coverage_sets: Sequence[Iterable[int]],
        target_utilities: Sequence[UtilityFunction],
    ):
        if len(coverage_sets) != len(target_utilities):
            raise ValueError(
                f"{len(coverage_sets)} coverage sets but "
                f"{len(target_utilities)} utilities"
            )
        self._coverage: Tuple[SensorSet, ...] = tuple(
            as_sensor_set(s) for s in coverage_sets
        )
        self._utilities: Tuple[UtilityFunction, ...] = tuple(target_utilities)
        ground: set = set()
        for cover in self._coverage:
            ground |= cover
        self._ground: SensorSet = frozenset(ground)
        # Inverted index: targets each sensor can monitor.  Marginal-gain
        # queries then only touch the targets the candidate sensor covers.
        targets_of: Dict[int, list] = {v: [] for v in self._ground}
        for target_id, cover in enumerate(self._coverage):
            for v in cover:
                targets_of[v].append(target_id)
        self._targets_of_sensor = {v: tuple(ts) for v, ts in targets_of.items()}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def homogeneous_detection(
        cls,
        coverage_sets: Sequence[Iterable[int]],
        p: float,
    ) -> "TargetSystem":
        """All targets share the detection utility with probability ``p``.

        This is the configuration of the paper's evaluation (Sec. VI-B,
        ``p = 0.4``): ``U_i(S) = 1 - (1-p)^{|S & V(O_i)|}``.
        """
        utilities = [
            DetectionUtility({v: p for v in as_sensor_set(cover)})
            for cover in coverage_sets
        ]
        return cls(coverage_sets, utilities)

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        target_utilities: Sequence[UtilityFunction],
    ) -> "TargetSystem":
        """Build from the indicator matrix ``a`` with ``a[i, j] = 1`` iff
        sensor ``j`` covers target ``i`` (paper Sec. IV-A-1)."""
        a = np.asarray(matrix)
        if a.ndim != 2:
            raise ValueError(f"coverage matrix must be 2-D, got shape {a.shape}")
        coverage_sets = [frozenset(np.flatnonzero(row).tolist()) for row in a]
        return cls(coverage_sets, target_utilities)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def num_targets(self) -> int:
        return len(self._coverage)

    @property
    def ground_set(self) -> SensorSet:
        return self._ground

    def coverage_set(self, target: int) -> SensorSet:
        """``V(O_i)``: sensors able to monitor target ``target``."""
        return self._coverage[target]

    def target_utility(self, target: int) -> UtilityFunction:
        return self._utilities[target]

    def targets_of(self, sensor: int) -> Tuple[int, ...]:
        """Targets that sensor ``sensor`` can monitor."""
        return self._targets_of_sensor.get(sensor, ())

    def coverage_matrix(self, num_sensors: int | None = None) -> np.ndarray:
        """The ``a_ij`` indicator matrix, shape ``(m, n)``."""
        if num_sensors is None:
            num_sensors = (max(self._ground) + 1) if self._ground else 0
        a = np.zeros((self.num_targets, num_sensors), dtype=np.int8)
        for target_id, cover in enumerate(self._coverage):
            for v in cover:
                if v < num_sensors:
                    a[target_id, v] = 1
        return a

    def uncoverable_targets(self) -> FrozenSet[int]:
        """Targets with an empty ``V(O_i)`` -- no sensor can ever cover them."""
        return frozenset(
            i for i, cover in enumerate(self._coverage) if not cover
        )

    # ------------------------------------------------------------------
    # Utility evaluation (Eq. 1)
    # ------------------------------------------------------------------

    def target_value(self, target: int, sensors: Iterable[int]) -> float:
        """``U_i(S & V(O_i))`` for a single target."""
        active = as_sensor_set(sensors) & self._coverage[target]
        return self._utilities[target].value(active)

    def value(self, sensors: Iterable[int]) -> float:
        active = as_sensor_set(sensors)
        return sum(
            self._utilities[i].value(active & self._coverage[i])
            for i in range(self.num_targets)
        )

    def per_target_values(self, sensors: Iterable[int]) -> np.ndarray:
        """Vector of ``U_i(S & V(O_i))`` for all targets."""
        active = as_sensor_set(sensors)
        return np.array(
            [
                self._utilities[i].value(active & self._coverage[i])
                for i in range(self.num_targets)
            ]
        )

    def marginal(self, sensor: int, base: Iterable[int]) -> float:
        base_set = as_sensor_set(base)
        if sensor in base_set:
            return 0.0
        gain = 0.0
        for target_id in self._targets_of_sensor.get(sensor, ()):
            cover = self._coverage[target_id]
            gain += self._utilities[target_id].marginal(sensor, base_set & cover)
        return gain


class PerSlotUtility:
    """Utility of a full schedule: one (possibly distinct) function per slot.

    The greedy analysis (Lemma 4.1) works with a *time-expanded* utility
    where the slot-``i`` function is replaced by a residual after each
    assignment.  This class is the container the schedulers manipulate:
    ``slot_fn(t)`` returns the utility in force at slot ``t``.
    """

    def __init__(self, slot_functions: Sequence[UtilityFunction]):
        if not slot_functions:
            raise ValueError("need at least one slot")
        self._slots: Tuple[UtilityFunction, ...] = tuple(slot_functions)

    @classmethod
    def uniform(cls, fn: UtilityFunction, num_slots: int) -> "PerSlotUtility":
        """Same utility in every slot -- the paper's stationary setting."""
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        return cls([fn] * num_slots)

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    def slot_fn(self, slot: int) -> UtilityFunction:
        return self._slots[slot]

    def with_slot(self, slot: int, fn: UtilityFunction) -> "PerSlotUtility":
        """Return a copy with slot ``slot`` replaced by ``fn``."""
        slots = list(self._slots)
        slots[slot] = fn
        return PerSlotUtility(slots)

    def evaluators(self) -> List["IncrementalEvaluator"]:
        """One fresh incremental evaluator per slot (see
        :mod:`repro.utility.incremental`)."""
        from repro.utility.incremental import make_slot_evaluators

        return make_slot_evaluators(self._slots)

    def total(self, assignment: Mapping[int, Iterable[int]]) -> float:
        """Total utility of ``{slot: active sensors}`` over all slots."""
        return sum(
            self._slots[t].value(assignment.get(t, frozenset()))
            for t in range(self.num_slots)
        )
