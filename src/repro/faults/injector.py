"""The active fault injector: a process-wide, seeded chaos switchboard.

Hook points in the serving stack call :func:`maybe_hit` with their site
name.  With no injector installed that is one ``None`` check -- the
production cost of the whole chaos subsystem.  With a plan installed
(:func:`install`), each hit is counted and matched against the plan's
specs under a lock, deterministically: spec ``i`` of a plan draws from
``random.Random(seed * K + i)``, so the same plan over the same
traffic fires the same faults in the same order.

**Worker processes.**  ``install`` also exports the plan through
``$REPRO_FAULT_PLAN``, and :func:`active_injector` lazily rebuilds an
injector from that variable when none is installed in-process.  Forked
pool workers inherit the parent's injector directly; spawned ones pick
the plan up from the environment on their first hit.  Hit counters are
per-process either way -- a "crash the 3rd task" spec means the third
task *that worker* runs, which is exactly the non-determinism real
worker crashes have; the *plan* (and therefore the test) stays seeded
and reproducible at the level that matters: which faults exist and how
often they fire.

Every fire increments ``repro_faults_injected_total{site,action}`` and
emits a ``faults.injected`` event in the process where it happened.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import events as obs_events
from repro.obs.registry import get_registry

#: Environment variable carrying the installed plan to worker processes.
FAULTS_ENV = "REPRO_FAULT_PLAN"

_INJECTED_HELP = "Chaos faults fired by injection site and action"


class InjectedFaultError(OSError):
    """A chaos-injected I/O failure.

    Subclasses ``OSError`` on purpose: the serving stack already treats
    I/O errors as transient (cache reads degrade to misses, pool
    failures degrade to serial, the executor retries), so an injected
    fault exercises exactly the handling a real one would.
    """


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against hook-point hits."""

    def __init__(self, plan: FaultPlan):
        import random

        self.plan = plan
        self._lock = threading.Lock()
        self._site_hits: Dict[str, int] = {}
        self._fires: List[int] = [0] * len(plan.specs)
        # One independent, seeded stream per spec: adding a spec to a
        # plan never perturbs the firing pattern of the others.
        self._rngs = [
            random.Random(plan.seed * 1_000_003 + index)
            for index in range(len(plan.specs))
        ]

    # -- bookkeeping ---------------------------------------------------

    def site_hits(self, site: str) -> int:
        with self._lock:
            return self._site_hits.get(site, 0)

    def fired(self) -> Dict[int, int]:
        """Spec index -> fire count (for reports and tests)."""
        with self._lock:
            return {
                index: count
                for index, count in enumerate(self._fires)
                if count
            }

    # -- the hook ------------------------------------------------------

    def hit(self, site: str, **context: Any) -> Optional[FaultSpec]:
        """Record one hit at ``site`` and apply the first matching fault.

        ``error`` raises :class:`InjectedFaultError`; ``sleep`` stalls
        inline; ``crash`` never returns (``os._exit``).  ``torn-write``
        cannot be applied generically -- the spec is *returned* and the
        cache's write path enacts it.  Returns the fired spec (or
        ``None``), so callers can special-case actions they own.
        """
        fired: Optional[FaultSpec] = None
        with self._lock:
            count = self._site_hits.get(site, 0)
            self._site_hits[site] = count + 1
            for index, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                if count < spec.after:
                    continue
                if spec.times is not None and self._fires[index] >= spec.times:
                    continue
                if (
                    spec.probability < 1.0
                    and self._rngs[index].random() >= spec.probability
                ):
                    continue
                self._fires[index] += 1
                fired = spec
                break
        if fired is None:
            return None
        get_registry().counter(
            "repro_faults_injected_total",
            _INJECTED_HELP,
            site=site,
            action=fired.action,
        ).inc()
        obs_events.emit(
            "faults.injected", site=site, action=fired.action, **context
        )
        if fired.action == "sleep":
            time.sleep(fired.delay)
            return fired
        if fired.action == "crash":
            # A real worker crash: no cleanup, no excuses.  Exit code
            # picked to be recognizable in process tables.
            os._exit(66)
        if fired.action == "error":
            raise InjectedFaultError(
                f"injected fault at {site}"
                + (f" ({context})" if context else "")
            )
        return fired  # torn-write: the caller enacts it


# ----------------------------------------------------------------------
# Process-wide switchboard (the obs.events set_sink pattern)
# ----------------------------------------------------------------------

_injector: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Activate ``plan`` for this process and its future pool workers;
    returns the injector (restore with :func:`uninstall` when done)."""
    global _injector
    _injector = FaultInjector(plan)
    os.environ[FAULTS_ENV] = plan.to_json()
    return _injector


def uninstall() -> None:
    """Deactivate chaos injection for this process (idempotent)."""
    global _injector
    _injector = None
    os.environ.pop(FAULTS_ENV, None)


def active_injector() -> Optional[FaultInjector]:
    """The installed injector, rebuilding lazily from the environment
    in processes (spawned workers) that inherited only the variable."""
    global _injector
    if _injector is None:
        serialized = os.environ.get(FAULTS_ENV)
        if serialized:
            try:
                _injector = FaultInjector(FaultPlan.from_json(serialized))
            except (ValueError, KeyError, TypeError):
                # A malformed plan must not break real traffic; chaos
                # is opt-in, never load-bearing.
                return None
    return _injector


def maybe_hit(site: str, **context: Any) -> Optional[FaultSpec]:
    """Hook-point entry: apply the active plan at ``site``, if any."""
    injector = active_injector()
    if injector is None:
        return None
    return injector.hit(site, **context)
