"""The chaos harness: seeded fault plans against a live service.

:func:`run_chaos` stands up an embedded
:class:`~repro.serve.app.SolveService`, installs a
:class:`~repro.faults.plan.FaultPlan`, drives a deterministic request
mix through real HTTP, and checks the robustness contract on every
single response:

- **200, not degraded**: the ``result`` object must be byte-identical
  to a direct in-process :func:`repro.core.solver.solve` of the same
  instance -- chaos may slow an answer down, never change it;
- **200, degraded**: must carry ``"degraded": true`` and a
  ``degraded_source`` -- served best-effort, honestly labeled;
- **anything else**: must be a structured ``repro-error`` envelope
  with status 429 or 503 -- load shedding and failure are told to the
  client, not hidden behind hangs or truncated bodies.

Anything else is a **violation** and fails the run.  The request mix,
the fault plan, and every injected fault are seeded, so a chaos run is
a reproducible regression test, not a flaky stress test -- the CLI
(``repro chaos``) and the chaos benchmark both call this entry point.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.core.solver import solve
from repro.faults import injector
from repro.faults.plan import FaultPlan
from repro.obs import events as obs_events

#: The structured error statuses the contract permits.
ALLOWED_ERROR_STATUSES = (429, 503)

REPORT_KIND = "repro-chaos-report"
REPORT_VERSION = 1


def request_mix(
    requests: int, seed: int, max_sensors: int = 12
) -> List[Dict[str, Any]]:
    """A deterministic, duplicate-heavy request mix.

    Small instances (solves stay sub-second even serial), several
    distinct shapes, and deliberate repeats -- repeats exercise
    coalescing, the cache fast path, and the stale-cache degraded
    path, which a mix of all-unique instances never would.
    """
    import random

    rng = random.Random(seed)
    shapes = []
    for _ in range(max(2, requests // 4)):
        shapes.append(
            {
                "num_sensors": rng.randrange(2, max_sensors + 1),
                "rho": float(rng.randrange(1, 5)),
                "utility": {"p": rng.choice([0.3, 0.4, 0.5])},
            }
        )
    return [
        {"problem": rng.choice(shapes), "method": "greedy", "seed": 0}
        for _ in range(requests)
    ]


def expected_result_wire(body: Dict[str, Any]) -> Dict[str, Any]:
    """The ground-truth ``result`` object for one request body,
    computed by a direct, chaos-free, in-process solve."""
    from repro.serve import schemas

    problem, method, seed = schemas.parse_solve_request(body)
    return schemas.result_to_wire(solve(problem, method=method, rng=seed))


def run_chaos(
    plan: FaultPlan,
    requests: int = 40,
    seed: int = 0,
    jobs: Optional[int] = None,
    request_timeout: float = 10.0,
    cache_dir: Optional[str] = None,
    breaker_threshold: int = 3,
    breaker_recovery: float = 0.5,
) -> Dict[str, Any]:
    """Drive the request mix through a service under ``plan``.

    Returns a report document (kind ``repro-chaos-report``): outcome
    counts, injected-fault counts, breaker transitions observed, and
    the full list of contract ``violations`` (empty on a passing run).
    The service is embedded on an ephemeral port and torn down before
    returning; the plan is uninstalled even on error.
    """
    from repro.serve.app import ServiceConfig, SolveService

    bodies = request_mix(requests, seed)
    # Ground truth first, before any fault is installed: one direct
    # solve per unique instance.
    expected: Dict[str, Dict[str, Any]] = {}
    for body in bodies:
        key = json.dumps(body, sort_keys=True)
        if key not in expected:
            expected[key] = expected_result_wire(body)

    config = ServiceConfig(
        port=0,
        jobs=jobs,
        use_cache=cache_dir is not None,
        cache_dir=cache_dir,
        request_timeout=request_timeout,
        breaker_threshold=breaker_threshold,
        breaker_recovery=breaker_recovery,
    )
    outcomes = {"ok": 0, "degraded": 0}
    errors: Dict[str, int] = {}
    violations: List[Dict[str, Any]] = []

    active = injector.install(plan)
    service = SolveService(config)
    try:
        service.start()
        for index, body in enumerate(bodies):
            key = json.dumps(body, sort_keys=True)
            status, parsed = _post(service.url + "/v1/solve", body)
            verdict = _classify(status, parsed, expected[key])
            if verdict is None:
                if status == 200 and parsed.get("degraded"):
                    outcomes["degraded"] += 1
                elif status == 200:
                    outcomes["ok"] += 1
                else:
                    code = parsed["error"]["code"]
                    errors[code] = errors.get(code, 0) + 1
            else:
                violations.append(
                    {"request": index, "status": status, "reason": verdict}
                )
        fired = {
            str(spec_index): count
            for spec_index, count in active.fired().items()
        }
    finally:
        service.stop()
        injector.uninstall()

    report = {
        "kind": REPORT_KIND,
        "version": REPORT_VERSION,
        "seed": seed,
        "requests": requests,
        "plan": plan.as_dict(),
        "outcomes": {**outcomes, "errors": errors},
        "faults_fired": fired,
        "violations": violations,
        "passed": not violations,
    }
    obs_events.emit(
        "chaos.run",
        requests=requests,
        violations=len(violations),
        passed=not violations,
    )
    return report


def run_cluster_chaos(
    plan: FaultPlan,
    workers: int = 2,
    requests: int = 40,
    seed: int = 0,
    request_timeout: float = 15.0,
    cache_dir: Optional[str] = None,
    runtime_dir: Optional[str] = None,
    kill_worker: bool = True,
) -> Dict[str, Any]:
    """The cluster variant: the same per-response contract, plus a real
    worker crash.

    Boots a :class:`~repro.cluster.service.ClusterService`, drives the
    seeded mix through the *router*, and -- about a third of the way in
    -- SIGKILLs one worker to prove the supervisor respawns it and the
    router absorbs the gap (retried forwards or structured 503s, never
    a wrong or truncated answer).  The installed plan reaches workers
    through ``$REPRO_FAULT_PLAN`` (exported by ``injector.install``
    before the fleet is spawned), so worker-side sites keep firing;
    ``router.forward`` faults fire in this process.  The report gains a
    ``cluster`` section: worker count, the killed shard, and per-worker
    restart counts -- a run only passes if the killed worker came back.
    """
    import signal

    from repro.cluster.service import ClusterConfig, ClusterService

    bodies = request_mix(requests, seed)
    expected: Dict[str, Dict[str, Any]] = {}
    for body in bodies:
        key = json.dumps(body, sort_keys=True)
        if key not in expected:
            expected[key] = expected_result_wire(body)

    outcomes = {"ok": 0, "degraded": 0}
    errors: Dict[str, int] = {}
    violations: List[Dict[str, Any]] = []
    kill_at = max(1, requests // 3) if kill_worker else None
    killed_shard: Optional[str] = None

    # Install before spawning: the env carries the plan to the fleet.
    active = injector.install(plan)
    cluster = ClusterService(
        ClusterConfig(
            workers=workers,
            port=0,
            runtime_dir=runtime_dir,
            cache_dir=cache_dir,
            request_timeout=request_timeout,
            service={"batch_window": 0.005, "use_cache": cache_dir is not None},
        )
    )
    try:
        cluster.start()
        for index, body in enumerate(bodies):
            if kill_at is not None and index == kill_at:
                killed_shard = cluster.router.shard_for_body(
                    "/v1/solve", json.dumps(body).encode("utf-8")
                )
                cluster.supervisor.kill(killed_shard, signal.SIGKILL)
            key = json.dumps(body, sort_keys=True)
            status, parsed = _post(
                cluster.url + "/v1/solve", body, timeout=request_timeout * 2
            )
            verdict = _classify(status, parsed, expected[key])
            if verdict is None:
                if status == 200 and parsed.get("degraded"):
                    outcomes["degraded"] += 1
                elif status == 200:
                    outcomes["ok"] += 1
                else:
                    code = parsed["error"]["code"]
                    errors[code] = errors.get(code, 0) + 1
            else:
                violations.append(
                    {"request": index, "status": status, "reason": verdict}
                )
        restarts = {
            entry["shard"]: entry["restarts"]
            for entry in cluster.supervisor.describe()
        }
        if killed_shard is not None:
            # The respawn is part of the contract: a kill the
            # supervisor never repaired is a failed run even if every
            # individual response was clean.
            address = cluster.supervisor.address(killed_shard)
            if restarts.get(killed_shard, 0) < 1 or address is None:
                violations.append(
                    {
                        "request": None,
                        "status": None,
                        "reason": f"killed worker {killed_shard} "
                        "was not respawned",
                    }
                )
        fired = {
            str(spec_index): count
            for spec_index, count in active.fired().items()
        }
    finally:
        cluster.stop()
        injector.uninstall()

    report = {
        "kind": REPORT_KIND,
        "version": REPORT_VERSION,
        "seed": seed,
        "requests": requests,
        "plan": plan.as_dict(),
        "outcomes": {**outcomes, "errors": errors},
        "faults_fired": fired,
        "cluster": {
            "workers": workers,
            "killed": killed_shard,
            "restarts": restarts,
        },
        "violations": violations,
        "passed": not violations,
    }
    obs_events.emit(
        "chaos.cluster_run",
        requests=requests,
        workers=workers,
        violations=len(violations),
        passed=not violations,
    )
    return report


def _post(
    url: str, body: Dict[str, Any], timeout: float = 30.0
) -> Tuple[int, Dict[str, Any]]:
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        raw = error.read()
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError:
            parsed = {"unparseable": raw.decode("utf-8", "replace")}
        return error.code, parsed


def _classify(
    status: int, parsed: Dict[str, Any], expected: Dict[str, Any]
) -> Optional[str]:
    """``None`` if the response honors the contract, else the reason
    it does not."""
    if status == 200:
        if parsed.get("degraded"):
            if not parsed.get("degraded_source"):
                return "degraded response without degraded_source"
            return None
        if parsed.get("result") != expected:
            return "non-degraded result differs from direct solve"
        return None
    if status not in ALLOWED_ERROR_STATUSES:
        return f"disallowed status {status}"
    error = parsed.get("error")
    if not isinstance(error, dict) or "code" not in error:
        return f"status {status} without a structured error body"
    return None
