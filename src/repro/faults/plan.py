"""Declarative fault plans: which faults fire, where, when, how often.

A plan is a list of :class:`FaultSpec` records plus one seed.  Each
spec names an injection *site* (a hook point in the serving stack), an
*action* (what goes wrong there), and firing discipline (skip the
first ``after`` hits, fire with ``probability``, at most ``times``
total).  Validation happens at construction, exactly like
:class:`~repro.sim.failures.FailurePlan`: a malformed plan raises
``ValueError`` immediately, never mid-run.

Plans serialize to/from JSON so they can travel to pool workers
through the environment (:mod:`repro.faults.injector`), be stored next
to a benchmark, or be replayed from the ``repro chaos`` command line.
The compact CLI syntax is ``site:action[:key=value,...]``::

    pool.task:crash:after=2,times=1     # SIGKILL-equivalent in worker 3
    cache.read:error:p=0.25             # a quarter of reads fail
    cache.write:torn-write:times=1      # one non-atomic partial write
    solve:sleep:delay=0.5,p=0.1         # 10% of solves stall 500 ms
    batcher.batch:sleep:delay=1.0       # the batcher wedges for 1 s
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Hook points the serving stack exposes (site -> where it fires).
SITES: Dict[str, str] = {
    "pool.task": "worker-side task wrapper in runtime/pool.py",
    "solve": "per-solve in runtime/executor.py (worker or serial)",
    "cache.read": "directory-store read in runtime/backend.py",
    "cache.write": "directory-store write in runtime/backend.py",
    "batcher.batch": "batch execution in serve/batcher.py",
    "router.forward": "router-to-worker hop in cluster/router.py",
}

#: What can go wrong at a site.
ACTIONS: Tuple[str, ...] = ("error", "crash", "sleep", "torn-write")

#: ``crash`` hard-kills the process that hits it (``os._exit``), so it
#: is only allowed at the one site guaranteed to run in a *worker*
#: process -- everywhere else it would take the parent down.
CRASH_SITES: Tuple[str, ...] = ("pool.task",)

#: ``torn-write`` means "a non-atomic writer died mid-write"; only the
#: cache write path can express that.
TORN_SITES: Tuple[str, ...] = ("cache.write",)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, and how often.

    Parameters
    ----------
    site:
        Hook point name (one of :data:`SITES`).
    action:
        ``"error"`` raises :class:`~repro.faults.injector.InjectedFaultError`
        (an ``OSError``, so existing I/O handling applies);
        ``"crash"`` terminates the hitting process with ``os._exit``;
        ``"sleep"`` stalls for ``delay`` seconds then continues;
        ``"torn-write"`` makes the cache writer leave a truncated
        non-atomic file (the crash the atomic rename normally prevents).
    probability:
        Chance of firing at each eligible hit (seeded, deterministic).
    after:
        Skip this many hits at the site before becoming eligible.
    times:
        Fire at most this many times (``None`` = unlimited).
    delay:
        Stall duration in seconds (``sleep`` only).
    """

    site: str
    action: str
    probability: float = 1.0
    after: int = 0
    times: Optional[int] = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from {sorted(SITES)}"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"choose from {sorted(ACTIONS)}"
            )
        if self.action == "crash" and self.site not in CRASH_SITES:
            raise ValueError(
                f"'crash' is only injectable at worker-side sites "
                f"{sorted(CRASH_SITES)}, not {self.site!r}"
            )
        if self.action == "torn-write" and self.site not in TORN_SITES:
            raise ValueError(
                f"'torn-write' is only injectable at {sorted(TORN_SITES)}, "
                f"not {self.site!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.action == "sleep" and self.delay == 0:
            raise ValueError("a 'sleep' fault needs a positive 'delay'")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "action": self.action,
            "probability": self.probability,
            "after": self.after,
            "times": self.times,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FaultSpec":
        known = {"site", "action", "probability", "after", "times", "delay"}
        unknown = set(document) - known
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        return cls(**document)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; the unit chaos runs are keyed by."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-fault-plan",
            "version": 1,
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FaultPlan":
        if document.get("kind") != "repro-fault-plan":
            raise ValueError("not a fault plan document")
        if document.get("version") != 1:
            raise ValueError(
                f"unsupported fault plan version {document.get('version')!r}"
            )
        specs = tuple(
            FaultSpec.from_dict(entry) for entry in document.get("specs", [])
        )
        return cls(specs=specs, seed=int(document.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_cli_specs(
        cls, specs: Sequence[str], seed: int = 0
    ) -> "FaultPlan":
        """Build a plan from ``site:action[:key=value,...]`` strings."""
        return cls(
            specs=tuple(parse_fault_spec(text) for text in specs), seed=seed
        )


#: Short CLI keys -> FaultSpec field names.
_CLI_KEYS = {
    "p": "probability",
    "probability": "probability",
    "after": "after",
    "times": "times",
    "delay": "delay",
}

_FIELD_TYPES = {
    "probability": float,
    "after": int,
    "times": int,
    "delay": float,
}


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one compact ``site:action[:key=value,...]`` spec string."""
    parts = text.split(":")
    if len(parts) < 2 or len(parts) > 3:
        raise ValueError(
            f"fault spec {text!r} must look like "
            "'site:action' or 'site:action:key=value,...'"
        )
    site, action = parts[0], parts[1]
    fields: Dict[str, Any] = {}
    if len(parts) == 3 and parts[2]:
        for assignment in parts[2].split(","):
            key, _, raw = assignment.partition("=")
            if key not in _CLI_KEYS or not raw:
                raise ValueError(
                    f"fault spec {text!r}: bad option {assignment!r} "
                    f"(known: {sorted(set(_CLI_KEYS))})"
                )
            name = _CLI_KEYS[key]
            try:
                fields[name] = _FIELD_TYPES[name](raw)
            except ValueError as error:
                raise ValueError(
                    f"fault spec {text!r}: {key}={raw!r} is not "
                    f"a valid {_FIELD_TYPES[name].__name__}"
                ) from error
    return FaultSpec(site=site, action=action, **fields)
