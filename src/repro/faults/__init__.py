"""Chaos injection for the serving stack: deterministic, seeded faults.

PR 1 gave the *simulation* a declarative failure model
(:class:`~repro.sim.failures.FailurePlan`): node deaths, outages and
stuck actuators, injected so robustness could be measured instead of
assumed.  This package is the same idea for the *service*: worker
crashes, cache I/O errors and torn writes, batcher stalls and slow
solves, described by a :class:`~repro.faults.plan.FaultPlan` and fired
by a process-wide :class:`~repro.faults.injector.FaultInjector` at hook
points inside :mod:`repro.runtime.pool`,
:mod:`repro.runtime.executor`, :mod:`repro.runtime.cache` and
:mod:`repro.serve.batcher`.

Everything is seeded and counted: the same plan against the same
traffic fires the same faults, so a chaos run is a *test*, not a dice
roll.  When no plan is installed every hook is one ``None`` check --
production traffic pays nothing.

Entry points:

- :func:`~repro.faults.injector.install` /
  :func:`~repro.faults.injector.uninstall` -- activate a plan for this
  process (and, via the environment, for pool workers it spawns);
- ``repro chaos`` -- the CLI harness
  (:func:`~repro.faults.chaos.run_chaos`) that drives a fault-injected
  service and differentially verifies every answer;
- ``benchmarks/bench_chaos.py`` -- recovery latency and degraded-answer
  rates under a standard plan.
"""

from repro.faults.injector import (
    FaultInjector,
    InjectedFaultError,
    active_injector,
    install,
    maybe_hit,
    uninstall,
)
from repro.faults.plan import FaultPlan, FaultSpec, parse_fault_spec

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "active_injector",
    "install",
    "maybe_hit",
    "parse_fault_spec",
    "uninstall",
]
