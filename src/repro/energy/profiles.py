"""Named charging profiles per weather condition (paper Sec. I, VI-A).

The paper measures one (T_d, T_r) pattern per weather condition and
"may choose different pattern each day for different weather
condition".  This module is the catalogue: a profile bundles the
measured discharge/recharge times with the weather they were measured
under, and the adaptive policy (:mod:`repro.policies.adaptive`) swaps
profiles as its ρ-estimator detects weather changes.

Measured anchor (Sec. VI-A, sunny): T_d = 15 min, T_r = 45 min, so
rho = 3 and the period is 4 slots of 15 minutes -- exactly the paper's
worked example "T = (3+1) x 15 = 60 minutes, L = 12 x 60 = 720 minutes".
The non-sunny profiles scale the recharge time by the attenuation the
solar model predicts for those conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.period import ChargingPeriod


@dataclass(frozen=True)
class ChargingProfile:
    """A (weather condition, charging period) pair."""

    name: str
    weather: str
    period: ChargingPeriod

    @property
    def rho(self) -> float:
        return self.period.rho

    def __str__(self) -> str:
        return f"{self.name} ({self.weather}): {self.period}"


PAPER_SUNNY = ChargingProfile(
    name="paper-sunny",
    weather="sunny",
    period=ChargingPeriod(discharge_time=15.0, recharge_time=45.0),
)

# Overcast roughly halves usable irradiance for a small panel, doubling
# the recharge time; heavy rain cuts it far more.  The discharge time is
# a property of the mote, not the weather, so it stays 15 min.
CLOUDY = ChargingProfile(
    name="cloudy",
    weather="cloudy",
    period=ChargingPeriod(discharge_time=15.0, recharge_time=90.0),
)

RAINY = ChargingProfile(
    name="rainy",
    weather="rainy",
    period=ChargingPeriod(discharge_time=15.0, recharge_time=180.0),
)

# A bright-summer profile where harvesting outpaces the duty-cycle drain:
# rho < 1, exercising the Sec. IV-B scheduler.
BRIGHT = ChargingProfile(
    name="bright",
    weather="bright",
    period=ChargingPeriod(discharge_time=45.0, recharge_time=15.0),
)

_PROFILES = {
    profile.name: profile for profile in (PAPER_SUNNY, CLOUDY, RAINY, BRIGHT)
}

_BY_WEATHER = {
    "sunny": PAPER_SUNNY,
    "cloudy": CLOUDY,
    "rainy": RAINY,
    "bright": BRIGHT,
}


def profile_by_name(name: str) -> ChargingProfile:
    """Look up a catalogued profile; raises ``KeyError`` with choices."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None


def profile_for_weather(weather: str) -> ChargingProfile:
    """The catalogued profile measured under the given weather condition."""
    try:
        return _BY_WEATHER[weather]
    except KeyError:
        raise KeyError(
            f"no profile for weather {weather!r}; available: {sorted(_BY_WEATHER)}"
        ) from None
