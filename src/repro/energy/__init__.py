"""Recharge/discharge energy model (paper Sec. II-B, Fig. 2).

Each sensor has a battery of capacity ``B`` that discharges at speed
``mu_d`` while ACTIVE and recharges at speed ``mu_r`` while PASSIVE;
fully charged sensors wait in READY with negligible drain.  The derived
quantities

- discharge time ``T_d = B / mu_d``,
- recharge time ``T_r = B / mu_r``,
- charging period ``T = T_r + T_d``,
- ratio ``rho = T_r / T_d``

drive the whole scheduling layer: after normalizing the slot length to
``T_d`` (rho >= 1) or ``T_r`` (rho < 1), a period spans ``rho + 1``
(resp. ``1 + 1/rho``) slots and each sensor can be ACTIVE at most one
slot per period (rho >= 1) or must be PASSIVE at least one slot per
period (rho <= 1).
"""

from repro.energy.battery import Battery
from repro.energy.states import IllegalTransition, NodeState, SensorStateMachine
from repro.energy.period import ChargingPeriod, normalize_ratio
from repro.energy.profiles import (
    PAPER_SUNNY,
    ChargingProfile,
    profile_by_name,
    profile_for_weather,
)

__all__ = [
    "Battery",
    "NodeState",
    "SensorStateMachine",
    "IllegalTransition",
    "ChargingPeriod",
    "normalize_ratio",
    "ChargingProfile",
    "PAPER_SUNNY",
    "profile_by_name",
    "profile_for_weather",
]
