"""Charging-period arithmetic: ``T_d``, ``T_r``, ``T``, ``rho`` (Sec. II-B, Fig. 2).

Physical definitions (note: the paper's running text contains a typo
swapping the two; we use the physically consistent version, which also
matches the paper's example ``T_d = 15 min``, ``T_r = 45 min``,
``rho = 3``, ``T = 60 min``):

- discharge time  ``T_d = B / mu_d``  (time for an active node to drain),
- recharge time   ``T_r = B / mu_r``  (time for a passive node to fill),
- charging period ``T = T_r + T_d``,
- ratio           ``rho = T_r / T_d``.

Slot normalization (the paper's convention):

- ``rho >= 1``: one slot = ``T_d``; a period holds ``rho + 1`` slots; a
  sensor can be ACTIVE for at most **one** slot out of any ``T``
  consecutive slots (activating drains it fully; the next ``rho`` slots
  it recharges).
- ``rho <= 1``: one slot = ``T_r``; a period holds ``1 + 1/rho`` slots;
  a sensor can be ACTIVE for ``1/rho`` slots and must be PASSIVE for at
  least **one** slot per period.

For exposition the paper assumes ``rho`` (resp. ``1/rho``) is an
integer; :func:`normalize_ratio` enforces/rounds this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def normalize_ratio(rho: float, tolerance: float = 1e-9) -> float:
    """Validate the paper's integrality assumption on ``rho``.

    For ``rho >= 1`` the value must be a (near-)integer; for ``rho < 1``
    its reciprocal must be.  Values within ``tolerance`` of an integer
    are snapped; anything else raises ``ValueError`` (the paper assumes
    integrality "without affecting the generality of the results" --
    callers with awkward ratios should round T_d/T_r themselves).
    """
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")
    if rho >= 1:
        nearest = round(rho)
        if abs(rho - nearest) > tolerance:
            raise ValueError(
                f"rho >= 1 must be an integer (paper Sec. II-B), got {rho}"
            )
        return float(nearest)
    inverse = 1.0 / rho
    nearest = round(inverse)
    if abs(inverse - nearest) > tolerance:
        raise ValueError(
            f"1/rho must be an integer for rho < 1 (paper Sec. II-B), got rho={rho}"
        )
    return 1.0 / nearest


@dataclass(frozen=True)
class ChargingPeriod:
    """All slot-level consequences of a (T_d, T_r) pair.

    Construct directly from times, or from physical rates via
    :meth:`from_rates`, or from a ratio via :meth:`from_ratio`.
    """

    discharge_time: float  # T_d, in wall-clock minutes
    recharge_time: float  # T_r, in wall-clock minutes

    def __post_init__(self) -> None:
        if self.discharge_time <= 0:
            raise ValueError(
                f"discharge time must be positive, got {self.discharge_time}"
            )
        if self.recharge_time <= 0:
            raise ValueError(
                f"recharge time must be positive, got {self.recharge_time}"
            )
        # Trip the integrality check early so invalid periods cannot be built.
        normalize_ratio(self.recharge_time / self.discharge_time)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rates(
        cls, capacity: float, discharge_rate: float, recharge_rate: float
    ) -> "ChargingPeriod":
        """From battery capacity ``B`` and speeds ``mu_d``, ``mu_r``."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if discharge_rate <= 0 or recharge_rate <= 0:
            raise ValueError("rates must be positive")
        return cls(
            discharge_time=capacity / discharge_rate,
            recharge_time=capacity / recharge_rate,
        )

    @classmethod
    def from_ratio(cls, rho: float, discharge_time: float = 1.0) -> "ChargingPeriod":
        """From ``rho`` with a chosen ``T_d`` (defaults to 1 normalized unit)."""
        rho = normalize_ratio(rho)
        return cls(discharge_time=discharge_time, recharge_time=rho * discharge_time)

    @classmethod
    def paper_sunny(cls) -> "ChargingPeriod":
        """The measured sunny-weather pattern: T_d = 15 min, T_r = 45 min.

        (Sec. VI-A: "the recharge time is around 45 minutes and the
        discharge time is 15 minutes when weather is sunny".)
        """
        return cls(discharge_time=15.0, recharge_time=45.0)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_time(self) -> float:
        """``T = T_r + T_d`` in wall-clock units."""
        return self.discharge_time + self.recharge_time

    @property
    def rho(self) -> float:
        """``rho = T_r / T_d`` (snapped to the integrality assumption)."""
        return normalize_ratio(self.recharge_time / self.discharge_time)

    @property
    def slot_length(self) -> float:
        """Normalized slot length: ``T_d`` if rho >= 1, else ``T_r``."""
        return self.discharge_time if self.rho >= 1 else self.recharge_time

    @property
    def slots_per_period(self) -> int:
        """``T`` in slots: ``rho + 1`` if rho >= 1, else ``1 + 1/rho``."""
        rho = self.rho
        if rho >= 1:
            return int(round(rho)) + 1
        return 1 + int(round(1.0 / rho))

    @property
    def active_slots_per_period(self) -> int:
        """Max ACTIVE slots per period: 1 if rho >= 1, else ``1/rho``."""
        rho = self.rho
        if rho >= 1:
            return 1
        return int(round(1.0 / rho))

    @property
    def passive_slots_per_period(self) -> int:
        """Min PASSIVE slots per period: ``rho`` if rho >= 1, else 1."""
        rho = self.rho
        if rho >= 1:
            return int(round(rho))
        return 1

    def slots_for_working_time(self, working_time: float) -> int:
        """Convert a wall-clock working time ``L`` into whole slots.

        The paper assumes ``L`` is a multiple of ``T``; mismatches raise
        so that silently truncated experiments cannot happen.
        """
        slots = working_time / self.slot_length
        nearest = round(slots)
        if abs(slots - nearest) > 1e-6:
            raise ValueError(
                f"working time {working_time} is not a whole number of "
                f"slots (slot = {self.slot_length})"
            )
        if nearest % self.slots_per_period != 0:
            raise ValueError(
                f"working time {working_time} spans {nearest} slots which is "
                f"not a multiple of the period ({self.slots_per_period} slots); "
                "the paper requires L = alpha * T"
            )
        return int(nearest)

    def periods_for_working_time(self, working_time: float) -> int:
        """``alpha`` in ``L = alpha T``."""
        return self.slots_for_working_time(working_time) // self.slots_per_period

    def __str__(self) -> str:
        return (
            f"ChargingPeriod(T_d={self.discharge_time}, T_r={self.recharge_time}, "
            f"rho={self.rho:g}, T={self.slots_per_period} slots)"
        )
