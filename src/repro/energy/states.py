"""Sensor state machine: ACTIVE / PASSIVE / READY (paper Sec. II-B).

The paper's lifecycle:

- **ACTIVE**: powered on, sensing/communicating/computing; drains the
  battery gradually.
- **PASSIVE**: energy exhausted; recharging only, no operations.
- **READY**: battery fully charged; waits (with periodic wake-ups to
  track system state, whose drain the paper treats as negligible) until
  activated.

Legal transitions:

- ACTIVE -> PASSIVE  when the battery hits zero;
- ACTIVE -> READY    when deactivated before depletion (only meaningful
  for rho <= 1 scheduling, where a node may be active several slots and
  is parked before its battery runs dry);
- PASSIVE -> READY   when the battery is full again;
- READY -> ACTIVE    when the scheduler activates the node.

Anything else raises :class:`IllegalTransition`, so simulator bugs
surface immediately instead of silently corrupting energy accounting.
"""

from __future__ import annotations

from enum import Enum


class NodeState(Enum):
    """The three operating states of a rechargeable sensor."""

    ACTIVE = "active"
    PASSIVE = "passive"
    READY = "ready"


class IllegalTransition(RuntimeError):
    """A state change that the paper's lifecycle does not allow."""


_ALLOWED = {
    (NodeState.ACTIVE, NodeState.PASSIVE),
    (NodeState.ACTIVE, NodeState.READY),
    (NodeState.PASSIVE, NodeState.READY),
    (NodeState.READY, NodeState.ACTIVE),
}


class SensorStateMachine:
    """Tracks one node's state and enforces the legal lifecycle."""

    def __init__(self, initial: NodeState = NodeState.READY, transitions: int = 0):
        if transitions < 0:
            raise ValueError(f"transitions must be >= 0, got {transitions}")
        self._state = initial
        self._transitions = transitions

    @property
    def state(self) -> NodeState:
        return self._state

    @property
    def transitions(self) -> int:
        """Number of state changes so far (duty-cycle diagnostics)."""
        return self._transitions

    @property
    def is_active(self) -> bool:
        return self._state is NodeState.ACTIVE

    @property
    def is_ready(self) -> bool:
        return self._state is NodeState.READY

    @property
    def is_passive(self) -> bool:
        return self._state is NodeState.PASSIVE

    def transition(self, new_state: NodeState) -> None:
        """Move to ``new_state``; raise :class:`IllegalTransition` if illegal.

        Self-transitions are no-ops (staying in a state is always fine).
        """
        if new_state is self._state:
            return
        if (self._state, new_state) not in _ALLOWED:
            raise IllegalTransition(
                f"cannot move {self._state.value} -> {new_state.value}"
            )
        self._state = new_state
        self._transitions += 1

    def _require(self, expected: NodeState, action: str) -> None:
        if self._state is not expected:
            raise IllegalTransition(
                f"{action} requires {expected.value}, but node is "
                f"{self._state.value}"
            )

    def activate(self) -> None:
        """READY -> ACTIVE (the scheduler turning the node on)."""
        self._require(NodeState.READY, "activate")
        self.transition(NodeState.ACTIVE)

    def deplete(self) -> None:
        """ACTIVE -> PASSIVE (battery exhausted)."""
        self._require(NodeState.ACTIVE, "deplete")
        self.transition(NodeState.PASSIVE)

    def park(self) -> None:
        """ACTIVE -> READY (deactivated with energy remaining)."""
        self._require(NodeState.ACTIVE, "park")
        self.transition(NodeState.READY)

    def fully_charged(self) -> None:
        """PASSIVE -> READY (battery recharged to capacity)."""
        self._require(NodeState.PASSIVE, "fully_charged")
        self.transition(NodeState.READY)

    def __repr__(self) -> str:
        return f"SensorStateMachine(state={self._state.value})"
