"""Battery model: capacity ``B``, linear charge/discharge, depletion to zero.

The paper assumes (Sec. II-B) a battery that can be depleted to zero,
discharges at a fixed speed ``mu_d`` while the node is active, and
recharges at ``mu_r`` while passive.  Within a short horizon (~2 h of
sunny weather) both speeds are effectively constant -- the testbed
measurement of Sec. VI-A exists to justify exactly this.
"""

from __future__ import annotations


class Battery:
    """A linear battery with hard [0, capacity] bounds.

    Parameters
    ----------
    capacity:
        ``B`` in energy units (e.g. joules or mAh-equivalents).
    level:
        Initial energy; defaults to full (the paper activates only
        fully charged sensors).
    """

    def __init__(self, capacity: float, level: float | None = None):
        if capacity <= 0:
            raise ValueError(f"battery capacity must be positive, got {capacity}")
        self._capacity = capacity
        if level is None:
            level = capacity
        if not 0 <= level <= capacity:
            raise ValueError(
                f"battery level must be in [0, {capacity}], got {level}"
            )
        self._level = float(level)

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    @property
    def fraction(self) -> float:
        """State of charge in [0, 1]."""
        return self._level / self._capacity

    @property
    def is_full(self) -> bool:
        return self._level >= self._capacity - 1e-9

    @property
    def is_empty(self) -> bool:
        return self._level <= 1e-9

    def discharge(self, amount: float) -> float:
        """Drain up to ``amount``; returns the energy actually drained.

        Draining clamps at zero -- the paper's model lets the battery
        deplete fully, at which point the node drops to PASSIVE.
        """
        if amount < 0:
            raise ValueError(f"discharge amount must be non-negative, got {amount}")
        drained = min(amount, self._level)
        self._level -= drained
        return drained

    def charge(self, amount: float) -> float:
        """Add up to ``amount``; returns the energy actually stored.

        Charging clamps at capacity (excess harvest is wasted, matching
        a real solar charging circuit topping off).
        """
        if amount < 0:
            raise ValueError(f"charge amount must be non-negative, got {amount}")
        stored = min(amount, self._capacity - self._level)
        self._level += stored
        return stored

    def set_level(self, level: float) -> None:
        """Force the energy level (used by trace replay and tests)."""
        if not 0 <= level <= self._capacity:
            raise ValueError(
                f"battery level must be in [0, {self._capacity}], got {level}"
            )
        self._level = float(level)

    def copy(self) -> "Battery":
        return Battery(self._capacity, self._level)

    def __repr__(self) -> str:
        return f"Battery(capacity={self._capacity}, level={self._level:.4g})"
