"""Report-driven liveness inference: the base station's failure detector.

A real base station never sees a :class:`~repro.sim.failures.FailurePlan`;
all it has is the per-slot telemetry stream.  On this testbed every
healthy node reports every slot (the paper's periodic wake-ups), so a
*missing* report is the detection signal:

- a node that misses ``suspect_after`` consecutive reports becomes
  SUSPECT (could be one garbled packet -- don't re-plan yet);
- at ``evict_after`` consecutive misses it is declared DOWN and handed
  to the repair layer (a transient outage that ends later will bring it
  back: one fresh report restores ALIVE);
- a node repeatedly *active -- or refusing an activation -- on slots it
  was never commanded* is latched ROGUE (stuck actuator: it reports
  fine, but its readings are garbage and it fires on its own clock, so
  schedules should route around it).

The thresholds trade detection latency against false evictions exactly
like the suspicion timeouts of classic failure detectors; both are
configurable per deployment.  :class:`HealthMonitor` is deliberately
dumb and deterministic -- no oracle access, no randomness -- so its
verdicts are reproducible and auditable against the injected plan in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Sequence

from repro.obs import events as obs_events
from repro.obs.registry import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.node import NodeSlotReport

_TRANSITIONS_HELP = (
    "Node verdict transitions by destination state (alive/suspect/down/rogue)"
)


class NodeHealth(Enum):
    """The monitor's verdict on one node."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DOWN = "down"


@dataclass(frozen=True)
class HealthSnapshot:
    """One slot's aggregate verdict set (diagnostics / logging)."""

    slot: int
    alive: FrozenSet[int]
    suspects: FrozenSet[int]
    down: FrozenSet[int]
    rogue: FrozenSet[int]


class HealthMonitor:
    """Infers node liveness purely from :class:`NodeSlotReport` streams.

    Parameters
    ----------
    num_sensors:
        Nodes ``0..n-1`` are tracked.
    suspect_after:
        Consecutive missed reports before a node turns SUSPECT.
    evict_after:
        Consecutive missed reports before a node is declared DOWN
        (must be >= ``suspect_after``).
    rogue_after:
        Observations of a node active -- or refusing an activation --
        *without having been commanded* before it is latched ROGUE.
        The count is cumulative, not
        consecutive: a stuck actuator duty-cycles on its own clock
        (drain, recharge, fire again), so its anomalies are spread out
        -- and a healthy node on this hardware is never active
        uncommanded, so accumulating them has no false positives.
        Latched means permanent: going quiet while recharging is not
        healing.
    """

    def __init__(
        self,
        num_sensors: int,
        suspect_after: int = 2,
        evict_after: int = 6,
        rogue_after: int = 2,
    ):
        if num_sensors < 0:
            raise ValueError(f"num_sensors must be >= 0, got {num_sensors}")
        if suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {suspect_after}")
        if evict_after < suspect_after:
            raise ValueError(
                f"evict_after ({evict_after}) must be >= suspect_after "
                f"({suspect_after})"
            )
        if rogue_after < 1:
            raise ValueError(f"rogue_after must be >= 1, got {rogue_after}")
        self.num_sensors = num_sensors
        self.suspect_after = suspect_after
        self.evict_after = evict_after
        self.rogue_after = rogue_after
        self._misses: Dict[int, int] = {v: 0 for v in range(num_sensors)}
        self._rogue_streak: Dict[int, int] = {v: 0 for v in range(num_sensors)}
        self._rogue: set = set()
        self._last_commands: FrozenSet[int] = frozenset()
        self._last_report_slot: Dict[int, Optional[int]] = {
            v: None for v in range(num_sensors)
        }
        self._last_level: Dict[int, Optional[float]] = {
            v: None for v in range(num_sensors)
        }
        self._last_state: Dict[int, Optional[str]] = {
            v: None for v in range(num_sensors)
        }
        self.total_evictions = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def note_commands(self, slot: int, commanded: Iterable[int]) -> None:
        """Record what was commanded this slot (for rogue detection)."""
        self._last_commands = frozenset(commanded)

    def observe(self, slot: int, reports: Sequence["NodeSlotReport"]) -> None:
        """Digest one slot's (possibly incomplete) report stream.

        Verdict transitions (ALIVE/SUSPECT/DOWN changes and ROGUE
        latches) are emitted as structured ``health.transition`` events
        and counted on the shared metrics registry, so the base
        station's inferences are machine-readable alongside the engine
        and policy streams.
        """
        seen = set()
        for report in reports:
            v = report.node_id
            if v not in self._misses:
                continue  # unknown id: ignore rather than crash the loop
            seen.add(v)
            before = self.status(v)
            self._misses[v] = 0
            if before is not NodeHealth.ALIVE:
                # One fresh report restores ALIVE from SUSPECT or DOWN.
                self._note_transition(slot, v, before, NodeHealth.ALIVE)
            self._last_report_slot[v] = slot
            self._last_level[v] = report.level_after
            self._last_state[v] = report.state_after.value
            # Rogue signal: activity OR a refused activation on a slot we
            # never commanded.  A stuck actuator re-locks to its command
            # phase (its successful firings look scheduled), but its
            # forced attempts while recharging surface as uncommanded
            # refusals -- something a healthy node cannot produce, since
            # refusal requires a command.
            if (
                report.was_active or report.refused_activation
            ) and v not in self._last_commands:
                self._rogue_streak[v] += 1
                if self._rogue_streak[v] >= self.rogue_after and (
                    v not in self._rogue
                ):
                    self._rogue.add(v)
                    self._note_rogue(slot, v)
        for v in self._misses:
            if v not in seen:
                before = self.status(v)
                self._misses[v] += 1
                after = self.status(v)
                if before is not NodeHealth.DOWN and after is NodeHealth.DOWN:
                    self.total_evictions += 1
                if after is not before:
                    self._note_transition(slot, v, before, after)

    def _note_transition(
        self, slot: int, node: int, before: NodeHealth, after: NodeHealth
    ) -> None:
        """Record one verdict change on the event stream and registry."""
        obs_events.emit(
            "health.transition",
            slot=slot,
            node=node,
            before=before.value,
            after=after.value,
        )
        get_registry().counter(
            "repro_health_transitions_total", _TRANSITIONS_HELP, to=after.value
        ).inc()

    def _note_rogue(self, slot: int, node: int) -> None:
        """Record a (permanent) ROGUE latch."""
        obs_events.emit(
            "health.transition",
            slot=slot,
            node=node,
            before=self.status(node).value,
            after="rogue",
        )
        get_registry().counter(
            "repro_health_transitions_total", _TRANSITIONS_HELP, to="rogue"
        ).inc()

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def status(self, node_id: int) -> NodeHealth:
        misses = self._misses[node_id]
        if misses >= self.evict_after:
            return NodeHealth.DOWN
        if misses >= self.suspect_after:
            return NodeHealth.SUSPECT
        return NodeHealth.ALIVE

    def is_rogue(self, node_id: int) -> bool:
        return node_id in self._rogue

    def down_nodes(self) -> FrozenSet[int]:
        return frozenset(
            v for v in self._misses if self.status(v) is NodeHealth.DOWN
        )

    def suspect_nodes(self) -> FrozenSet[int]:
        return frozenset(
            v for v in self._misses if self.status(v) is NodeHealth.SUSPECT
        )

    def rogue_nodes(self) -> FrozenSet[int]:
        return frozenset(self._rogue)

    def usable_nodes(self) -> FrozenSet[int]:
        """Nodes a repair should plan with: not DOWN and not ROGUE.

        SUSPECT nodes stay in -- evicting on a single missed packet
        would thrash the schedule on every command loss.
        """
        return frozenset(
            v
            for v in self._misses
            if self.status(v) is not NodeHealth.DOWN and v not in self._rogue
        )

    def last_report(self, node_id: int):
        """(slot, level_after, state_after value) of the freshest report,
        or ``None`` if the node never reported."""
        slot = self._last_report_slot[node_id]
        if slot is None:
            return None
        return slot, self._last_level[node_id], self._last_state[node_id]

    def snapshot(self, slot: int) -> HealthSnapshot:
        return HealthSnapshot(
            slot=slot,
            alive=frozenset(
                v for v in self._misses if self.status(v) is NodeHealth.ALIVE
            ),
            suspects=self.suspect_nodes(),
            down=self.down_nodes(),
            rogue=self.rogue_nodes(),
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "misses": {str(v): m for v, m in self._misses.items()},
            "rogue_streak": {str(v): s for v, s in self._rogue_streak.items()},
            "rogue": sorted(self._rogue),
            "last_commands": sorted(self._last_commands),
            "last_report_slot": {
                str(v): s for v, s in self._last_report_slot.items()
            },
            "last_level": {str(v): x for v, x in self._last_level.items()},
            "last_state": {str(v): s for v, s in self._last_state.items()},
            "total_evictions": self.total_evictions,
        }

    def load_state_dict(self, state: dict) -> None:
        self._misses = {int(v): m for v, m in state["misses"].items()}
        self._rogue_streak = {
            int(v): s for v, s in state["rogue_streak"].items()
        }
        self._rogue = set(state["rogue"])
        self._last_commands = frozenset(state["last_commands"])
        self._last_report_slot = {
            int(v): s for v, s in state["last_report_slot"].items()
        }
        self._last_level = {int(v): x for v, x in state["last_level"].items()}
        self._last_state = {int(v): s for v, s in state["last_state"].items()}
        self.total_evictions = state["total_evictions"]
