"""Trace-driven charging: drive the simulator from solar traces.

The rate-based simulator assumes the nominal ``mu_r`` holds in every
slot -- the paper's daytime, stable-weather idealization.  This module
closes the gap to the testbed: a :class:`TraceDrivenChargingModel`
reads a (synthetic or recorded) solar trace and converts each slot's
actual harvest into the engine's ``charge_scale``, so simulations see
the real diurnal cycle -- fast charging at noon, slow at dusk, *none*
at night -- and weather exactly as the trace recorded it.

This is also where the paper's "working time is the daytime" assumption
becomes checkable: run a schedule across a full 24 h trace and watch
the refused activations pile up overnight unless the policy respects
daylight (:class:`DaylightGatedPolicy`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Optional

import numpy as np

from repro.energy.period import ChargingPeriod
from repro.policies.base import ActivationPolicy
from repro.sim.random_model import RandomChargingModel
from repro.solar.trace import NodeTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


class TraceDrivenChargingModel(RandomChargingModel):
    """Charge scales read off a solar trace (deterministic replay).

    Parameters
    ----------
    period:
        The nominal charging period the schedule was planned for; its
        implied nominal per-minute rate ``B / T_r`` anchors scale 1.0.
    trace:
        The node trace to replay; each simulation slot maps to
        ``slot_minutes`` of trace, starting at ``start_minute``.
    capacity:
        Battery capacity in the *trace's* energy units, used to convert
        the trace's charge rate to a fraction of nominal.
    start_minute:
        Trace minute corresponding to simulation slot 0 (e.g. 420 for a
        7:00 working-day start).
    """

    def __init__(
        self,
        period: ChargingPeriod,
        trace: NodeTrace,
        capacity: float = 50.0,
        start_minute: float = 0.0,
    ):
        super().__init__(period, arrival_rate=1.0, mean_duration=10.0, rng=0)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if start_minute < 0:
            raise ValueError(f"start_minute must be >= 0, got {start_minute}")
        self.trace = trace
        self.capacity = capacity
        self.start_minute = start_minute
        self._nominal_rate = capacity / period.recharge_time  # units/min
        self._slot_minutes = period.slot_length
        # Pre-average the trace's charge rate per simulation slot.
        minutes = np.array([s.minute for s in trace.samples])
        rates = np.array([s.charge_rate for s in trace.samples])
        self._minutes = minutes
        self._rates = rates

    def drain_scale(self, slot: int) -> float:
        return 1.0  # the active power is the mote's own, not the sun's

    def charge_scale(self, slot: int) -> float:
        lo = self.start_minute + slot * self._slot_minutes
        hi = lo + self._slot_minutes
        mask = (self._minutes >= lo) & (self._minutes < hi)
        if not mask.any():
            return 0.0  # past the end of the trace: darkness
        mean_rate = float(self._rates[mask].mean())
        return mean_rate / self._nominal_rate

    def is_daylight_slot(self, slot: int) -> bool:
        """True iff the trace shows any harvesting during the slot."""
        return self.charge_scale(slot) > 0.0


class DaylightGatedPolicy(ActivationPolicy):
    """Wraps a policy, suppressing activations outside daylight.

    The paper's working time L is the 12-hour daytime; running the same
    periodic schedule around the clock would waste the night's stored
    energy on slots that can never be refilled.  This wrapper gates the
    inner policy on the charging model's daylight indicator, keeping
    the night as a rest phase (everyone READY at dawn).
    """

    def __init__(
        self,
        inner: ActivationPolicy,
        charging_model: TraceDrivenChargingModel,
        lookahead_slots: int = 0,
    ):
        if lookahead_slots < 0:
            raise ValueError(
                f"lookahead_slots must be >= 0, got {lookahead_slots}"
            )
        self.inner = inner
        self.charging_model = charging_model
        self.lookahead_slots = lookahead_slots
        self.suppressed_slots = 0

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        # Activate only if this slot -- and the recharge lookahead, if
        # configured -- still sees sun.
        horizon = range(slot, slot + self.lookahead_slots + 1)
        if not all(self.charging_model.is_daylight_slot(s) for s in horizon):
            self.suppressed_slots += 1
            return frozenset()
        return self.inner.decide(slot, network)

    def observe(self, slot, reports) -> None:
        self.inner.observe(slot, reports)

    def reset(self) -> None:
        self.inner.reset()
        self.suppressed_slots = 0
