"""Monte-Carlo batch runs: one policy, many seeds, aggregated statistics.

Stochastic simulations (random charging, events, failures) need
replication before their numbers mean anything.  :func:`run_batch`
executes a fresh (network, policy, models) triple per seed and
aggregates the headline metrics with confidence intervals; the factory
pattern keeps every replicate independent (no state leaks between
seeds).

Replicates are independent by construction, which also makes them the
ideal worker-pool payload: ``run_batch(..., jobs=4)`` farms the seeds
across processes through :mod:`repro.runtime.pool` and aggregates in
seed order, so the result is bit-for-bit identical to the serial run.
Factories must be picklable (module-level functions, partials or
callable objects) to actually run in workers; closures degrade
gracefully to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.stats import SeriesSummary, summarize_series
from repro.policies.base import ActivationPolicy
from repro.runtime.pool import TaskTelemetry, run_tasks
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.events import PoissonEventProcess
from repro.sim.network import SensorNetwork
from repro.sim.random_model import RandomChargingModel

#: A factory receives the replicate's seed and builds a fresh component.
NetworkFactory = Callable[[int], SensorNetwork]
PolicyFactory = Callable[[int], ActivationPolicy]
ChargingFactory = Callable[[int], Optional[RandomChargingModel]]
EventsFactory = Callable[[int], Optional[PoissonEventProcess]]


@dataclass
class BatchResult:
    """Aggregated outcome of a seed batch."""

    results: List[SimulationResult]
    utility: SeriesSummary  # average slot utility across seeds
    per_target_utility: SeriesSummary
    refused: SeriesSummary
    detection_rate: Optional[SeriesSummary]  # None when no event process
    telemetry: List[TaskTelemetry] = field(default_factory=list)

    @property
    def num_replicates(self) -> int:
        return len(self.results)

    def __str__(self) -> str:
        return (
            f"BatchResult(n={self.num_replicates}, "
            f"utility={self.utility.mean:.4f}"
            f"+/-{self.utility.std:.4f})"
        )


def _run_replicate(
    task: Tuple[
        NetworkFactory,
        PolicyFactory,
        Optional[ChargingFactory],
        Optional[EventsFactory],
        int,
        int,
    ],
) -> SimulationResult:
    """One replicate, self-contained so it can run in a pool worker."""
    network_factory, policy_factory, charging_factory, events_factory, \
        num_slots, seed = task
    network = network_factory(seed)
    policy = policy_factory(seed)
    charging = charging_factory(seed) if charging_factory else None
    events = events_factory(seed) if events_factory else None
    engine = SimulationEngine(
        network, policy, charging_model=charging, event_process=events
    )
    return engine.run(num_slots)


def run_batch(
    network_factory: NetworkFactory,
    policy_factory: PolicyFactory,
    num_slots: int,
    seeds: Sequence[int] = tuple(range(10)),
    charging_factory: Optional[ChargingFactory] = None,
    events_factory: Optional[EventsFactory] = None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    auto_fallback: bool = True,
) -> BatchResult:
    """Run one replicate per seed and aggregate.

    Each factory is invoked once per seed; returning fresh objects is
    the caller's responsibility (a shared mutable network across seeds
    would silently correlate the replicates -- the whole point of the
    factory interface is making that mistake hard).

    ``jobs`` farms the replicates across that many worker processes
    (results stay in seed order, so aggregates match the serial run
    exactly); ``timeout`` bounds each replicate's wall time in the
    pool.  Factories that cannot be pickled fall back to serial
    execution -- check ``BatchResult.telemetry`` to see which path ran.
    """
    if num_slots < 0:
        raise ValueError(f"num_slots must be >= 0, got {num_slots}")
    if not seeds:
        raise ValueError("need at least one seed")
    tasks = [
        (
            network_factory,
            policy_factory,
            charging_factory,
            events_factory,
            num_slots,
            seed,
        )
        for seed in seeds
    ]
    results, telemetry = run_tasks(
        _run_replicate,
        tasks,
        jobs=jobs,
        timeout=timeout,
        auto_fallback=auto_fallback,
    )

    utilities = [r.average_slot_utility for r in results]
    per_target = [r.average_utility_per_target for r in results]
    refused = [float(r.refused_activations) for r in results]
    detection = None
    if all(r.detection is not None for r in results) and results:
        detection = summarize_series(
            [r.detection.detection_rate for r in results]
        )
    return BatchResult(
        results=results,
        utility=summarize_series(utilities),
        per_target_utility=summarize_series(per_target),
        refused=summarize_series(refused),
        detection_rate=detection,
        telemetry=telemetry,
    )
