"""The slot-stepped simulation engine.

Executes an :class:`~repro.policies.base.ActivationPolicy` on a
:class:`~repro.sim.network.SensorNetwork` for ``L`` slots with exact
per-node energy accounting, optional stochastic charging (Sec. V) and
optional event detection.  This is the "testbed" of the reproduction:
the combinatorial claims of :mod:`repro.core` (feasibility of the
greedy schedule, achieved average utility) are validated by running
them here, where a node that is not actually fully charged will refuse
its activation no matter what the schedule says.

Long runs are crash-safe: :meth:`SimulationEngine.checkpoint` captures
every piece of mutable runtime state -- clock, batteries, accumulator,
RNG streams, policy state -- as a JSON-compatible dict, and
:meth:`SimulationEngine.restore` puts an identically-constructed engine
back into it, after which :meth:`SimulationEngine.advance` continues
the run bit-for-bit where it left off (see :mod:`repro.io.checkpoint`
for the atomic on-disk format).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.energy.states import NodeState
from repro.obs import events as obs_events
from repro.obs import tracing
from repro.obs.registry import get_registry
from repro.policies.base import ActivationPolicy
from repro.sim.events import DetectionOutcome, PoissonEventProcess
from repro.sim.metrics import SlotRecord, UtilityAccumulator
from repro.sim.network import SensorNetwork
from repro.sim.node import NodeSlotReport
from repro.sim.random_model import RandomChargingModel

#: Format tag/version of :meth:`SimulationEngine.checkpoint` payloads.
ENGINE_STATE_KIND = "engine-state"
ENGINE_STATE_VERSION = 1


@dataclass
class SimulationResult:
    """Everything a run produced."""

    num_slots: int
    accumulator: UtilityAccumulator
    refused_activations: int
    node_reports: List[List[NodeSlotReport]] = field(default_factory=list)
    detection: Optional[DetectionOutcome] = None

    @property
    def total_utility(self) -> float:
        return self.accumulator.total_utility

    @property
    def average_slot_utility(self) -> float:
        return self.accumulator.average_slot_utility

    @property
    def average_utility_per_target(self) -> float:
        return self.accumulator.average_utility_per_target

    def activation_evenness(self) -> float:
        """Std/mean of per-sensor activation counts (0 = perfectly even)."""
        counts = self.accumulator.activation_counts()
        if not counts:
            return 0.0
        values = np.array(list(counts.values()), dtype=float)
        if values.mean() == 0:
            return 0.0
        return float(values.std() / values.mean())


class SimulationEngine:
    """Couples network, policy and optional stochastic models.

    Parameters
    ----------
    network, policy, charging_model, event_process, keep_node_reports:
        As before: the simulated hardware, the decision layer and the
        optional Sec. V stochastic models.
    sensing_filter:
        Optional ``(node_id, slot) -> bool`` predicate; nodes for which
        it returns False drain energy like any active node but their
        readings are discarded -- they contribute nothing to utility or
        event detection.  This is the hardware half of the stuck-active
        fault model (pass
        :meth:`~repro.sim.failures.FailurePlan.sensing_ok`).
    vectorized:
        ``None`` (default) auto-selects the struct-of-arrays fast path
        when nothing needs per-node reports: no ``charging_model`` (its
        per-node RNG draws fix the scalar call order), no
        ``keep_node_reports``, and a policy whose ``observe`` is the
        base no-op.  ``False`` forces scalar object stepping (the
        differential reference); ``True`` asserts eligibility.  Both
        paths are bit-identical -- the fast path performs the same
        float64 ops per node (see :mod:`repro.sim.soa`) and builds the
        active set in the same ascending-id order, and a
        ``sensing_filter`` is applied *after* the activity mask is
        computed, exactly like the scalar path.
    """

    def __init__(
        self,
        network: SensorNetwork,
        policy: ActivationPolicy,
        charging_model: Optional[RandomChargingModel] = None,
        event_process: Optional[PoissonEventProcess] = None,
        keep_node_reports: bool = False,
        sensing_filter: Optional[Callable[[int, int], bool]] = None,
        vectorized: Optional[bool] = None,
    ):
        self.network = network
        self.policy = policy
        self.charging_model = charging_model
        self.event_process = event_process
        self.keep_node_reports = keep_node_reports
        self.sensing_filter = sensing_filter
        eligible = (
            charging_model is None
            and not keep_node_reports
            and type(policy).observe is ActivationPolicy.observe
        )
        if vectorized is None:
            self._vectorized = eligible
        elif vectorized and not eligible:
            raise ValueError(
                "vectorized stepping needs no charging model, no node "
                "reports and a policy without an observe() override"
            )
        else:
            self._vectorized = bool(vectorized)
        self._accumulator: Optional[UtilityAccumulator] = None
        self._all_reports: List[List[NodeSlotReport]] = []
        self._refused_total = 0
        self._slots_done = 0
        # Metric handles are resolved once; per-slot work is then a
        # couple of lock-protected adds (or no-ops under REPRO_OBS=0).
        registry = get_registry()
        self._m_slots = registry.counter(
            "repro_sim_slots_total", "Simulation slots executed"
        )
        self._m_slot_seconds = registry.histogram(
            "repro_sim_slot_seconds", "Per-slot simulation step wall time"
        )
        self._m_refusals = registry.counter(
            "repro_sim_refusals_total",
            "Activations refused by undercharged nodes",
        )
        self._m_slot_utility = registry.gauge(
            "repro_sim_slot_utility",
            "Utility achieved in the most recent simulated slot",
        )

    @property
    def slots_done(self) -> int:
        """Slots executed in the current accumulation (survives restore)."""
        return self._slots_done

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, num_slots: int) -> SimulationResult:
        """Execute the policy for ``num_slots`` slots from the current
        network state, accumulating into a *fresh* result."""
        self._begin()
        return self.advance(num_slots)

    def advance(self, num_slots: int) -> SimulationResult:
        """Execute ``num_slots`` more slots, *continuing* the current
        accumulation, and return the cumulative result so far.

        Unlike :meth:`run` this never resets the accumulator, so a run
        executed as several ``advance`` calls -- or interrupted,
        checkpointed and resumed in a new process -- produces exactly
        the result an uninterrupted ``run`` would have.
        """
        if num_slots < 0:
            raise ValueError(f"num_slots must be >= 0, got {num_slots}")
        if self._accumulator is None:
            self._begin()
        with tracing.span("engine.advance", slots=num_slots):
            for _ in range(num_slots):
                self._step()
        return SimulationResult(
            num_slots=self._slots_done,
            accumulator=self._accumulator,
            refused_activations=self._refused_total,
            node_reports=self._all_reports,
            detection=(
                self.event_process.outcome
                if self.event_process is not None
                else None
            ),
        )

    def _begin(self) -> None:
        self._accumulator = UtilityAccumulator(self.network.utility)
        if self.sensing_filter is not None:
            # Filtered active sets are re-built per slot with a
            # slot-dependent predicate; equal sets need not share one
            # construction order, so the memo is not provably bit-exact.
            self._accumulator.disable_memo()
        self._all_reports = []
        self._refused_total = 0
        self._slots_done = 0

    def _step(self) -> None:
        step_start = time.perf_counter()
        slot = self.network.clock.slot
        commands = self.policy.decide(slot, self.network)

        if self._vectorized:
            # Struct-of-arrays fast path: one vectorized pass over the
            # shared NodeArrays, bit-identical to the scalar loop below.
            was_active, refused = self.network.arrays.step_all(commands)
            active_set = self.network.arrays.active_frozenset(was_active)
            reports: List[NodeSlotReport] = []
        else:
            charge_scale = 1.0
            if self.charging_model is not None:
                charge_scale = self.charging_model.charge_scale(slot)

            reports = []
            for node in self.network.nodes:
                drain_scale = 1.0
                if self.charging_model is not None and node.node_id in commands:
                    drain_scale = self.charging_model.drain_scale(slot)
                reports.append(
                    node.step(
                        slot,
                        activate=node.node_id in commands,
                        drain_scale=drain_scale,
                        charge_scale=charge_scale,
                    )
                )
            active_set = frozenset(r.node_id for r in reports if r.was_active)
            refused = sum(1 for r in reports if r.refused_activation)

        if self.sensing_filter is not None:
            # Stuck nodes burned the energy but their readings are junk.
            # Applied strictly *after* the activity mask / candidate
            # lookup, on both stepping paths, so filtered sensors still
            # drain energy exactly like unfiltered ones.
            active_set = frozenset(
                v for v in active_set if self.sensing_filter(v, slot)
            )
        self._refused_total += refused
        record = self._accumulator.record(slot, active_set, refused=refused)

        if self.event_process is not None:
            self.event_process.step(slot, active_set)

        if obs_events.sink_active():
            # Building the sorted id lists costs O(n log n) per slot at
            # fleet scale; skip it entirely when nothing is listening.
            obs_events.emit(
                "engine.slot",
                slot=slot,
                commanded=sorted(commands),
                active=sorted(active_set),
                utility=record.utility,
                refused=refused,
            )
        if not self._vectorized:
            self.policy.observe(slot, reports)
        if self.keep_node_reports:
            self._all_reports.append(reports)
        self.network.clock.advance()
        self._slots_done += 1
        self._m_slots.inc()
        if refused:
            self._m_refusals.inc(refused)
        self._m_slot_utility.set(record.utility)
        self._m_slot_seconds.observe(time.perf_counter() - step_start)

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict:
        """Capture all mutable runtime state as a JSON-compatible dict.

        The engine's *construction* (network topology, utility, policy
        wiring, stochastic-model parameters) is deliberately not
        captured -- the caller rebuilds an identical engine and then
        calls :meth:`restore`, the same contract as
        :func:`~repro.io.serialization.schedule_to_dict` shipping a
        schedule without its solver.
        """
        return {
            "kind": ENGINE_STATE_KIND,
            "version": ENGINE_STATE_VERSION,
            "clock_slot": self.network.clock.slot,
            "nodes": [node.snapshot() for node in self.network.nodes],
            "slots_done": self._slots_done,
            "refused_total": self._refused_total,
            "accumulator": (
                None
                if self._accumulator is None
                else [_record_to_dict(r) for r in self._accumulator.records]
            ),
            "node_reports": (
                [
                    [_report_to_dict(r) for r in slot_reports]
                    for slot_reports in self._all_reports
                ]
                if self.keep_node_reports
                else None
            ),
            "charging_model": (
                None
                if self.charging_model is None
                else self.charging_model.state_dict()
            ),
            "event_process": (
                None
                if self.event_process is None
                else self.event_process.state_dict()
            ),
            "policy": self.policy.state_dict(),
        }

    def restore(self, state: Dict) -> None:
        """Inverse of :meth:`checkpoint`, onto an identically-built engine."""
        kind = state.get("kind")
        if kind != ENGINE_STATE_KIND:
            raise ValueError(
                f"not an engine state (kind={kind!r}, "
                f"expected {ENGINE_STATE_KIND!r})"
            )
        version = state.get("version")
        if version != ENGINE_STATE_VERSION:
            raise ValueError(
                f"unsupported engine state version {version!r} "
                f"(supported: {ENGINE_STATE_VERSION})"
            )
        if len(state["nodes"]) != self.network.num_sensors:
            raise ValueError(
                f"checkpoint holds {len(state['nodes'])} nodes but the "
                f"network has {self.network.num_sensors}; rebuild the "
                "engine with the original configuration before restoring"
            )
        self.network.clock.seek(state["clock_slot"])
        for node, snap in zip(self.network.nodes, state["nodes"]):
            node.restore_snapshot(snap)
        self._slots_done = state["slots_done"]
        self._refused_total = state["refused_total"]
        if state["accumulator"] is None:
            self._accumulator = None
        else:
            self._accumulator = UtilityAccumulator(self.network.utility)
            if self.sensing_filter is not None:
                self._accumulator.disable_memo()
            self._accumulator.records = [
                _record_from_dict(d) for d in state["accumulator"]
            ]
        reports = state.get("node_reports")
        self._all_reports = (
            []
            if reports is None
            else [
                [_report_from_dict(r) for r in slot_reports]
                for slot_reports in reports
            ]
        )
        if self.charging_model is not None and state["charging_model"] is not None:
            self.charging_model.load_state_dict(state["charging_model"])
        if self.event_process is not None and state["event_process"] is not None:
            self.event_process.load_state_dict(state["event_process"])
        self.policy.load_state_dict(state["policy"])


# ----------------------------------------------------------------------
# Record / report (de)serialization helpers
# ----------------------------------------------------------------------


def _record_to_dict(record: SlotRecord) -> Dict:
    return {
        "slot": record.slot,
        "active_set": sorted(record.active_set),
        "utility": record.utility,
        "per_target": (
            None if record.per_target is None else record.per_target.tolist()
        ),
        "refused_activations": record.refused_activations,
    }


def _record_from_dict(data: Dict) -> SlotRecord:
    return SlotRecord(
        slot=data["slot"],
        active_set=frozenset(data["active_set"]),
        utility=data["utility"],
        per_target=(
            None
            if data["per_target"] is None
            else np.asarray(data["per_target"], dtype=float)
        ),
        refused_activations=data["refused_activations"],
    )


def _report_to_dict(report: NodeSlotReport) -> Dict:
    return {
        "node_id": report.node_id,
        "slot": report.slot,
        "was_active": report.was_active,
        "refused_activation": report.refused_activation,
        "energy_drained": report.energy_drained,
        "energy_charged": report.energy_charged,
        "state_after": report.state_after.value,
        "level_after": report.level_after,
    }


def _report_from_dict(data: Dict) -> NodeSlotReport:
    return NodeSlotReport(
        node_id=data["node_id"],
        slot=data["slot"],
        was_active=data["was_active"],
        refused_activation=data["refused_activation"],
        energy_drained=data["energy_drained"],
        energy_charged=data["energy_charged"],
        state_after=NodeState(data["state_after"]),
        level_after=data["level_after"],
    )
