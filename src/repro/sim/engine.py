"""The slot-stepped simulation engine.

Executes an :class:`~repro.policies.base.ActivationPolicy` on a
:class:`~repro.sim.network.SensorNetwork` for ``L`` slots with exact
per-node energy accounting, optional stochastic charging (Sec. V) and
optional event detection.  This is the "testbed" of the reproduction:
the combinatorial claims of :mod:`repro.core` (feasibility of the
greedy schedule, achieved average utility) are validated by running
them here, where a node that is not actually fully charged will refuse
its activation no matter what the schedule says.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.policies.base import ActivationPolicy
from repro.sim.events import DetectionOutcome, PoissonEventProcess
from repro.sim.metrics import UtilityAccumulator
from repro.sim.network import SensorNetwork
from repro.sim.node import NodeSlotReport
from repro.sim.random_model import RandomChargingModel


@dataclass
class SimulationResult:
    """Everything a run produced."""

    num_slots: int
    accumulator: UtilityAccumulator
    refused_activations: int
    node_reports: List[List[NodeSlotReport]] = field(default_factory=list)
    detection: Optional[DetectionOutcome] = None

    @property
    def total_utility(self) -> float:
        return self.accumulator.total_utility

    @property
    def average_slot_utility(self) -> float:
        return self.accumulator.average_slot_utility

    @property
    def average_utility_per_target(self) -> float:
        return self.accumulator.average_utility_per_target

    def activation_evenness(self) -> float:
        """Std/mean of per-sensor activation counts (0 = perfectly even)."""
        counts = self.accumulator.activation_counts()
        if not counts:
            return 0.0
        import numpy as np

        values = np.array(list(counts.values()), dtype=float)
        if values.mean() == 0:
            return 0.0
        return float(values.std() / values.mean())


class SimulationEngine:
    """Couples network, policy and optional stochastic models."""

    def __init__(
        self,
        network: SensorNetwork,
        policy: ActivationPolicy,
        charging_model: Optional[RandomChargingModel] = None,
        event_process: Optional[PoissonEventProcess] = None,
        keep_node_reports: bool = False,
    ):
        self.network = network
        self.policy = policy
        self.charging_model = charging_model
        self.event_process = event_process
        self.keep_node_reports = keep_node_reports

    def run(self, num_slots: int) -> SimulationResult:
        """Execute the policy for ``num_slots`` slots from the current state."""
        if num_slots < 0:
            raise ValueError(f"num_slots must be >= 0, got {num_slots}")
        accumulator = UtilityAccumulator(self.network.utility)
        all_reports: List[List[NodeSlotReport]] = []
        refused_total = 0

        for _ in range(num_slots):
            slot = self.network.clock.slot
            commands = self.policy.decide(slot, self.network)

            charge_scale = 1.0
            if self.charging_model is not None:
                charge_scale = self.charging_model.charge_scale(slot)

            reports: List[NodeSlotReport] = []
            for node in self.network.nodes:
                drain_scale = 1.0
                if self.charging_model is not None and node.node_id in commands:
                    drain_scale = self.charging_model.drain_scale(slot)
                reports.append(
                    node.step(
                        slot,
                        activate=node.node_id in commands,
                        drain_scale=drain_scale,
                        charge_scale=charge_scale,
                    )
                )

            active_set = frozenset(r.node_id for r in reports if r.was_active)
            refused = sum(1 for r in reports if r.refused_activation)
            refused_total += refused
            accumulator.record(slot, active_set, refused=refused)

            if self.event_process is not None:
                self.event_process.step(slot, active_set)

            self.policy.observe(slot, reports)
            if self.keep_node_reports:
                all_reports.append(reports)
            self.network.clock.advance()

        return SimulationResult(
            num_slots=num_slots,
            accumulator=accumulator,
            refused_activations=refused_total,
            node_reports=all_reports,
            detection=(
                self.event_process.outcome if self.event_process is not None else None
            ),
        )
