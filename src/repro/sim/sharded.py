"""Sharded multi-process simulation: partition the fleet, merge the slots.

Node dynamics are *embarrassingly parallel* under a fixed schedule: each
node's battery trajectory depends only on its own commands, never on
another node's state.  The only global computation is the per-slot
utility of the merged active set.  So the fleet is partitioned into
shards, each shard steps its own :class:`~repro.sim.engine.
SimulationEngine` (in a worker process from :mod:`repro.runtime.pool`),
and a coordinator merges the per-shard active sets slot by slot and
evaluates the utility once -- producing a :class:`~repro.sim.engine.
SimulationResult` **bit-identical** to a single-process run:

- Shards carry the *same* node dynamics (the struct-of-arrays fast
  path), so per-node levels/states/refusals match exactly.
- The merged active set is built in ascending sensor id order -- the
  engine's canonical construction -- so frozenset layout, and therefore
  every downstream iteration, matches.
- The coordinator's :class:`~repro.sim.metrics.UtilityAccumulator` is
  configured exactly like the engine's (same memo policy, same
  ``sensing_filter`` handling: the filter is applied *after* the merge,
  mirroring the engine applying it after the activity mask).

Partitioning is spatial when sensor positions are known (grid stripes
via the :mod:`repro.coverage.spatial` cell keys, so a shard's sensors
are geographically contiguous) and contiguous id ranges otherwise.

Checkpointing reuses :mod:`repro.io.checkpoint` verbatim: every shard
engine's state is written as its own atomic snapshot next to a small
manifest, and :meth:`ShardedSimulation.restore_from` rebuilds the
coordinator by re-merging the shards' recorded slots -- deterministic,
so an interrupted-and-resumed run is bit-for-bit the uninterrupted one.

Unsupported here (use the single-process engine): per-node reports,
stochastic charging models and event processes -- their RNG streams are
ordered across nodes, which sharding would reorder.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.schedule import UnrolledSchedule
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.obs.registry import get_registry
from repro.policies.base import ActivationPolicy
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.metrics import UtilityAccumulator
from repro.sim.network import SensorNetwork
from repro.utility.base import UtilityFunction

#: Manifest format for sharded checkpoints (inner payload of the
#: standard repro-checkpoint envelope).
SHARDED_STATE_KIND = "sharded-sim-state"
SHARDED_STATE_VERSION = 1


class NullUtility(UtilityFunction):
    """Zero utility: shard engines do energy accounting, not evaluation."""

    @property
    def ground_set(self) -> frozenset:
        return frozenset()

    def value(self, sensors) -> float:
        return 0.0


class ShardPolicy(ActivationPolicy):
    """Restrict a global schedule to one shard's nodes (local ids)."""

    def __init__(
        self,
        schedule,
        global_ids: Sequence[int],
    ):
        self.schedule = schedule
        self.global_ids = list(global_ids)

    def decide(self, slot, network):
        if isinstance(self.schedule, UnrolledSchedule):
            if slot >= self.schedule.total_slots:
                return frozenset()
        commanded = self.schedule.active_set(slot)
        return frozenset(
            local
            for local, sensor in enumerate(self.global_ids)
            if sensor in commanded
        )


def partition_sensors(
    num_sensors: int,
    shards: int,
    positions=None,
    cell_size: Optional[float] = None,
) -> List[List[int]]:
    """Split ``0..n-1`` into ``shards`` near-equal groups.

    With ``positions`` (a sequence of points with ``.x``/``.y``), ids
    are ordered by their spatial grid cell -- ``cell_size`` defaults to
    the region diameter over ``shards`` -- so each shard is a
    geographically contiguous stripe; without positions, contiguous id
    ranges.  Ids stay ascending *within* each shard (the merge relies
    on it), and the partition is deterministic.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, max(1, num_sensors))
    order = list(range(num_sensors))
    if positions is not None:
        if len(positions) != num_sensors:
            raise ValueError(
                f"{len(positions)} positions for {num_sensors} sensors"
            )
        if cell_size is None:
            xs = [p.x for p in positions]
            ys = [p.y for p in positions]
            extent = max(
                max(xs, default=0.0) - min(xs, default=0.0),
                max(ys, default=0.0) - min(ys, default=0.0),
            )
            cell_size = max(extent / shards, 1e-9)
        order.sort(
            key=lambda j: (
                math.floor(positions[j].x / cell_size),
                math.floor(positions[j].y / cell_size),
                j,
            )
        )
    out: List[List[int]] = []
    base, extra = divmod(num_sensors, shards)
    start = 0
    for k in range(shards):
        size = base + (1 if k < extra else 0)
        out.append(sorted(order[start : start + size]))
        start += size
    return out


# ----------------------------------------------------------------------
# Worker side (top-level: must be picklable for the process pool)
# ----------------------------------------------------------------------


def _build_shard_engine(config: Dict) -> SimulationEngine:
    """An engine over one shard's nodes (local ids, null utility)."""
    global_ids: List[int] = config["global_ids"]
    overrides = config.get("node_periods") or {}
    network = SensorNetwork(
        num_sensors=len(global_ids),
        period=config["period"],
        utility=NullUtility(),
        capacity=config.get("capacity", 1.0),
        ready_threshold=config.get("ready_threshold", 1.0),
        node_periods={
            local: overrides[sensor]
            for local, sensor in enumerate(global_ids)
            if sensor in overrides
        },
    )
    policy = ShardPolicy(config["schedule"], global_ids)
    return SimulationEngine(network, policy)


def _run_shard_task(task: Dict) -> Dict:
    """Advance one shard ``task["slots"]`` slots; return its new state.

    The returned engine checkpoint carries the shard's full accumulator
    (slot -> local active set), which is everything the coordinator
    needs for merging and for the next chunk's restore.
    """
    engine = _build_shard_engine(task["config"])
    if task["state"] is not None:
        engine.restore(task["state"])
    engine.advance(task["slots"])
    return engine.checkpoint()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class ShardedSimulation:
    """Drive ``shards`` shard engines and merge their slots.

    Parameters
    ----------
    num_sensors, period, utility:
        The global network description (what a single
        :class:`~repro.sim.network.SensorNetwork` would be built from).
    schedule:
        The global :class:`~repro.core.schedule.PeriodicSchedule` (or
        unrolled schedule) every shard executes its restriction of.
    shards:
        Partition count; clamped to the sensor count.
    positions:
        Optional sensor positions enabling spatial (grid-stripe)
        partitioning.
    sensing_filter:
        As in :class:`~repro.sim.engine.SimulationEngine`; applied by
        the coordinator *after* merging, never inside shards.
    jobs:
        Worker processes for :func:`repro.runtime.pool.run_tasks`
        (defaults to the shard count; the pool auto-falls back to
        serial when parallelism cannot win).
    """

    def __init__(
        self,
        num_sensors: int,
        period,
        utility: UtilityFunction,
        schedule,
        shards: int,
        capacity: float = 1.0,
        ready_threshold: float = 1.0,
        node_periods: Optional[Dict] = None,
        positions=None,
        sensing_filter: Optional[Callable[[int, int], bool]] = None,
        jobs: Optional[int] = None,
    ):
        self.num_sensors = num_sensors
        self.utility = utility
        self.sensing_filter = sensing_filter
        self._jobs = jobs if jobs is not None else shards
        self._partition = partition_sensors(
            num_sensors, shards, positions=positions
        )
        self._configs = [
            {
                "global_ids": ids,
                "period": period,
                "schedule": schedule,
                "capacity": capacity,
                "ready_threshold": ready_threshold,
                "node_periods": node_periods,
            }
            for ids in self._partition
        ]
        self._states: List[Optional[Dict]] = [None] * len(self._partition)
        self._merged_slots = 0
        self._accumulator = UtilityAccumulator(utility)
        if sensing_filter is not None:
            # Same reasoning as the engine: filtered sets do not share
            # one construction order, so the memo is not provably exact.
            self._accumulator.disable_memo()
        self._refused_total = 0
        registry = get_registry()
        registry.gauge(
            "repro_sim_shard_count",
            "Shards in the most recent sharded simulation",
        ).set(len(self._partition))
        self._m_shard_slots = registry.counter(
            "repro_sim_shard_slots_total",
            "Shard-slots executed by sharded simulations",
        )
        self._m_merge_seconds = registry.histogram(
            "repro_sim_shard_merge_seconds",
            "Wall time merging per-shard slot records",
        )
        self._m_checkpoints = registry.counter(
            "repro_sim_shard_checkpoints_total",
            "Per-shard partition snapshots written",
        )

    @property
    def num_shards(self) -> int:
        return len(self._partition)

    @property
    def slots_done(self) -> int:
        return self._merged_slots

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def advance(self, num_slots: int) -> SimulationResult:
        """Step every shard ``num_slots`` slots, merge, return the
        cumulative result (the single-engine ``advance`` contract)."""
        if num_slots < 0:
            raise ValueError(f"num_slots must be >= 0, got {num_slots}")
        if num_slots > 0:
            from repro.runtime.pool import run_tasks

            tasks = [
                {"config": config, "state": state, "slots": num_slots}
                for config, state in zip(self._configs, self._states)
            ]
            results, _telemetry = run_tasks(
                _run_shard_task, tasks, jobs=self._jobs
            )
            self._states = list(results)
            self._m_shard_slots.inc(num_slots * self.num_shards)
            self._merge()
        return self.result()

    def run(self, num_slots: int) -> SimulationResult:
        """Fresh run: reset all shard and coordinator state first."""
        self._states = [None] * self.num_shards
        self._merged_slots = 0
        self._accumulator = UtilityAccumulator(self.utility)
        if self.sensing_filter is not None:
            self._accumulator.disable_memo()
        self._refused_total = 0
        return self.advance(num_slots)

    def result(self) -> SimulationResult:
        return SimulationResult(
            num_slots=self._merged_slots,
            accumulator=self._accumulator,
            refused_activations=self._refused_total,
            node_reports=[],
            detection=None,
        )

    def _merge(self) -> None:
        """Fold newly-recorded shard slots into the global accumulator."""
        start = time.perf_counter()
        per_shard = [
            state["accumulator"] or [] for state in self._states  # type: ignore[index]
        ]
        total = min(len(records) for records in per_shard)
        for s in range(self._merged_slots, total):
            merged: List[int] = []
            refused = 0
            slot = None
            for shard, records in enumerate(per_shard):
                record = records[s]
                slot = record["slot"] if slot is None else slot
                ids = self._partition[shard]
                merged.extend(ids[local] for local in record["active_set"])
                refused += record["refused_activations"]
            merged.sort()
            active_set = frozenset(merged)
            if self.sensing_filter is not None:
                active_set = frozenset(
                    v for v in active_set if self.sensing_filter(v, slot)
                )
            self._refused_total += refused
            self._accumulator.record(slot, active_set, refused=refused)
            self._merged_slots += 1
        self._m_merge_seconds.observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Checkpoint / resume (per-shard partition snapshots)
    # ------------------------------------------------------------------

    @staticmethod
    def shard_path(path: str, shard: int) -> str:
        return f"{path}.shard{shard}"

    def checkpoint(self, path: str, config: Optional[Dict] = None) -> None:
        """Write the manifest at ``path`` and one snapshot per shard.

        Each file goes through :func:`repro.io.checkpoint.
        save_checkpoint` (atomic rename), so a crash mid-checkpoint
        leaves the previous complete generation intact.
        """
        if any(state is None for state in self._states):
            raise ValueError("nothing to checkpoint: run() first")
        for shard, state in enumerate(self._states):
            save_checkpoint(state, self.shard_path(path, shard))
            self._m_checkpoints.inc()
        manifest = {
            "kind": SHARDED_STATE_KIND,
            "version": SHARDED_STATE_VERSION,
            "shards": self.num_shards,
            "slots_done": self._merged_slots,
        }
        save_checkpoint(manifest, path, config=config)

    def restore_from(self, path: str) -> None:
        """Load every shard snapshot and re-merge the recorded slots.

        The coordinator's accumulator is rebuilt by replaying the merge
        from slot 0 -- a deterministic recomputation, so the resumed
        run is bit-for-bit the uninterrupted one.
        """
        manifest, _config = load_checkpoint(path)
        kind = manifest.get("kind")
        if kind != SHARDED_STATE_KIND:
            raise ValueError(
                f"not a sharded-sim manifest (kind={kind!r}, "
                f"expected {SHARDED_STATE_KIND!r})"
            )
        if manifest.get("shards") != self.num_shards:
            raise ValueError(
                f"manifest holds {manifest.get('shards')} shards but this "
                f"simulation has {self.num_shards}; rebuild with the "
                "original configuration before restoring"
            )
        states = []
        for shard in range(self.num_shards):
            state, _ = load_checkpoint(self.shard_path(path, shard))
            states.append(state)
        self._states = states
        self._merged_slots = 0
        self._accumulator = UtilityAccumulator(self.utility)
        if self.sensing_filter is not None:
            self._accumulator.disable_memo()
        self._refused_total = 0
        self._merge()
        if self._merged_slots != manifest.get("slots_done"):
            raise ValueError(
                f"shard snapshots replay to {self._merged_slots} slots "
                f"but the manifest says {manifest.get('slots_done')}"
            )
