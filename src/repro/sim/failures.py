"""Failure injection: node deaths, outages and command loss.

The paper's testbed implicitly tolerates real-world failures (motes
crash, radio commands get lost); the reproduction makes them explicit
and injectable so robustness can be measured:

- **permanent death**: a node stops responding at a given slot and
  never comes back (hardware failure, battery damage);
- **transient outage**: a node ignores commands during an interval
  (reboot, local interference);
- **command loss**: each activation command is independently lost with
  probability ``command_loss``.

Failures are applied as a policy wrapper
(:class:`FailureInjectedPolicy`): commands to failed nodes are dropped
before the hardware layer sees them, so a dead node simply never
activates -- exactly how a lost radio command behaves on a real
deployment.  The underlying policy is unaware, which lets experiments
measure how gracefully a *schedule planned for a healthy network*
degrades (the coverage redundancy of submodular utilities is the
mitigation the paper's model implies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.coverage.deployment import RngLike, make_rng
from repro.policies.base import ActivationPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


@dataclass
class FailurePlan:
    """Deterministic part of a failure scenario."""

    #: node id -> slot at which it dies permanently.
    deaths: Dict[int, int] = field(default_factory=dict)
    #: node id -> list of (start, end) outage intervals, end exclusive.
    outages: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    def is_down(self, node_id: int, slot: int) -> bool:
        death = self.deaths.get(node_id)
        if death is not None and slot >= death:
            return True
        for start, end in self.outages.get(node_id, ()):
            if start <= slot < end:
                return True
        return False

    @classmethod
    def random_deaths(
        cls,
        num_sensors: int,
        death_probability: float,
        horizon: int,
        rng: RngLike = None,
    ) -> "FailurePlan":
        """Each node independently dies w.p. ``death_probability``, at a
        uniform random slot within the horizon."""
        if not 0.0 <= death_probability <= 1.0:
            raise ValueError(
                f"death probability must be in [0, 1], got {death_probability}"
            )
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        generator = make_rng(rng)
        deaths = {
            v: int(generator.integers(horizon))
            for v in range(num_sensors)
            if generator.random() < death_probability
        }
        return cls(deaths=deaths)


class FailureInjectedPolicy(ActivationPolicy):
    """Wraps a policy, dropping commands per a failure scenario.

    Parameters
    ----------
    inner:
        The policy being subjected to failures.
    plan:
        Deterministic deaths/outages.
    command_loss:
        Per-(node, slot) independent probability that an activation
        command is lost in transit.
    """

    def __init__(
        self,
        inner: ActivationPolicy,
        plan: Optional[FailurePlan] = None,
        command_loss: float = 0.0,
        rng: RngLike = None,
    ):
        if not 0.0 <= command_loss <= 1.0:
            raise ValueError(
                f"command loss must be in [0, 1], got {command_loss}"
            )
        self.inner = inner
        self.plan = plan or FailurePlan()
        self.command_loss = command_loss
        self._rng = make_rng(rng)
        self.dropped_commands = 0

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        commands = self.inner.decide(slot, network)
        surviving = set()
        for node_id in commands:
            if self.plan.is_down(node_id, slot):
                self.dropped_commands += 1
                continue
            if self.command_loss > 0.0 and self._rng.random() < self.command_loss:
                self.dropped_commands += 1
                continue
            surviving.add(node_id)
        return frozenset(surviving)

    def observe(self, slot, reports) -> None:
        self.inner.observe(slot, reports)

    def reset(self) -> None:
        self.inner.reset()
        self.dropped_commands = 0
