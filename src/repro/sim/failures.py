"""Failure injection: node deaths, outages, stuck actuators and command loss.

The paper's testbed implicitly tolerates real-world failures (motes
crash, radio commands get lost); the reproduction makes them explicit
and injectable so robustness can be measured:

- **permanent death**: a node stops responding at a given slot and
  never comes back (hardware failure, battery damage);
- **transient outage**: a node ignores commands during an interval
  (reboot, local interference); :meth:`FailurePlan.random_outages`
  samples independent per-node outages and
  :meth:`FailurePlan.regional_outage` takes out *every* node inside a
  disk for the same interval (correlated, weather-style: a storm cell
  or shadowing front covers a region, not a single mote);
- **stuck-active**: from a given slot the node's actuator sticks ON --
  it drains energy every slot it has charge but its readings are
  garbage, contributing nothing to coverage (pass
  :meth:`FailurePlan.sensing_ok` as the engine's ``sensing_filter``);
- **command loss**: each activation command is independently lost with
  probability ``command_loss``.

Failures are applied as a policy wrapper
(:class:`FailureInjectedPolicy`): commands to failed nodes are dropped
before the hardware layer sees them, so a dead node simply never
activates -- exactly how a lost radio command behaves on a real
deployment.  Symmetrically, a down node's *report* never reaches the
base station: the wrapper filters the per-slot report stream before
forwarding it to the inner policy, which is what makes report-driven
failure detection (:class:`~repro.sim.health.HealthMonitor`) honest --
the inner policy only ever sees what a real radio would deliver, never
the :class:`FailurePlan` itself.

The wrapped policy may be oblivious (measuring how gracefully a
schedule planned for a healthy network degrades -- the coverage
redundancy of submodular utilities is the mitigation the paper's model
implies) or reactive (a
:class:`~repro.policies.self_healing.SelfHealingPolicy` that detects
the losses and re-plans around them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.coverage.deployment import RngLike, make_rng
from repro.policies.base import ActivationPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SensorNetwork


def _xy(position) -> Tuple[float, float]:
    """Coerce a Point-like or (x, y) pair into plain coordinates."""
    if hasattr(position, "x") and hasattr(position, "y"):
        return float(position.x), float(position.y)
    x, y = position
    return float(x), float(y)


@dataclass
class FailurePlan:
    """Deterministic part of a failure scenario."""

    #: node id -> slot at which it dies permanently.
    deaths: Dict[int, int] = field(default_factory=dict)
    #: node id -> list of (start, end) outage intervals, end exclusive.
    outages: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    #: node id -> slot from which its actuator sticks ON (drains, no sensing).
    stuck_active: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node_id, slot in self.deaths.items():
            if slot < 0:
                raise ValueError(
                    f"death slot must be >= 0, got {slot} for node {node_id}"
                )
        for node_id, intervals in self.outages.items():
            for start, end in intervals:
                if start < 0:
                    raise ValueError(
                        f"outage start must be >= 0, got {start} for node {node_id}"
                    )
                if end <= start:
                    raise ValueError(
                        f"outage interval must satisfy start < end, got "
                        f"({start}, {end}) for node {node_id}"
                    )
        for node_id, slot in self.stuck_active.items():
            if slot < 0:
                raise ValueError(
                    f"stuck-active slot must be >= 0, got {slot} for node {node_id}"
                )

    def is_down(self, node_id: int, slot: int) -> bool:
        """True iff the node's radio is unreachable at ``slot``."""
        death = self.deaths.get(node_id)
        if death is not None and slot >= death:
            return True
        for start, end in self.outages.get(node_id, ()):
            if start <= slot < end:
                return True
        return False

    def is_stuck(self, node_id: int, slot: int) -> bool:
        """True iff the node's actuator is stuck ON at ``slot``."""
        stuck = self.stuck_active.get(node_id)
        return stuck is not None and slot >= stuck

    def sensing_ok(self, node_id: int, slot: int) -> bool:
        """Engine ``sensing_filter``: stuck nodes produce garbage readings."""
        return not self.is_stuck(node_id, slot)

    @property
    def is_empty(self) -> bool:
        return not (self.deaths or self.outages or self.stuck_active)

    def merged(self, other: "FailurePlan") -> "FailurePlan":
        """Union of two scenarios (earliest death/stuck slot wins)."""
        deaths = dict(self.deaths)
        for node_id, slot in other.deaths.items():
            deaths[node_id] = min(slot, deaths.get(node_id, slot))
        outages: Dict[int, List[Tuple[int, int]]] = {
            v: list(intervals) for v, intervals in self.outages.items()
        }
        for node_id, intervals in other.outages.items():
            outages.setdefault(node_id, []).extend(intervals)
        stuck = dict(self.stuck_active)
        for node_id, slot in other.stuck_active.items():
            stuck[node_id] = min(slot, stuck.get(node_id, slot))
        return FailurePlan(deaths=deaths, outages=outages, stuck_active=stuck)

    @classmethod
    def random_deaths(
        cls,
        num_sensors: int,
        death_probability: float,
        horizon: int,
        rng: RngLike = None,
    ) -> "FailurePlan":
        """Each node independently dies w.p. ``death_probability``, at a
        uniform random slot within the horizon."""
        if not 0.0 <= death_probability <= 1.0:
            raise ValueError(
                f"death probability must be in [0, 1], got {death_probability}"
            )
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        generator = make_rng(rng)
        deaths = {
            v: int(generator.integers(horizon))
            for v in range(num_sensors)
            if generator.random() < death_probability
        }
        return cls(deaths=deaths)

    @classmethod
    def random_outages(
        cls,
        num_sensors: int,
        outage_probability: float,
        horizon: int,
        mean_duration: float = 4.0,
        rng: RngLike = None,
    ) -> "FailurePlan":
        """Each node independently suffers one transient outage w.p.
        ``outage_probability``: start uniform in the horizon, duration
        exponential with mean ``mean_duration`` slots (at least 1)."""
        if not 0.0 <= outage_probability <= 1.0:
            raise ValueError(
                f"outage probability must be in [0, 1], got {outage_probability}"
            )
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if mean_duration <= 0:
            raise ValueError(
                f"mean duration must be positive, got {mean_duration}"
            )
        generator = make_rng(rng)
        outages: Dict[int, List[Tuple[int, int]]] = {}
        for v in range(num_sensors):
            if generator.random() >= outage_probability:
                continue
            start = int(generator.integers(horizon))
            duration = max(1, round(float(generator.exponential(mean_duration))))
            outages[v] = [(start, start + duration)]
        return cls(outages=outages)

    @classmethod
    def regional_outage(
        cls,
        positions: Sequence,
        center,
        radius: float,
        start: int,
        end: int,
    ) -> "FailurePlan":
        """Correlated outage: every node within ``radius`` of ``center``
        is down during ``[start, end)`` -- a storm cell or shadowing
        front takes out a whole region at once, the failure mode
        independent per-node models cannot express.

        Parameters
        ----------
        positions:
            Node positions indexed by node id -- ``Point``-likes with
            ``.x``/``.y`` (e.g. ``Deployment.sensors``) or (x, y) pairs.
        center, radius:
            The affected disk.
        start, end:
            The outage interval in slots, end exclusive.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        cx, cy = _xy(center)
        outages: Dict[int, List[Tuple[int, int]]] = {}
        for node_id, position in enumerate(positions):
            x, y = _xy(position)
            if math.hypot(x - cx, y - cy) <= radius:
                outages[node_id] = [(start, end)]
        return cls(outages=outages)


class FailureInjectedPolicy(ActivationPolicy):
    """Wraps a policy, dropping commands and reports per a failure scenario.

    Parameters
    ----------
    inner:
        The policy being subjected to failures.
    plan:
        Deterministic deaths/outages/stuck actuators.
    command_loss:
        Per-(node, slot) independent probability that an activation
        command is lost in transit.

    Besides dropping commands to down nodes, the wrapper (a) forces
    stuck-active nodes ON so they drain exactly as a jammed actuator
    would, and (b) removes down nodes' reports before they reach the
    inner policy -- a dead radio neither receives commands nor delivers
    telemetry, so report-driven detection sees exactly what a real base
    station would.
    """

    def __init__(
        self,
        inner: ActivationPolicy,
        plan: Optional[FailurePlan] = None,
        command_loss: float = 0.0,
        rng: RngLike = None,
    ):
        if not 0.0 <= command_loss <= 1.0:
            raise ValueError(
                f"command loss must be in [0, 1], got {command_loss}"
            )
        self.inner = inner
        self.plan = plan or FailurePlan()
        self.command_loss = command_loss
        self._rng = make_rng(rng)
        # Snapshot the freshly-seeded stream so reset() can rewind it:
        # repeated runs of the same engine draw identical loss patterns.
        self._initial_rng_state = self._rng.bit_generator.state
        self.dropped_commands = 0

    def decide(self, slot: int, network: "SensorNetwork") -> FrozenSet[int]:
        commands = self.inner.decide(slot, network)
        surviving = set()
        for node_id in commands:
            if self.plan.is_down(node_id, slot):
                self.dropped_commands += 1
                continue
            if self.command_loss > 0.0 and self._rng.random() < self.command_loss:
                self.dropped_commands += 1
                continue
            surviving.add(node_id)
        # A stuck actuator runs regardless of what anyone commanded.
        for node_id, stuck_slot in self.plan.stuck_active.items():
            if slot >= stuck_slot and not self.plan.is_down(node_id, slot):
                surviving.add(node_id)
        return frozenset(surviving)

    def observe(self, slot, reports) -> None:
        if self.plan.deaths or self.plan.outages:
            reports = [
                r for r in reports if not self.plan.is_down(r.node_id, slot)
            ]
        self.inner.observe(slot, reports)

    def reset(self) -> None:
        self.inner.reset()
        self._rng.bit_generator.state = self._initial_rng_state
        self.dropped_commands = 0

    def state_dict(self) -> dict:
        return {
            "rng_state": self._rng.bit_generator.state,
            "dropped_commands": self.dropped_commands,
            "inner": self.inner.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng_state"]
        self.dropped_commands = state["dropped_commands"]
        self.inner.load_state_dict(state["inner"])
