"""The random charging model of Sec. V.

The paper's discussion relaxes the fixed-rate model in two ways:

- **Random discharging**: a node only drains while it is monitoring an
  event; events arrive Poisson with rate ``lambda_a`` (per slot) and
  last exponential time with mean ``lambda_d`` (slots).  The long-run
  busy fraction is ``u = lambda_a * lambda_d`` (for u < 1), so the mean
  wall-clock discharging time stretches to ``T_d / u`` -- the paper's
  ``mean discharging time = T_d / (lambda_a * lambda_d)`` (written with
  the utilization in the denominator).
- **Random recharging**: the recharge time ``T_r`` is itself a random
  variable, normally distributed around its mean (weather variation
  within a day).

The effective ratio ``rho' = mean(T_r) / mean(T_d)`` replaces ``rho``
in the LP-based solution (the paper notes extending the *greedy* scheme
to this model is non-trivial and leaves it as future work -- we follow
suit and expose rho' for the LP path, plus simulation support to
measure any policy under the random model).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.coverage.deployment import RngLike, make_rng
from repro.energy.period import ChargingPeriod, normalize_ratio


def effective_ratio(
    arrival_rate: float,
    mean_duration: float,
    period: ChargingPeriod,
) -> float:
    """``rho' = mean(T_r) / mean(T_d)`` under the Sec. V event model.

    The busy fraction ``u = min(1, arrival_rate * mean_duration)``
    stretches the mean discharge time to ``T_d / u``; the recharge time
    keeps its mean.  With u = 1 (saturated sensing) this degenerates to
    the deterministic ``rho``.
    """
    if arrival_rate < 0 or mean_duration <= 0:
        raise ValueError("need arrival_rate >= 0 and mean_duration > 0")
    utilization = min(1.0, arrival_rate * mean_duration)
    if utilization == 0:
        return float("inf")  # never drains: recharge dominates entirely
    mean_discharge = period.discharge_time / utilization
    return period.recharge_time / mean_discharge


def snapped_effective_period(
    arrival_rate: float,
    mean_duration: float,
    period: ChargingPeriod,
) -> ChargingPeriod:
    """A :class:`ChargingPeriod` whose rho is rho' snapped to integrality.

    This is what the LP-based solution consumes under the random model
    ("we can use the new defined ratio rho' in the linear programming
    based solution").
    """
    rho_prime = effective_ratio(arrival_rate, mean_duration, period)
    if rho_prime == float("inf"):
        raise ValueError("zero utilization: no discharging ever happens")
    if rho_prime >= 1:
        snapped = float(max(1, round(rho_prime)))
    else:
        snapped = normalize_ratio(1.0 / max(1, round(1.0 / rho_prime)))
    return ChargingPeriod.from_ratio(snapped, discharge_time=period.discharge_time)


class RandomChargingModel:
    """Per-slot stochastic drain/charge scales for the simulator.

    ``drain_scale(slot)`` samples the busy fraction of the slot from the
    event model: ``N ~ Poisson(lambda_a)`` arrivals per slot, each with
    an ``Exp(lambda_d)`` duration; events outlasting the slot carry
    over into following slots, so the long-run mean busy fraction
    approaches the utilization ``lambda_a * lambda_d`` (busy times are
    summed and capped at the slot length -- exact at low utilization,
    a mild overcount of overlap near saturation).  The node drains
    only while busy.  ``charge_scale(slot)`` samples a recharge
    time ``T_r' ~ Normal(T_r, sigma_r)`` (truncated at a small positive
    floor) once per charging period and returns ``T_r / T_r'`` so that
    the expected recharge duration matches the sampled one.
    """

    def __init__(
        self,
        period: ChargingPeriod,
        arrival_rate: float,
        mean_duration: float,
        recharge_std: float = 0.0,
        rng: RngLike = None,
    ):
        if arrival_rate < 0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
        if mean_duration <= 0:
            raise ValueError(f"mean duration must be > 0, got {mean_duration}")
        if recharge_std < 0:
            raise ValueError(f"recharge std must be >= 0, got {recharge_std}")
        self.period = period
        self.arrival_rate = arrival_rate
        self.mean_duration = mean_duration
        self.recharge_std = recharge_std
        self._rng = make_rng(rng)
        self._current_charge_scale = 1.0
        self._charge_scale_period: Optional[int] = None
        self._ongoing: list = []  # remaining durations of carried-over events

    def drain_scale(self, slot: int) -> float:
        """Busy fraction of the slot in [0, 1], with event carry-over."""
        busy = 0.0
        # Events still in progress from previous slots.
        still_ongoing: list = []
        for remaining in self._ongoing:
            busy += min(remaining, 1.0)
            if remaining > 1.0:
                still_ongoing.append(remaining - 1.0)
        # New arrivals this slot.
        arrivals = int(self._rng.poisson(self.arrival_rate))
        for _ in range(arrivals):
            start = float(self._rng.random())
            duration = float(self._rng.exponential(self.mean_duration))
            slot_part = min(duration, 1.0 - start)
            busy += slot_part
            if duration > 1.0 - start:
                still_ongoing.append(duration - (1.0 - start))
        self._ongoing = still_ongoing
        return min(1.0, busy)

    def charge_scale(self, slot: int) -> float:
        """Recharge-rate multiplier, redrawn once per charging period."""
        if self.recharge_std == 0.0:
            return 1.0
        period_index = slot // self.period.slots_per_period
        if period_index != self._charge_scale_period:
            nominal = self.period.recharge_time
            floor = 0.1 * nominal
            sampled = float(
                self._rng.normal(loc=nominal, scale=self.recharge_std)
            )
            sampled = max(floor, sampled)
            self._current_charge_scale = nominal / sampled
            self._charge_scale_period = period_index
        return self._current_charge_scale

    def scales(self, slot: int) -> Tuple[float, float]:
        """(drain_scale, charge_scale) for the slot."""
        return self.drain_scale(slot), self.charge_scale(slot)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything a resumed run needs to draw identical scales."""
        return {
            "rng_state": self._rng.bit_generator.state,
            "ongoing": list(self._ongoing),
            "current_charge_scale": self._current_charge_scale,
            "charge_scale_period": self._charge_scale_period,
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng_state"]
        self._ongoing = list(state["ongoing"])
        self._current_charge_scale = state["current_charge_scale"]
        self._charge_scale_period = state["charge_scale_period"]
