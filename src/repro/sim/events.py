"""Event process for detection experiments (paper Sec. V).

Sec. V considers events arriving as a Poisson process with rate
``lambda_a`` whose durations are exponential with mean ``lambda_d``.
We implement the process per target: events arrive at each target,
last for their sampled duration, and are *detected* if, during any slot
overlapping the event, some active sensor covering the target fires
(each active covering sensor detects independently with its detection
probability per slot).

This is the machinery behind "utility = probability of event
detection": the empirical detection rate measured here should converge
to the scheduled detection utility, which the integration tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.coverage.deployment import RngLike, make_rng


@dataclass(frozen=True)
class Event:
    """One event at a target."""

    target: int
    start: float  # in slots (fractional allowed)
    duration: float  # in slots

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps_slot(self, slot: int) -> bool:
        """True iff the event is in progress during [slot, slot+1)."""
        return self.start < slot + 1 and self.end > slot


@dataclass
class DetectionOutcome:
    """Aggregated detection statistics over a simulation run."""

    events_total: int = 0
    events_detected: int = 0
    per_target_total: Dict[int, int] = field(default_factory=dict)
    per_target_detected: Dict[int, int] = field(default_factory=dict)

    @property
    def detection_rate(self) -> float:
        if self.events_total == 0:
            return 0.0
        return self.events_detected / self.events_total

    def target_rate(self, target: int) -> float:
        total = self.per_target_total.get(target, 0)
        if total == 0:
            return 0.0
        return self.per_target_detected.get(target, 0) / total


class PoissonEventProcess:
    """Poisson arrivals / exponential durations per target (Sec. V).

    Parameters
    ----------
    num_targets:
        Targets are ``0..m-1``.
    arrival_rate:
        ``lambda_a``: expected events per slot per target.
    mean_duration:
        ``lambda_d``: mean event duration in slots.
    detection_probabilities:
        ``detection_probabilities[target][sensor] = p``: per-slot
        detection probability of each covering sensor; sensors absent
        cannot detect the target.
    """

    def __init__(
        self,
        num_targets: int,
        arrival_rate: float,
        mean_duration: float,
        detection_probabilities: Sequence[Mapping[int, float]],
        rng: RngLike = None,
    ):
        if num_targets < 0:
            raise ValueError(f"num_targets must be >= 0, got {num_targets}")
        if arrival_rate < 0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
        if mean_duration <= 0:
            raise ValueError(f"mean duration must be > 0, got {mean_duration}")
        if len(detection_probabilities) != num_targets:
            raise ValueError(
                f"need {num_targets} detection maps, got "
                f"{len(detection_probabilities)}"
            )
        self.num_targets = num_targets
        self.arrival_rate = arrival_rate
        self.mean_duration = mean_duration
        self._detection = [dict(m) for m in detection_probabilities]
        self._rng = make_rng(rng)
        self._pending: List[Event] = []
        self.outcome = DetectionOutcome()
        self._detected_flags: Dict[int, bool] = {}
        self._next_event_id = 0
        self._event_ids: Dict[int, Event] = {}

    def generate_slot_arrivals(self, slot: int) -> List[Event]:
        """Sample this slot's new events for every target."""
        new_events: List[Event] = []
        for target in range(self.num_targets):
            count = int(self._rng.poisson(self.arrival_rate))
            for _ in range(count):
                start = slot + float(self._rng.random())
                duration = float(self._rng.exponential(self.mean_duration))
                new_events.append(Event(target=target, start=start, duration=duration))
        return new_events

    def step(self, slot: int, active_set: FrozenSet[int]) -> List[Event]:
        """Advance one slot: arrivals, detection attempts, expirations.

        Returns the events that *expired undetected* this slot (useful
        for debugging coverage gaps).
        """
        for event in self.generate_slot_arrivals(slot):
            event_id = self._next_event_id
            self._next_event_id += 1
            self._event_ids[event_id] = event
            self._detected_flags[event_id] = False
            self.outcome.events_total += 1
            self.outcome.per_target_total[event.target] = (
                self.outcome.per_target_total.get(event.target, 0) + 1
            )

        # Detection attempts for every live, undetected event.
        for event_id, event in self._event_ids.items():
            if self._detected_flags[event_id] or not event.overlaps_slot(slot):
                continue
            probs = self._detection[event.target]
            for sensor in active_set:
                p = probs.get(sensor)
                if p and self._rng.random() < p:
                    self._detected_flags[event_id] = True
                    self.outcome.events_detected += 1
                    self.outcome.per_target_detected[event.target] = (
                        self.outcome.per_target_detected.get(event.target, 0) + 1
                    )
                    break

        # Expire events that ended by the end of this slot.
        return self._expire(slot)

    def _expire(self, slot: int) -> List[Event]:
        missed: List[Event] = []
        still_alive: Dict[int, Event] = {}
        for event_id, event in self._event_ids.items():
            if event.end <= slot + 1:
                if not self._detected_flags[event_id]:
                    missed.append(event)
                del self._detected_flags[event_id]
            else:
                still_alive[event_id] = event
        self._event_ids = still_alive
        return missed

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything a resumed run needs: RNG, live events, tallies."""
        return {
            "rng_state": self._rng.bit_generator.state,
            "next_event_id": self._next_event_id,
            "events": {
                str(event_id): {
                    "target": event.target,
                    "start": event.start,
                    "duration": event.duration,
                }
                for event_id, event in self._event_ids.items()
            },
            "detected_flags": {
                str(event_id): flag
                for event_id, flag in self._detected_flags.items()
            },
            "outcome": {
                "events_total": self.outcome.events_total,
                "events_detected": self.outcome.events_detected,
                "per_target_total": {
                    str(t): c for t, c in self.outcome.per_target_total.items()
                },
                "per_target_detected": {
                    str(t): c
                    for t, c in self.outcome.per_target_detected.items()
                },
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng_state"]
        self._next_event_id = state["next_event_id"]
        self._event_ids = {
            int(event_id): Event(
                target=payload["target"],
                start=payload["start"],
                duration=payload["duration"],
            )
            for event_id, payload in state["events"].items()
        }
        self._detected_flags = {
            int(event_id): flag
            for event_id, flag in state["detected_flags"].items()
        }
        outcome = state["outcome"]
        self.outcome = DetectionOutcome(
            events_total=outcome["events_total"],
            events_detected=outcome["events_detected"],
            per_target_total={
                int(t): c for t, c in outcome["per_target_total"].items()
            },
            per_target_detected={
                int(t): c for t, c in outcome["per_target_detected"].items()
            },
        )
