"""One simulated sensor node: battery + state machine + slot stepping.

Implements the lifecycle of Sec. II-B faithfully:

- a node activates only from READY (fully charged by default -- "a node
  can be activated only if it is fully charged");
- while ACTIVE it drains at ``mu_d`` and drops to PASSIVE the moment
  the battery empties;
- while PASSIVE it recharges at ``mu_r`` and becomes READY at full;
- READY holds its energy (the paper treats the periodic wake-up drain
  as negligible).

The *partially recharged activation* extension (the paper's Sec. VIII
future work) is supported via ``ready_threshold``: a node becomes READY
once its state of charge reaches the threshold instead of 1.0, and an
activation then drains whatever charge it has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.battery import Battery
from repro.energy.period import ChargingPeriod
from repro.energy.states import NodeState, SensorStateMachine


@dataclass
class NodeSlotReport:
    """What one node did during one slot."""

    node_id: int
    slot: int
    was_active: bool
    refused_activation: bool
    energy_drained: float
    energy_charged: float
    state_after: NodeState
    level_after: float


class SimulatedNode:
    """A rechargeable sensor node stepping through slots.

    Parameters
    ----------
    node_id:
        The sensor id used by schedules and utilities.
    period:
        The charging period; per-slot drain/charge amounts are derived
        from it so that ``T_d``/``T_r`` are honoured exactly in the
        normalized slot system.
    capacity:
        Battery capacity ``B`` (energy units; default 1.0, the
        normalized battery).
    ready_threshold:
        State-of-charge (0..1] at which a PASSIVE node becomes READY.
        1.0 is the paper's full-charge rule; lower values enable the
        Sec. VIII partial-charge extension.
    slot_minutes:
        Wall-clock slot length used to convert T_d/T_r into per-slot
        energy amounts.  Defaults to the period's own normalized slot;
        heterogeneous networks pass the shared simulation slot so nodes
        with different periods drain/charge at their own rates on the
        common grid.
    """

    def __init__(
        self,
        node_id: int,
        period: ChargingPeriod,
        capacity: float = 1.0,
        ready_threshold: float = 1.0,
        slot_minutes: float | None = None,
    ):
        if not 0.0 < ready_threshold <= 1.0:
            raise ValueError(
                f"ready_threshold must be in (0, 1], got {ready_threshold}"
            )
        self.node_id = node_id
        self.period = period
        self.battery = Battery(capacity)
        self.machine = SensorStateMachine(NodeState.READY)
        self.ready_threshold = ready_threshold
        slot = period.slot_length if slot_minutes is None else slot_minutes
        if slot <= 0:
            raise ValueError(f"slot length must be positive, got {slot}")
        # Energy per slot implied by the normalized-slot system.
        self._drain_per_slot = capacity * slot / period.discharge_time
        self._charge_per_slot = capacity * slot / period.recharge_time
        self.refused_activations = 0
        self.completed_activations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> NodeState:
        return self.machine.state

    @property
    def is_active(self) -> bool:
        return self.machine.is_active

    @property
    def can_activate(self) -> bool:
        """True iff an activation command this slot would be honoured."""
        return self.machine.is_ready

    @property
    def drain_per_slot(self) -> float:
        return self._drain_per_slot

    @property
    def charge_per_slot(self) -> float:
        return self._charge_per_slot

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(
        self,
        slot: int,
        activate: bool,
        drain_scale: float = 1.0,
        charge_scale: float = 1.0,
    ) -> NodeSlotReport:
        """Advance the node through one slot.

        Parameters
        ----------
        activate:
            The policy's command: should this node sense during the slot?
            Honoured only from READY; an ACTIVE node keeps running when
            commanded on, and parks (ACTIVE -> READY, retaining charge)
            when commanded off.
        drain_scale / charge_scale:
            Multipliers on the nominal per-slot drain/charge; the random
            charging model (Sec. V) and weather variation feed in here.
            1.0 reproduces the deterministic homogeneous model.
        """
        if drain_scale < 0 or charge_scale < 0:
            raise ValueError("scales must be non-negative")
        refused = False
        drained = 0.0
        charged = 0.0

        if activate:
            if self.machine.is_ready:
                self.machine.activate()
            elif not self.machine.is_active:
                refused = True
                self.refused_activations += 1
        else:
            if self.machine.is_active:
                # Commanded off mid-activation: park with remaining charge.
                self.machine.park()

        was_active = self.machine.is_active
        if self.machine.is_active:
            drained = self.battery.discharge(self._drain_per_slot * drain_scale)
            if self.battery.is_empty:
                self.machine.deplete()
                self.completed_activations += 1
        elif self.machine.is_passive:
            charged = self.battery.charge(self._charge_per_slot * charge_scale)
            if self.battery.fraction >= self.ready_threshold - 1e-12:
                self.machine.fully_charged()

        return NodeSlotReport(
            node_id=self.node_id,
            slot=slot,
            was_active=was_active,
            refused_activation=refused,
            energy_drained=drained,
            energy_charged=charged,
            state_after=self.machine.state,
            level_after=self.battery.level,
        )

    def snapshot(self) -> dict:
        """JSON-compatible capture of all mutable state (checkpointing)."""
        return {
            "level": self.battery.level,
            "state": self.machine.state.value,
            "transitions": self.machine.transitions,
            "refused_activations": self.refused_activations,
            "completed_activations": self.completed_activations,
        }

    def restore_snapshot(self, snap: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        self.battery.set_level(snap["level"])
        self.machine = SensorStateMachine(
            NodeState(snap["state"]), transitions=snap["transitions"]
        )
        self.refused_activations = snap["refused_activations"]
        self.completed_activations = snap["completed_activations"]

    def force(self, level: float, state: NodeState) -> None:
        """Set battery level and state directly (warm starts, trace replay).

        Bypasses the legal-transition checks -- this models *observing*
        a node mid-cycle, not commanding it.  Consistency between level
        and state is the caller's responsibility (e.g. PASSIVE with a
        full battery would never be observed).
        """
        self.battery.set_level(level)
        self.machine = SensorStateMachine(state)

    def __repr__(self) -> str:
        return (
            f"SimulatedNode(id={self.node_id}, state={self.state.value}, "
            f"soc={self.battery.fraction:.2f})"
        )
