"""One simulated sensor node: battery + state machine + slot stepping.

Implements the lifecycle of Sec. II-B faithfully:

- a node activates only from READY (fully charged by default -- "a node
  can be activated only if it is fully charged");
- while ACTIVE it drains at ``mu_d`` and drops to PASSIVE the moment
  the battery empties;
- while PASSIVE it recharges at ``mu_r`` and becomes READY at full;
- READY holds its energy (the paper treats the periodic wake-up drain
  as negligible).

The *partially recharged activation* extension (the paper's Sec. VIII
future work) is supported via ``ready_threshold``: a node becomes READY
once its state of charge reaches the threshold instead of 1.0, and an
activation then drains whatever charge it has.

Fleet-scale note: since the struct-of-arrays refactor the node is a
*view* -- all mutable state (level, state code, counters) lives in a
shared :class:`~repro.sim.soa.NodeArrays`, so the engine can step every
node with vectorized numpy ops while this class keeps serving the
object API (policies, tests, warm starts) over the same storage.  A
node constructed standalone owns a private one-slot array block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.energy.period import ChargingPeriod
from repro.energy.states import NodeState
from repro.sim.soa import STATE_CODES, NodeArrays, require_transition


@dataclass
class NodeSlotReport:
    """What one node did during one slot."""

    node_id: int
    slot: int
    was_active: bool
    refused_activation: bool
    energy_drained: float
    energy_charged: float
    state_after: NodeState
    level_after: float


class BatteryView:
    """The :class:`~repro.energy.battery.Battery` API over one array slot."""

    __slots__ = ("_arrays", "_i")

    def __init__(self, arrays: NodeArrays, index: int):
        self._arrays = arrays
        self._i = index

    @property
    def capacity(self) -> float:
        return float(self._arrays.capacity[self._i])

    @property
    def level(self) -> float:
        return float(self._arrays.level[self._i])

    @property
    def fraction(self) -> float:
        """State of charge in [0, 1]."""
        return self.level / self.capacity

    @property
    def is_full(self) -> bool:
        return self.level >= self.capacity - 1e-9

    @property
    def is_empty(self) -> bool:
        return self.level <= 1e-9

    def discharge(self, amount: float) -> float:
        """Drain up to ``amount``; returns the energy actually drained."""
        if amount < 0:
            raise ValueError(f"discharge amount must be non-negative, got {amount}")
        drained = min(amount, self.level)
        self._arrays.level[self._i] = self.level - drained
        return drained

    def charge(self, amount: float) -> float:
        """Add up to ``amount``; returns the energy actually stored."""
        if amount < 0:
            raise ValueError(f"charge amount must be non-negative, got {amount}")
        stored = min(amount, self.capacity - self.level)
        self._arrays.level[self._i] = self.level + stored
        return stored

    def set_level(self, level: float) -> None:
        """Force the energy level (used by trace replay and tests)."""
        if not 0 <= level <= self.capacity:
            raise ValueError(
                f"battery level must be in [0, {self.capacity}], got {level}"
            )
        self._arrays.level[self._i] = float(level)

    def __repr__(self) -> str:
        return f"BatteryView(capacity={self.capacity}, level={self.level:.4g})"


class MachineView:
    """The :class:`~repro.energy.states.SensorStateMachine` API over one
    array slot (state code + transition counter)."""

    __slots__ = ("_arrays", "_i")

    def __init__(self, arrays: NodeArrays, index: int):
        self._arrays = arrays
        self._i = index

    @property
    def state(self) -> NodeState:
        return self._arrays.get_state(self._i)

    @property
    def transitions(self) -> int:
        """Number of state changes so far (duty-cycle diagnostics)."""
        return int(self._arrays.transitions[self._i])

    @property
    def is_active(self) -> bool:
        return self.state is NodeState.ACTIVE

    @property
    def is_ready(self) -> bool:
        return self.state is NodeState.READY

    @property
    def is_passive(self) -> bool:
        return self.state is NodeState.PASSIVE

    def transition(self, new_state: NodeState) -> None:
        """Move to ``new_state``; raise ``IllegalTransition`` if illegal."""
        current = self.state
        if new_state is current:
            return
        require_transition(current, new_state)
        self._arrays.set_state(self._i, new_state)
        self._arrays.transitions[self._i] += 1

    def _require(self, expected: NodeState, action: str) -> None:
        from repro.energy.states import IllegalTransition

        if self.state is not expected:
            raise IllegalTransition(
                f"{action} requires {expected.value}, but node is "
                f"{self.state.value}"
            )

    def activate(self) -> None:
        """READY -> ACTIVE (the scheduler turning the node on)."""
        self._require(NodeState.READY, "activate")
        self.transition(NodeState.ACTIVE)

    def deplete(self) -> None:
        """ACTIVE -> PASSIVE (battery exhausted)."""
        self._require(NodeState.ACTIVE, "deplete")
        self.transition(NodeState.PASSIVE)

    def park(self) -> None:
        """ACTIVE -> READY (deactivated with energy remaining)."""
        self._require(NodeState.ACTIVE, "park")
        self.transition(NodeState.READY)

    def fully_charged(self) -> None:
        """PASSIVE -> READY (battery recharged to capacity)."""
        self._require(NodeState.PASSIVE, "fully_charged")
        self.transition(NodeState.READY)

    def __repr__(self) -> str:
        return f"MachineView(state={self.state.value})"


class SimulatedNode:
    """A rechargeable sensor node stepping through slots.

    Parameters
    ----------
    node_id:
        The sensor id used by schedules and utilities.
    period:
        The charging period; per-slot drain/charge amounts are derived
        from it so that ``T_d``/``T_r`` are honoured exactly in the
        normalized slot system.
    capacity:
        Battery capacity ``B`` (energy units; default 1.0, the
        normalized battery).
    ready_threshold:
        State-of-charge (0..1] at which a PASSIVE node becomes READY.
        1.0 is the paper's full-charge rule; lower values enable the
        Sec. VIII partial-charge extension.
    slot_minutes:
        Wall-clock slot length used to convert T_d/T_r into per-slot
        energy amounts.  Defaults to the period's own normalized slot;
        heterogeneous networks pass the shared simulation slot so nodes
        with different periods drain/charge at their own rates on the
        common grid.
    arrays / index:
        Shared :class:`~repro.sim.soa.NodeArrays` storage and this
        node's slot in it.  Omitted for standalone nodes, which own a
        private one-slot block.
    """

    def __init__(
        self,
        node_id: int,
        period: ChargingPeriod,
        capacity: float = 1.0,
        ready_threshold: float = 1.0,
        slot_minutes: float | None = None,
        arrays: Optional[NodeArrays] = None,
        index: Optional[int] = None,
    ):
        if not 0.0 < ready_threshold <= 1.0:
            raise ValueError(
                f"ready_threshold must be in (0, 1], got {ready_threshold}"
            )
        if capacity <= 0:
            raise ValueError(f"battery capacity must be positive, got {capacity}")
        self.node_id = node_id
        self.period = period
        if arrays is None:
            arrays = NodeArrays(1)
            index = 0
        elif index is None:
            raise ValueError("index is required when arrays is shared")
        self._arrays = arrays
        self._index = index
        slot = period.slot_length if slot_minutes is None else slot_minutes
        if slot <= 0:
            raise ValueError(f"slot length must be positive, got {slot}")
        i = index
        arrays.capacity[i] = capacity
        arrays.level[i] = capacity  # starts full (paper's READY rule)
        arrays.state[i] = STATE_CODES[NodeState.READY]
        arrays.ready_threshold[i] = ready_threshold
        # Energy per slot implied by the normalized-slot system.
        arrays.drain_per_slot[i] = capacity * slot / period.discharge_time
        arrays.charge_per_slot[i] = capacity * slot / period.recharge_time
        arrays.transitions[i] = 0
        arrays.refused[i] = 0
        arrays.completed[i] = 0
        self.battery = BatteryView(arrays, i)
        self.machine = MachineView(arrays, i)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> NodeState:
        return self.machine.state

    @property
    def is_active(self) -> bool:
        return self.machine.is_active

    @property
    def can_activate(self) -> bool:
        """True iff an activation command this slot would be honoured."""
        return self.machine.is_ready

    @property
    def ready_threshold(self) -> float:
        return float(self._arrays.ready_threshold[self._index])

    @property
    def drain_per_slot(self) -> float:
        return float(self._arrays.drain_per_slot[self._index])

    @property
    def charge_per_slot(self) -> float:
        return float(self._arrays.charge_per_slot[self._index])

    @property
    def refused_activations(self) -> int:
        return int(self._arrays.refused[self._index])

    @refused_activations.setter
    def refused_activations(self, value: int) -> None:
        self._arrays.refused[self._index] = value

    @property
    def completed_activations(self) -> int:
        return int(self._arrays.completed[self._index])

    @completed_activations.setter
    def completed_activations(self, value: int) -> None:
        self._arrays.completed[self._index] = value

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(
        self,
        slot: int,
        activate: bool,
        drain_scale: float = 1.0,
        charge_scale: float = 1.0,
    ) -> NodeSlotReport:
        """Advance the node through one slot.

        Parameters
        ----------
        activate:
            The policy's command: should this node sense during the slot?
            Honoured only from READY; an ACTIVE node keeps running when
            commanded on, and parks (ACTIVE -> READY, retaining charge)
            when commanded off.
        drain_scale / charge_scale:
            Multipliers on the nominal per-slot drain/charge; the random
            charging model (Sec. V) and weather variation feed in here.
            1.0 reproduces the deterministic homogeneous model.
        """
        if drain_scale < 0 or charge_scale < 0:
            raise ValueError("scales must be non-negative")
        refused = False
        drained = 0.0
        charged = 0.0

        if activate:
            if self.machine.is_ready:
                self.machine.activate()
            elif not self.machine.is_active:
                refused = True
                self._arrays.refused[self._index] += 1
        else:
            if self.machine.is_active:
                # Commanded off mid-activation: park with remaining charge.
                self.machine.park()

        was_active = self.machine.is_active
        if self.machine.is_active:
            drained = self.battery.discharge(self.drain_per_slot * drain_scale)
            if self.battery.is_empty:
                self.machine.deplete()
                self._arrays.completed[self._index] += 1
        elif self.machine.is_passive:
            charged = self.battery.charge(self.charge_per_slot * charge_scale)
            if self.battery.fraction >= self.ready_threshold - 1e-12:
                self.machine.fully_charged()

        return NodeSlotReport(
            node_id=self.node_id,
            slot=slot,
            was_active=was_active,
            refused_activation=refused,
            energy_drained=drained,
            energy_charged=charged,
            state_after=self.machine.state,
            level_after=self.battery.level,
        )

    def snapshot(self) -> dict:
        """JSON-compatible capture of all mutable state (checkpointing)."""
        return {
            "level": self.battery.level,
            "state": self.machine.state.value,
            "transitions": self.machine.transitions,
            "refused_activations": self.refused_activations,
            "completed_activations": self.completed_activations,
        }

    def restore_snapshot(self, snap: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        self.battery.set_level(snap["level"])
        self._arrays.set_state(self._index, NodeState(snap["state"]))
        self._arrays.transitions[self._index] = snap["transitions"]
        self.refused_activations = snap["refused_activations"]
        self.completed_activations = snap["completed_activations"]

    def force(self, level: float, state: NodeState) -> None:
        """Set battery level and state directly (warm starts, trace replay).

        Bypasses the legal-transition checks -- this models *observing*
        a node mid-cycle, not commanding it.  Consistency between level
        and state is the caller's responsibility (e.g. PASSIVE with a
        full battery would never be observed).
        """
        self.battery.set_level(level)
        self._arrays.set_state(self._index, state)
        # A forced node is "observed", not evolved: its transition count
        # restarts, matching the pre-SoA fresh state machine.
        self._arrays.transitions[self._index] = 0

    def __repr__(self) -> str:
        return (
            f"SimulatedNode(id={self.node_id}, state={self.state.value}, "
            f"soc={self.battery.fraction:.2f})"
        )
