"""Struct-of-arrays node state: the fleet-scale engine representation.

Per-node Python objects (:class:`~repro.sim.node.SimulatedNode` holding
a :class:`~repro.energy.battery.Battery` and a
:class:`~repro.energy.states.SensorStateMachine`) cost a dict lookup and
an attribute walk per float, and force the engine to step 10^5 nodes
through 10^5 interpreter-level calls per slot.  :class:`NodeArrays`
keeps every piece of hot mutable state in flat numpy arrays instead --
battery levels, state codes, per-slot drain/charge, refusal counters --
so the engine's energy accounting becomes a handful of vectorized masks
per slot, while :class:`~repro.sim.node.SimulatedNode` stays available
as a *view* onto one array slot for the existing object API.

Bit-exactness: the vectorized :meth:`NodeArrays.step_all` performs the
same IEEE-754 double ops in the same per-node order as the scalar
``SimulatedNode.step`` (min / subtract / add / compare on float64 --
numpy elementwise ops are bit-identical to Python scalar arithmetic on
the same doubles), so a vectorized slot and an object-stepped slot
produce identical levels, states and counters.  The differential suite
in ``tests/sim/`` pins this.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

import numpy as np

from repro.energy.states import IllegalTransition, NodeState

#: int8 codes for :class:`NodeState` (array representation).
STATE_CODES = {
    NodeState.ACTIVE: 0,
    NodeState.PASSIVE: 1,
    NodeState.READY: 2,
}
CODE_STATES = {code: state for state, code in STATE_CODES.items()}

_ACTIVE = STATE_CODES[NodeState.ACTIVE]
_PASSIVE = STATE_CODES[NodeState.PASSIVE]
_READY = STATE_CODES[NodeState.READY]


class NodeArrays:
    """Flat per-node state for ``n`` nodes, indexed by node id.

    All arrays are owned here; :class:`~repro.sim.node.SimulatedNode`
    views read and write single slots through the same arrays, so the
    object API and the vectorized stepping can interleave freely.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        n = num_nodes
        self.num_nodes = n
        self.level = np.zeros(n, dtype=np.float64)
        self.capacity = np.ones(n, dtype=np.float64)
        self.state = np.full(n, _READY, dtype=np.int8)
        self.drain_per_slot = np.zeros(n, dtype=np.float64)
        self.charge_per_slot = np.zeros(n, dtype=np.float64)
        self.ready_threshold = np.ones(n, dtype=np.float64)
        self.transitions = np.zeros(n, dtype=np.int64)
        self.refused = np.zeros(n, dtype=np.int64)
        self.completed = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # Vectorized slot stepping
    # ------------------------------------------------------------------

    def step_all(self, commands: Iterable[int]) -> Tuple[np.ndarray, int]:
        """Advance every node through one slot (unit drain/charge scales).

        The vectorized translation of ``SimulatedNode.step`` with
        ``drain_scale == charge_scale == 1.0``; see the module
        docstring for why the results are bit-identical.

        Returns ``(was_active, refused_count)`` where ``was_active`` is
        the post-command activity mask (the nodes that sensed -- and
        drained -- this slot).
        """
        state = self.state
        level = self.level
        activate = np.zeros(self.num_nodes, dtype=bool)
        ids = [v for v in commands if 0 <= v < self.num_nodes]
        if ids:
            activate[ids] = True

        ready = state == _READY
        active = state == _ACTIVE

        # Command phase: READY + on -> ACTIVE; ACTIVE + off -> parked
        # (READY, keeping charge); on while neither READY nor ACTIVE is
        # a refusal.
        to_activate = activate & ready
        to_park = ~activate & active
        refused_mask = activate & ~ready & ~active
        state[to_activate] = _ACTIVE
        state[to_park] = _READY
        self.transitions[to_activate | to_park] += 1
        self.refused[refused_mask] += 1
        refused_count = int(refused_mask.sum())

        # Post-command activity: these nodes sense and drain this slot.
        was_active = state == _ACTIVE
        # No command transition produces PASSIVE, so the charging set is
        # exactly the nodes that entered the slot PASSIVE -- matching the
        # scalar step's if/elif (a node depleting this slot must not
        # also charge this slot).
        passive = state == _PASSIVE

        drained = np.minimum(self.drain_per_slot, level, where=was_active, out=np.zeros_like(level))
        level -= drained
        depleted = was_active & (level <= 1e-9)
        state[depleted] = _PASSIVE
        self.transitions[depleted] += 1
        self.completed[depleted] += 1

        headroom = self.capacity - level
        stored = np.minimum(self.charge_per_slot, headroom, where=passive, out=np.zeros_like(level))
        level += stored
        refilled = passive & (
            level / self.capacity >= self.ready_threshold - 1e-12
        )
        state[refilled] = _READY
        self.transitions[refilled] += 1

        return was_active, refused_count

    def active_frozenset(self, was_active: np.ndarray) -> FrozenSet[int]:
        """Ascending-id frozenset of the mask -- the engine's canonical
        active-set construction order (plain Python ints)."""
        return frozenset(np.flatnonzero(was_active).tolist())

    # ------------------------------------------------------------------
    # Per-slot scalar access (the SimulatedNode view path)
    # ------------------------------------------------------------------

    def get_state(self, i: int) -> NodeState:
        return CODE_STATES[int(self.state[i])]

    def set_state(self, i: int, new_state: NodeState) -> None:
        self.state[i] = STATE_CODES[new_state]


def require_transition(current: NodeState, new_state: NodeState) -> None:
    """Raise :class:`IllegalTransition` unless the lifecycle allows it."""
    from repro.energy.states import _ALLOWED

    if new_state is current:
        return
    if (current, new_state) not in _ALLOWED:
        raise IllegalTransition(
            f"cannot move {current.value} -> {new_state.value}"
        )
