"""The simulated sensor network: nodes + utility system + clock.

Bundles the per-node simulation entities with the utility function the
deployment serves, and provides snapshot views (who is READY, state of
charge) that online policies consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.problem import SchedulingProblem
from repro.energy.period import ChargingPeriod
from repro.energy.states import NodeState
import numpy as np

from repro.sim.clock import SlottedClock
from repro.sim.node import SimulatedNode
from repro.sim.soa import STATE_CODES, NodeArrays
from repro.utility.base import UtilityFunction


class SensorNetwork:
    """``n`` homogeneous rechargeable nodes serving one utility function.

    Parameters
    ----------
    num_sensors:
        Node count; ids are ``0..n-1``.
    period:
        The shared charging period (homogeneous sensors, Sec. II-B).
    utility:
        The per-slot utility ``U(S)`` the network earns.
    capacity:
        Battery capacity per node (normalized 1.0 by default).
    ready_threshold:
        Passed to every node; < 1.0 enables the partial-charge
        extension (Sec. VIII).
    node_periods:
        Optional per-node period overrides (heterogeneous extension,
        Sec. VIII); nodes not listed use the shared ``period``.  The
        clock and schedule arithmetic still use the shared period.
    """

    def __init__(
        self,
        num_sensors: int,
        period: ChargingPeriod,
        utility: UtilityFunction,
        capacity: float = 1.0,
        ready_threshold: float = 1.0,
        node_periods: Optional[Dict[int, ChargingPeriod]] = None,
    ):
        if num_sensors < 0:
            raise ValueError(f"num_sensors must be >= 0, got {num_sensors}")
        self.period = period
        self.utility = utility
        overrides = node_periods or {}
        # Hot state lives in one struct-of-arrays block (battery levels,
        # state codes, counters); the node objects are views over it, so
        # the engine can choose per slot between vectorized stepping and
        # the object API without the two ever diverging.
        self.arrays = NodeArrays(num_sensors)
        self.nodes: List[SimulatedNode] = [
            SimulatedNode(
                node_id=i,
                period=overrides.get(i, period),
                capacity=capacity,
                ready_threshold=ready_threshold,
                slot_minutes=period.slot_length,
                arrays=self.arrays,
                index=i,
            )
            for i in range(num_sensors)
        ]
        self.clock = SlottedClock(
            slot_minutes=period.slot_length,
            slots_per_period=period.slots_per_period,
        )

    @classmethod
    def from_problem(
        cls,
        problem: SchedulingProblem,
        capacity: float = 1.0,
        ready_threshold: float = 1.0,
    ) -> "SensorNetwork":
        return cls(
            num_sensors=problem.num_sensors,
            period=problem.period,
            utility=problem.utility,
            capacity=capacity,
            ready_threshold=ready_threshold,
        )

    # ------------------------------------------------------------------
    # Snapshots for policies
    # ------------------------------------------------------------------

    @property
    def num_sensors(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> SimulatedNode:
        return self.nodes[node_id]

    def ready_sensors(self) -> FrozenSet[int]:
        """Ids that would honour an activation command this slot."""
        code = STATE_CODES[NodeState.READY]
        return frozenset(np.flatnonzero(self.arrays.state == code).tolist())

    def active_sensors(self) -> FrozenSet[int]:
        code = STATE_CODES[NodeState.ACTIVE]
        return frozenset(np.flatnonzero(self.arrays.state == code).tolist())

    def states(self) -> Dict[int, NodeState]:
        return {n.node_id: n.state for n in self.nodes}

    def charge_fractions(self) -> Dict[int, float]:
        return {n.node_id: n.battery.fraction for n in self.nodes}

    def total_stored_energy(self) -> float:
        return sum(n.battery.level for n in self.nodes)

    def total_refused_activations(self) -> int:
        return sum(n.refused_activations for n in self.nodes)

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------

    def warm_start(self, schedule) -> None:
        """Put every node in the steady-state phase of a periodic schedule.

        A fresh network starts all-full/all-READY, but a periodic
        schedule's steady state has each node mid-cycle at slot 0 (the
        paper's analysis is steady-state: each sensor activates exactly
        once per period).  Without a warm start the first period shows
        transient refused activations in the rho <= 1 regime (nodes
        parked with partial charge do not recharge -- Sec. II-B's READY
        semantics); after warm start the schedule executes exactly.

        Parameters
        ----------
        schedule:
            A :class:`~repro.core.schedule.PeriodicSchedule` whose
            assignment covers the nodes to warm.
        """
        from repro.core.schedule import PeriodicSchedule, ScheduleMode
        from repro.energy.states import NodeState

        if not isinstance(schedule, PeriodicSchedule):
            raise TypeError(
                f"warm_start needs a PeriodicSchedule, got {type(schedule).__name__}"
            )
        T = schedule.slots_per_period
        for node in self.nodes:
            slot = schedule.slot_of(node.node_id)
            if slot is None:
                continue  # never-activated sensor: leave it READY/full
            capacity = node.battery.capacity
            done = T - 1 - slot  # cycle slots completed before slot 0
            if schedule.mode is ScheduleMode.ACTIVE_SLOT:
                # Recharging since its last activation at slot - T.
                level = min(capacity, done * node.charge_per_slot)
                state = (
                    NodeState.READY
                    if level >= capacity - 1e-9
                    else NodeState.PASSIVE
                )
            else:
                # Draining since its last passive slot at slot - T.
                level = max(0.0, capacity - done * node.drain_per_slot)
                if level <= 1e-9:
                    state = NodeState.PASSIVE
                    level = 0.0
                else:
                    state = NodeState.READY  # will be commanded on at slot 0
            node.force(level, state)
