"""Slotted simulation clock (paper Sec. II-B).

Time is divided into equal-sized slots (15 minutes in the paper's
evaluation) and all sensors are synchronized; slots start from time 0.
The clock converts between slot indices, wall-clock minutes and
position within the charging period, and exposes the daily structure
(the paper's working time L is the 12-hour daytime of one day).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SlottedClock:
    """Tracks the current slot and converts to wall-clock time.

    Parameters
    ----------
    slot_minutes:
        Wall-clock length of a slot (the paper's normalized slot is
        T_d = 15 minutes in the sunny profile).
    slots_per_period:
        ``T`` in slots, for period-relative arithmetic.
    start_minute:
        Wall-clock minute of slot 0 (e.g. 7:00 = 420 for a daytime run).
    """

    slot_minutes: float = 15.0
    slots_per_period: int = 4
    start_minute: float = 0.0

    def __post_init__(self) -> None:
        if self.slot_minutes <= 0:
            raise ValueError(f"slot length must be positive, got {self.slot_minutes}")
        if self.slots_per_period < 1:
            raise ValueError(
                f"slots_per_period must be >= 1, got {self.slots_per_period}"
            )
        self._slot = 0

    @property
    def slot(self) -> int:
        """Current slot index (starts at 0)."""
        return self._slot

    @property
    def minute(self) -> float:
        """Wall-clock minutes at the *start* of the current slot."""
        return self.start_minute + self._slot * self.slot_minutes

    @property
    def slot_in_period(self) -> int:
        """Position of the current slot within its charging period."""
        return self._slot % self.slots_per_period

    @property
    def period_index(self) -> int:
        """Which charging period the current slot belongs to."""
        return self._slot // self.slots_per_period

    def minute_of_slot(self, slot: int) -> float:
        """Wall-clock minutes at the start of an arbitrary slot."""
        return self.start_minute + slot * self.slot_minutes

    def advance(self, slots: int = 1) -> int:
        """Move forward; returns the new current slot."""
        if slots < 0:
            raise ValueError(f"cannot advance by {slots} slots")
        self._slot += slots
        return self._slot

    def reset(self) -> None:
        self._slot = 0

    def seek(self, slot: int) -> None:
        """Jump to an absolute slot (checkpoint restore)."""
        if slot < 0:
            raise ValueError(f"cannot seek to negative slot {slot}")
        self._slot = slot

    def __repr__(self) -> str:
        return (
            f"SlottedClock(slot={self._slot}, minute={self.minute:g}, "
            f"period={self.period_index})"
        )
