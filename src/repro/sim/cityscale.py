"""City-scale scenario generator: heterogeneous fleets at constant density.

The fleet-scale benchmarks need instances that look like a city-wide
rooftop deployment rather than the paper's uniform lab setups: tens of
thousands of sensors at roughly constant spatial density, panels of
different sizes on different roofs, weather that varies by district,
and targets whose importance follows the diurnal demand curve of the
district they sit in.  :func:`city_scenario` builds exactly that from a
single seed, deterministically:

- **Constant density.**  The region is a square sized so sensor
  density stays fixed as ``n`` grows (side ``~ sqrt(n)``).  This is
  what makes the spatial grid index of
  :mod:`repro.coverage.spatial` pay off: each coverage query touches a
  bounded neighborhood regardless of fleet size.
- **Districts.**  The region is cut into a ``districts x districts``
  grid of weather cells.  Each district draws one
  :class:`~repro.solar.weather.WeatherCondition` and one diurnal
  demand peak hour.
- **Heterogeneous panels.**  Each node draws a
  :class:`~repro.solar.panel.SolarPanel` class (standard / large /
  compact).  Its recharge time under the district's weather --
  clear-sky irradiance through the condition's mean attenuation and
  charger derating -- is snapped to the nearest integer ``rho`` so the
  per-node :class:`~repro.energy.period.ChargingPeriod` satisfies the
  paper's integrality assumption.  Nodes whose period matches the
  shared base are left out of the override map.
- **Diurnal target weights.**  A target's weight is the demand curve
  of its district evaluated at the scenario hour -- districts peaking
  at 08:00 (commuter), 12:00 (commercial), 18:00 (residential) or
  22:00 (nightlife).

Everything downstream is the ordinary stack: coverage sets through the
spatial index, a :class:`~repro.utility.coverage_count.WeightedCoverageUtility`,
and either a single :class:`~repro.sim.engine.SimulationEngine` or a
:class:`~repro.sim.sharded.ShardedSimulation` fed with
:attr:`CityScenario.positions`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.coverage.deployment import Deployment, make_rng, uniform_deployment
from repro.coverage.geometry import Point, Rectangle
from repro.coverage.matrix import coverage_sets
from repro.coverage.sensing import DiskSensingModel
from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.energy.period import ChargingPeriod
from repro.solar.panel import SolarPanel
from repro.solar.weather import WEATHER_ATTENUATION, WeatherCondition
from repro.utility.coverage_count import WeightedCoverageUtility

#: Sensors per unit area; fixed across fleet sizes so coverage queries
#: touch a bounded neighborhood at every ``n``.
DENSITY = 4.0

#: Sensing radius in region units (~ a rooftop sensor's reach).
SENSING_RADIUS = 1.0

#: Clear-sky irradiance (W/m^2) the weather attenuates.
CLEAR_SKY_IRRADIANCE = 1000.0

#: Mote battery capacity in joules (50 J: the default panel refills it
#: in ~45 min of sun, the paper's measured sunny T_r).
BATTERY_JOULES = 50.0

#: Shared base discharge time T_d in minutes (paper Sec. II-B example).
BASE_DISCHARGE_MINUTES = 15.0

#: The panel catalogue: (name, panel, sampling weight).  The standard
#: panel reproduces the paper's sunny rho = 3; large roofs fit a panel
#: that saturates twice as hard, compact retrofits harvest half.
PANEL_CLASSES: Tuple[Tuple[str, SolarPanel, float], ...] = (
    ("standard", SolarPanel(), 0.6),
    ("large", SolarPanel(panel_area=0.006, max_charge_power=0.037), 0.2),
    ("compact", SolarPanel(panel_area=0.0015, max_charge_power=0.009), 0.2),
)

#: District weather mix (roughly the sticky Markov chain's long run).
WEATHER_MIX: Tuple[Tuple[WeatherCondition, float], ...] = (
    (WeatherCondition.SUNNY, 0.5),
    (WeatherCondition.CLOUDY, 0.3),
    (WeatherCondition.RAINY, 0.2),
)

#: Candidate demand peaks (hour of day) a district can draw.
DEMAND_PEAKS: Tuple[float, ...] = (8.0, 12.0, 18.0, 22.0)

#: Relative swing of the diurnal demand curve around its mean.
DIURNAL_AMPLITUDE = 0.75


def diurnal_weight(hour: float, peak_hour: float) -> float:
    """The demand curve: a cosine peaking at ``peak_hour``, mean 1.

    Never drops below ``1 - DIURNAL_AMPLITUDE`` (> 0), so every target
    keeps a positive weight around the clock.
    """
    phase = 2.0 * math.pi * (hour - peak_hour) / 24.0
    return 1.0 + DIURNAL_AMPLITUDE * math.cos(phase)


def heterogeneous_period(
    panel: SolarPanel, condition: WeatherCondition
) -> ChargingPeriod:
    """The (T_d, T_r) a panel sustains under a weather condition.

    Mean attenuated irradiance through the charger (with the
    condition's derating), then the continuous recharge time snapped to
    the nearest integer ``rho >= 1`` -- the paper's integrality
    assumption, enforced by :class:`ChargingPeriod` itself.
    """
    params = WEATHER_ATTENUATION[condition]
    irradiance = CLEAR_SKY_IRRADIANCE * params.mean_attenuation
    power = panel.charge_power(irradiance) * params.charger_derating
    if power <= 0.0:
        # Charger never turns on: model as the slowest catalogued rho.
        rho = 48
    else:
        recharge_minutes = BATTERY_JOULES / (power * 60.0)
        rho = max(1, round(recharge_minutes / BASE_DISCHARGE_MINUTES))
    return ChargingPeriod(
        discharge_time=BASE_DISCHARGE_MINUTES,
        recharge_time=BASE_DISCHARGE_MINUTES * rho,
    )


@dataclass(frozen=True)
class District:
    """One weather/demand cell of the city grid."""

    cell: Tuple[int, int]
    condition: WeatherCondition
    peak_hour: float


@dataclass(frozen=True)
class CityScenario:
    """A generated fleet: deployment, utility, and heterogeneity maps.

    ``utility`` weights targets by their district's demand at ``hour``;
    ``node_periods`` holds only the nodes that differ from the shared
    ``period`` (standard panel, sunny district).
    """

    deployment: Deployment
    model: DiskSensingModel
    utility: WeightedCoverageUtility
    period: ChargingPeriod
    node_periods: Dict[int, ChargingPeriod]
    districts: Tuple[District, ...]
    panel_names: Tuple[str, ...]
    target_weights: Dict[int, float]
    hour: float

    @property
    def num_sensors(self) -> int:
        return self.deployment.num_sensors

    @property
    def num_targets(self) -> int:
        return self.deployment.num_targets

    @property
    def positions(self) -> Tuple[Point, ...]:
        """Sensor coordinates, for spatial shard partitioning."""
        return self.deployment.sensors

    def problem(self, num_periods: int = 1) -> SchedulingProblem:
        """The scheduling problem over the shared base period."""
        return SchedulingProblem(
            num_sensors=self.num_sensors,
            period=self.period,
            utility=self.utility,
            num_periods=num_periods,
        )

    def round_robin_schedule(self) -> PeriodicSchedule:
        """Sensor ``i`` active in slot ``i mod T``: the fixed schedule
        the throughput benchmarks execute (solver-independent, every
        node commanded once per period)."""
        T = self.period.slots_per_period
        return PeriodicSchedule(
            slots_per_period=T,
            assignment={i: i % T for i in range(self.num_sensors)},
            mode=ScheduleMode.ACTIVE_SLOT,
        )


def _district_of(
    point: Point, region: Rectangle, districts: int
) -> Tuple[int, int]:
    span_x = region.width or 1.0
    span_y = region.height or 1.0
    gx = min(int((point.x - region.x_min) / span_x * districts), districts - 1)
    gy = min(int((point.y - region.y_min) / span_y * districts), districts - 1)
    return (gx, gy)


def city_scenario(
    num_sensors: int,
    *,
    districts: int = 4,
    target_fraction: float = 0.1,
    hour: float = 12.0,
    seed: int = 0,
) -> CityScenario:
    """Generate a city fleet of ``num_sensors`` nodes, deterministically.

    Parameters
    ----------
    districts:
        The weather/demand grid is ``districts x districts``.
    target_fraction:
        Targets per sensor (default one target per ten sensors).
    hour:
        Hour of day at which target weights are evaluated.
    seed:
        Seeds deployment, weather, panel and peak-hour draws.
    """
    if num_sensors < 1:
        raise ValueError(f"num_sensors must be >= 1, got {num_sensors}")
    if districts < 1:
        raise ValueError(f"districts must be >= 1, got {districts}")
    if not 0.0 <= target_fraction:
        raise ValueError(f"target_fraction must be >= 0, got {target_fraction}")

    rng = make_rng(seed)
    side = math.sqrt(num_sensors / DENSITY)
    region = Rectangle.square(max(side, 2.0 * SENSING_RADIUS))
    num_targets = max(1, int(round(num_sensors * target_fraction)))
    deployment = uniform_deployment(
        num_sensors, num_targets=num_targets, region=region, rng=rng
    )
    model = DiskSensingModel(radius=SENSING_RADIUS)

    # Districts: one weather condition + one demand peak per cell.
    conditions = [c for c, _ in WEATHER_MIX]
    weights = [w for _, w in WEATHER_MIX]
    district_list: List[District] = []
    district_map: Dict[Tuple[int, int], District] = {}
    for gx in range(districts):
        for gy in range(districts):
            condition = conditions[int(rng.choice(len(conditions), p=weights))]
            peak = DEMAND_PEAKS[int(rng.choice(len(DEMAND_PEAKS)))]
            district = District(cell=(gx, gy), condition=condition, peak_hour=peak)
            district_list.append(district)
            district_map[(gx, gy)] = district

    # Panels, and per-node periods under the district weather.  One
    # bulk draw: per-node ``rng.choice`` calls would dominate scenario
    # generation at fleet sizes.
    panel_weights = [w for _, _, w in PANEL_CLASSES]
    panel_draws = rng.choice(
        len(PANEL_CLASSES), size=num_sensors, p=panel_weights
    )
    base_period = heterogeneous_period(
        PANEL_CLASSES[0][1], WeatherCondition.SUNNY
    )
    panel_names: List[str] = []
    node_periods: Dict[int, ChargingPeriod] = {}
    period_cache: Dict[Tuple[str, WeatherCondition], ChargingPeriod] = {}
    for i, sensor in enumerate(deployment.sensors):
        name, panel, _ = PANEL_CLASSES[int(panel_draws[i])]
        panel_names.append(name)
        district = district_map[_district_of(sensor, region, districts)]
        key = (name, district.condition)
        period = period_cache.get(key)
        if period is None:
            period = heterogeneous_period(panel, district.condition)
            period_cache[key] = period
        if period != base_period:
            node_periods[i] = period

    # Diurnal target weights from the district demand curves.
    target_weights: Dict[int, float] = {}
    for t, target in enumerate(deployment.targets):
        district = district_map[_district_of(target, region, districts)]
        target_weights[t] = diurnal_weight(hour, district.peak_hour)

    # Coverage through the spatial-index path (REPRO_SPATIAL governs),
    # inverted to the sensor -> targets map the utility wants.
    sets = coverage_sets(deployment, model)
    covers: Dict[int, List[int]] = {j: [] for j in range(num_sensors)}
    for t, sensors in enumerate(sets):
        for j in sorted(sensors):
            covers[j].append(t)
    utility = WeightedCoverageUtility(covers, element_weights=target_weights)

    return CityScenario(
        deployment=deployment,
        model=model,
        utility=utility,
        period=base_period,
        node_periods=node_periods,
        districts=tuple(district_list),
        panel_names=tuple(panel_names),
        target_weights=target_weights,
        hour=hour,
    )
