"""Utility accounting: per-slot records and the paper's headline metrics.

The paper reports the **average utility per target per time-slot**
(Sec. VI-B): Fig. 8 plots it against the number of sensors, Fig. 9
against the number of targets.  :class:`UtilityAccumulator` computes it
(and per-target series) from the per-slot active sets the engine
produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.utility.base import UtilityFunction
from repro.utility.incremental import SlotValueMemo, incremental_enabled
from repro.utility.target_system import TargetSystem


@dataclass(frozen=True)
class SlotRecord:
    """What the network achieved in one slot."""

    slot: int
    active_set: FrozenSet[int]
    utility: float
    per_target: Optional[np.ndarray] = None  # set when the utility is a TargetSystem
    refused_activations: int = 0


@dataclass
class UtilityAccumulator:
    """Accumulates slot records and derives the paper's metrics."""

    utility: UtilityFunction
    records: List[SlotRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Periodic schedules revisit the same active sets each cycle;
        # memoize their evaluations (see SlotValueMemo for why this is
        # exact for engine-built sets).  The engine disables the memo
        # when a sensing_filter perturbs set construction.
        self._memo: Optional[SlotValueMemo] = (
            SlotValueMemo() if incremental_enabled() else None
        )

    def disable_memo(self) -> None:
        """Turn off slot-value memoization (e.g. under a sensing filter)."""
        self._memo = None

    @property
    def num_targets(self) -> int:
        if isinstance(self.utility, TargetSystem):
            return self.utility.num_targets
        return 1

    def record(self, slot: int, active_set: FrozenSet[int], refused: int = 0) -> SlotRecord:
        """Evaluate the utility of the slot's active set and store it."""
        cached = self._memo.lookup(active_set) if self._memo is not None else None
        if cached is not None:
            value, per_target = cached
        else:
            per_target = None
            if isinstance(self.utility, TargetSystem):
                per_target = self.utility.per_target_values(active_set)
                value = float(per_target.sum())
            else:
                value = self.utility.value(active_set)
            if self._memo is not None:
                # per_target arrays are never mutated downstream, so the
                # stored array object can be shared across slot records.
                self._memo.store(active_set, (value, per_target))
        rec = SlotRecord(
            slot=slot,
            active_set=frozenset(active_set),
            utility=value,
            per_target=per_target,
            refused_activations=refused,
        )
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self.records)

    @property
    def total_utility(self) -> float:
        return sum(r.utility for r in self.records)

    @property
    def average_slot_utility(self) -> float:
        if not self.records:
            return 0.0
        return self.total_utility / self.num_slots

    @property
    def average_utility_per_target(self) -> float:
        """The paper's Fig. 8/9 metric: mean utility per target per slot."""
        targets = self.num_targets
        if targets == 0:
            return 0.0
        return self.average_slot_utility / targets

    def per_slot_series(self) -> np.ndarray:
        return np.array([r.utility for r in self.records])

    def per_target_averages(self) -> Optional[np.ndarray]:
        """Mean per-slot utility of each target (TargetSystem only)."""
        if not self.records or self.records[0].per_target is None:
            return None
        stacked = np.vstack([r.per_target for r in self.records])
        return stacked.mean(axis=0)

    def activation_counts(self) -> Dict[int, int]:
        """How many slots each sensor was active -- evenness diagnostics."""
        counts: Dict[int, int] = {}
        for r in self.records:
            for v in r.active_set:
                counts[v] = counts.get(v, 0) + 1
        return counts

    def total_refused(self) -> int:
        return sum(r.refused_activations for r in self.records)
