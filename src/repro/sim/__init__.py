"""Slot-stepped network simulator with exact energy accounting.

The schedulers of :mod:`repro.core` reason combinatorially ("one active
slot per period"); the simulator executes a policy on simulated
hardware and *verifies* that reasoning: batteries are integrated
joule-by-joule through the ACTIVE/PASSIVE/READY state machine, a node
commanded to activate without a full battery is refused (the paper's
full-charge activation rule), and the achieved utility is accounted
per slot and per target.

Components:

- :class:`~repro.sim.clock.SlottedClock` -- slot <-> wall-clock time.
- :class:`~repro.sim.node.SimulatedNode` -- battery + state machine.
- :class:`~repro.sim.network.SensorNetwork` -- nodes + utility system.
- :class:`~repro.sim.engine.SimulationEngine` -- runs an
  :class:`~repro.policies.base.ActivationPolicy` for ``L`` slots.
- :class:`~repro.sim.events.PoissonEventProcess` -- the Sec. V event
  model (Poisson arrivals, exponential durations) with detection
  bookkeeping.
- :class:`~repro.sim.random_model.RandomChargingModel` -- Sec. V's
  stochastic discharge/recharge times and the effective ratio rho'.
- :mod:`~repro.sim.metrics` -- utility/detection metric containers.
- :mod:`~repro.sim.failures` -- injectable fault models (deaths,
  correlated outages, stuck actuators, command loss).
- :class:`~repro.sim.health.HealthMonitor` -- report-driven liveness
  inference (the base station's failure detector).
"""

from repro.sim.clock import SlottedClock
from repro.sim.node import SimulatedNode
from repro.sim.network import SensorNetwork
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.events import DetectionOutcome, Event, PoissonEventProcess
from repro.sim.random_model import RandomChargingModel, effective_ratio
from repro.sim.metrics import SlotRecord, UtilityAccumulator
from repro.sim.failures import FailureInjectedPolicy, FailurePlan
from repro.sim.health import HealthMonitor, HealthSnapshot, NodeHealth
from repro.sim.trace_driven import DaylightGatedPolicy, TraceDrivenChargingModel
from repro.sim.batch import BatchResult, run_batch

__all__ = [
    "SlottedClock",
    "SimulatedNode",
    "SensorNetwork",
    "SimulationEngine",
    "SimulationResult",
    "PoissonEventProcess",
    "Event",
    "DetectionOutcome",
    "RandomChargingModel",
    "effective_ratio",
    "SlotRecord",
    "UtilityAccumulator",
    "FailurePlan",
    "FailureInjectedPolicy",
    "HealthMonitor",
    "HealthSnapshot",
    "NodeHealth",
    "TraceDrivenChargingModel",
    "DaylightGatedPolicy",
    "BatchResult",
    "run_batch",
]
