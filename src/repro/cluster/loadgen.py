"""Open-loop load generation against a serve/cluster endpoint.

Closed-loop clients (fire, wait, fire) measure a *flattering* latency:
when the server slows down, a closed loop slows its arrival rate with
it, hiding the queueing the real world would see.  This harness is
**open-loop**: every request has a precomputed send time on a fixed
rps schedule, client threads sleep until each slot and fire regardless
of how the previous request fared -- so a server falling behind
accumulates genuine queueing delay in the measurements, coordinated
omission included (late sends are tracked and reported).

Traffic shapes match the benchmark suite's two regimes:

- ``duplicate``: every request is the same instance -- the best case
  for coalescing and the shared cache tier (one solve, N answers);
- ``distinct``: every request is a different instance -- zero cache
  help, pure solve throughput, the sharding win;
- ``mixed``: a seeded blend (80/20 duplicate-leaning zipf-ish draw
  over a small instance pool), the realistic middle.

The report (``kind: repro-loadgen-report``) carries achieved rps,
p50/p95/p99/max latency, per-status counts, send lateness, and -- when
an SLO is given -- a pass/fail verdict ``repro loadgen`` turns into
its exit code.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Instance-size pool for distinct/mixed traffic: small enough to
#: solve in milliseconds, varied enough to defeat every cache layer.
_DISTINCT_SENSORS = (6, 8, 10, 12, 14, 16, 18, 20)

REPORT_KIND = "repro-loadgen-report"


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run's shape."""

    url: str  # base endpoint, e.g. http://127.0.0.1:8080
    rps: float = 50.0  # open-loop arrival rate
    duration: float = 5.0  # seconds of schedule (requests = rps*duration)
    clients: int = 8  # sender threads
    mode: str = "duplicate"  # duplicate | distinct | mixed
    endpoint: str = "/v1/solve"
    seed: int = 0  # body-mix determinism
    timeout: float = 10.0  # per-request client timeout
    slo_p95: Optional[float] = None  # seconds; None = report only
    slo_error_rate: float = 0.01  # tolerated non-200 fraction under SLO

    def __post_init__(self) -> None:
        if self.rps <= 0:
            raise ValueError(f"rps must be > 0, got {self.rps}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.mode not in ("duplicate", "distinct", "mixed"):
            raise ValueError(
                f"mode must be duplicate|distinct|mixed, got {self.mode!r}"
            )


def request_body(mode: str, index: int, seed: int) -> bytes:
    """The ``index``-th request body for a traffic mode (deterministic)."""
    if mode == "duplicate":
        sensors, p = 12, 0.35
    elif mode == "distinct":
        # Vary both the size and the utility parameter: every index is
        # a genuinely different instance with a different fingerprint.
        sensors = _DISTINCT_SENSORS[index % len(_DISTINCT_SENSORS)]
        p = 0.05 + (index % 89) / 100.0
    else:  # mixed: seeded 80/20 duplicate-vs-distinct draw
        rng = random.Random(seed * 1_000_003 + index)
        if rng.random() < 0.8:
            sensors, p = 12, 0.35
        else:
            sensors = rng.choice(_DISTINCT_SENSORS)
            p = 0.05 + rng.randrange(89) / 100.0
    body = {
        "problem": {
            "num_sensors": sensors,
            "rho": 3.0,
            "utility": {"p": round(p, 2)},
        }
    }
    return json.dumps(body, sort_keys=True).encode("utf-8")


def quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile (no interpolation; robust at small n)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[index]


def run_loadgen(config: LoadgenConfig) -> Dict[str, Any]:
    """Drive the schedule; returns the report document."""
    total = max(1, int(config.rps * config.duration))
    interval = 1.0 / config.rps
    bodies = [
        request_body(config.mode, index, config.seed)
        for index in range(total)
    ]
    url = config.url.rstrip("/") + config.endpoint

    lock = threading.Lock()
    latencies: List[float] = []
    lateness: List[float] = []
    statuses: Dict[str, int] = {}
    next_index = [0]
    epoch = time.monotonic() + 0.05  # small runway before slot zero

    def record(status: str, latency: float, late: float) -> None:
        with lock:
            statuses[status] = statuses.get(status, 0) + 1
            if latency >= 0:
                latencies.append(latency)
            lateness.append(late)

    def sender() -> None:
        while True:
            with lock:
                index = next_index[0]
                if index >= total:
                    return
                next_index[0] += 1
            send_at = epoch + index * interval
            delay = send_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            late = max(0.0, time.monotonic() - send_at)
            request = urllib.request.Request(
                url,
                data=bodies[index],
                headers={"Content-Type": "application/json"},
            )
            started = time.monotonic()
            try:
                with urllib.request.urlopen(
                    request, timeout=config.timeout
                ) as response:
                    response.read()
                    record(
                        str(response.status),
                        time.monotonic() - started,
                        late,
                    )
            except urllib.error.HTTPError as error:
                error.read()
                record(str(error.code), time.monotonic() - started, late)
            except (urllib.error.URLError, OSError, TimeoutError):
                record("error", -1.0, late)

    threads = [
        threading.Thread(target=sender, name=f"loadgen-{i}", daemon=True)
        for i in range(config.clients)
    ]
    started_at = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started_at

    completed = sum(statuses.values())
    ok = statuses.get("200", 0)
    error_rate = 1.0 - (ok / completed) if completed else 1.0
    p95 = quantile(latencies, 0.95)
    report: Dict[str, Any] = {
        "kind": REPORT_KIND,
        "version": 1,
        "url": url,
        "mode": config.mode,
        "requests": total,
        "clients": config.clients,
        "rps_target": config.rps,
        "rps_achieved": round(completed / wall, 2) if wall > 0 else 0.0,
        "wall_seconds": round(wall, 3),
        "statuses": dict(sorted(statuses.items())),
        "error_rate": round(error_rate, 4),
        "latency": {
            "p50": round(quantile(latencies, 0.50), 4),
            "p95": round(p95, 4),
            "p99": round(quantile(latencies, 0.99), 4),
            "max": round(max(latencies), 4) if latencies else 0.0,
        },
        "send_lateness_p95": round(quantile(lateness, 0.95), 4),
    }
    if config.slo_p95 is not None:
        met = p95 <= config.slo_p95 and error_rate <= config.slo_error_rate
        report["slo"] = {
            "p95_target": config.slo_p95,
            "error_rate_target": config.slo_error_rate,
            "met": met,
        }
    return report
