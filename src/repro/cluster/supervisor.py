"""The supervisor: spawn workers, watch them, respawn with backoff.

One :class:`Supervisor` owns N worker subprocesses (each a
:mod:`repro.cluster.worker` running an unmodified ``SolveService``).
Its job is the boring half of availability:

- **spawn**: write each worker's config document, launch
  ``python -m repro.cluster.worker``, and wait until the worker has
  published its port file and answers ``/healthz``;
- **watch**: a monitor thread polls for exits.  A worker that exits
  while the cluster is running is a crash (clean exits only happen
  during drain), so it is respawned -- after a backoff delay from the
  shared :class:`~repro.runtime.retry.RetryPolicy` schedule, and only
  while its restart budget (``max_restarts`` within
  ``restart_window`` seconds) lasts.  A worker that burns the budget
  is marked ``failed`` and left down: a crash loop is a bug to
  surface, not to hide behind infinite respawns;
- **drain**: SIGTERM to every worker, bounded wait, SIGKILL
  stragglers.  Workers drain their own in-flight requests and
  checkpoint sessions before exiting (see the worker module).

Worker state is exported as ``repro_cluster_workers{state}`` gauges
and ``repro_cluster_restarts_total{worker}`` counters; the router's
aggregate ``/healthz`` reads the same data through
:meth:`Supervisor.describe`.

Respawned workers keep their shard identity: same shard name, same
session checkpoint directory, same shared cache directory -- so a
replacement re-adopts checkpointed sessions and the warm disk tier.
Only the port changes (workers bind ephemerally), which the router
absorbs by re-reading port files per forward.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.cluster.worker import read_port_file
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.runtime.retry import RetryPolicy

#: Every state a worker can be in (the gauge exports all of them, so
#: dashboards see explicit zeros instead of absent series).
WORKER_STATES = ("starting", "up", "restarting", "failed", "stopped")

_WORKERS_HELP = "Cluster workers by lifecycle state"
_RESTARTS_HELP = "Worker respawns by shard"


class WorkerHandle:
    """One shard's process and lifecycle bookkeeping (supervisor-owned)."""

    def __init__(self, shard: str, config_path: Path, port_file: Path):
        self.shard = shard
        self.config_path = config_path
        self.port_file = port_file
        self.process: Optional[subprocess.Popen] = None
        self.state = "starting"
        self.restarts = 0
        self.restart_times: List[float] = []
        self.respawn_at: Optional[float] = None  # backoff expiry

    def address(self) -> Optional[Tuple[str, int]]:
        """The live worker's (host, port), or ``None`` while down.

        The port file is only trusted when its pid matches the process
        we are currently running: after a crash the old file lingers
        until the replacement rewrites it, and routing to the dead
        port would turn one crash into a connection-refused storm.
        """
        process = self.process
        if process is None or process.poll() is not None:
            return None
        try:
            document = read_port_file(self.port_file)
        except ValueError:
            return None
        if document.get("pid") != process.pid:
            return None
        return str(document.get("host", "127.0.0.1")), document["port"]


class Supervisor:
    """Keeps N worker processes alive under a bounded restart policy."""

    def __init__(
        self,
        runtime_dir: Path,
        workers: int,
        service: Dict[str, Any],
        max_restarts: int = 5,
        restart_window: float = 60.0,
        start_timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.runtime_dir = Path(runtime_dir)
        self.workers = workers
        self.service = dict(service)
        self.max_restarts = max_restarts
        self.restart_window = restart_window
        self.start_timeout = start_timeout
        # The retry schedule doubles as the respawn backoff: a worker
        # that keeps dying waits longer each time within the window.
        self.retry = retry or RetryPolicy(
            max_attempts=max(2, max_restarts + 1),
            base_delay=0.2,
            max_delay=5.0,
        )
        self._rng = self.retry.rng()
        self._lock = threading.RLock()
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        self.handles: List[WorkerHandle] = []
        for index in range(workers):
            shard = f"worker-{index}"
            self.handles.append(
                WorkerHandle(
                    shard,
                    config_path=self.runtime_dir / f"{shard}.config.json",
                    port_file=self.runtime_dir / f"{shard}.port.json",
                )
            )

    # -- lifecycle -----------------------------------------------------

    def start(self, wait: bool = True) -> "Supervisor":
        """Spawn every worker (optionally wait healthy), start watching."""
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._stopping = False
            for handle in self.handles:
                self._spawn(handle)
        if wait:
            deadline = time.monotonic() + self.start_timeout
            for handle in self.handles:
                self._wait_ready(handle, deadline)
        self._monitor = threading.Thread(
            target=self._watch, name="repro-supervisor", daemon=True
        )
        self._monitor.start()
        self._update_gauge()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain: SIGTERM all, bounded wait, SIGKILL stragglers."""
        with self._lock:
            self._stopping = True
            processes = [
                handle.process
                for handle in self.handles
                if handle.process is not None
                and handle.process.poll() is None
            ]
            for process in processes:
                try:
                    process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for process in processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            for handle in self.handles:
                handle.state = "stopped"
        self._update_gauge()

    # -- introspection -------------------------------------------------

    def address(self, shard: str) -> Optional[Tuple[str, int]]:
        """The live (host, port) for ``shard``, or ``None`` while down."""
        return self._handle(shard).address()

    def shards(self) -> List[str]:
        return [handle.shard for handle in self.handles]

    def describe(self) -> List[Dict[str, Any]]:
        """Per-worker state for the aggregate health endpoint."""
        with self._lock:
            return [
                {
                    "shard": handle.shard,
                    "state": handle.state,
                    "restarts": handle.restarts,
                    "pid": (
                        handle.process.pid
                        if handle.process is not None
                        and handle.process.poll() is None
                        else None
                    ),
                }
                for handle in self.handles
            ]

    def kill(self, shard: str, sig: int = signal.SIGKILL) -> None:
        """Kill one worker (tests and chaos drills)."""
        handle = self._handle(shard)
        process = handle.process
        if process is not None and process.poll() is None:
            process.send_signal(sig)

    def _handle(self, shard: str) -> WorkerHandle:
        for handle in self.handles:
            if handle.shard == shard:
                return handle
        raise KeyError(f"unknown shard {shard!r}")

    # -- internals -----------------------------------------------------

    def _spawn(self, handle: WorkerHandle) -> None:
        handle.port_file.unlink(missing_ok=True)
        # Per-shard fields (cache label, checkpoint subdir) are written
        # with a "{shard}" placeholder in the shared service document;
        # each worker gets its own substituted copy.  Respawns reuse
        # the same shard name, so they land on the same checkpoints.
        service = {
            key: (
                value.replace("{shard}", handle.shard)
                if isinstance(value, str)
                else value
            )
            for key, value in self.service.items()
        }
        document = {
            "kind": "repro-worker-config",
            "shard": handle.shard,
            "port_file": str(handle.port_file),
            "service": service,
        }
        handle.config_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        env = dict(os.environ)
        # The worker must import repro exactly as we did, wherever the
        # supervisor itself was launched from.
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        log_path = self.runtime_dir / f"{handle.shard}.log"
        with log_path.open("ab") as log:
            handle.process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.worker",
                    "--config",
                    str(handle.config_path),
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        handle.state = "starting"
        obs_events.emit(
            "cluster.spawn", shard=handle.shard, pid=handle.process.pid
        )

    def _wait_ready(self, handle: WorkerHandle, deadline: float) -> None:
        """Block until ``handle`` answers /healthz (or raise)."""
        while time.monotonic() < deadline:
            process = handle.process
            if process is None or process.poll() is not None:
                raise RuntimeError(
                    f"worker {handle.shard} exited during startup "
                    f"(code {None if process is None else process.returncode}); "
                    f"see {self.runtime_dir / (handle.shard + '.log')}"
                )
            address = handle.address()
            if address is not None and self._healthy(address):
                with self._lock:
                    handle.state = "up"
                self._update_gauge()
                return
            time.sleep(0.05)
        raise TimeoutError(
            f"worker {handle.shard} not healthy within "
            f"{self.start_timeout:.0f}s"
        )

    @staticmethod
    def _healthy(address: Tuple[str, int]) -> bool:
        host, port = address
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=2.0
            ) as response:
                return response.status == 200
        except (urllib.error.URLError, OSError):
            return False

    def _watch(self) -> None:
        """The monitor loop: notice exits, schedule + execute respawns."""
        while True:
            with self._lock:
                if self._stopping:
                    return
                now = time.monotonic()
                for handle in self.handles:
                    self._check(handle, now)
            time.sleep(0.25)

    def _check(self, handle: WorkerHandle, now: float) -> None:
        """One monitor pass over one worker (lock held)."""
        if handle.state == "failed":
            return
        process = handle.process
        if process is not None and process.poll() is None:
            if handle.state == "starting":
                address = handle.address()
                if address is not None:
                    handle.state = "up"
                    self._update_gauge()
            return
        # The process is gone and we are not draining: that is a crash.
        if handle.state != "restarting":
            returncode = None if process is None else process.returncode
            handle.state = "restarting"
            handle.restart_times = [
                stamp
                for stamp in handle.restart_times
                if now - stamp < self.restart_window
            ]
            if len(handle.restart_times) >= self.max_restarts:
                handle.state = "failed"
                obs_events.emit(
                    "cluster.worker_failed",
                    shard=handle.shard,
                    restarts=handle.restarts,
                )
                self._update_gauge()
                return
            handle.restart_times.append(now)
            handle.restarts += 1
            attempt = min(
                len(handle.restart_times), self.retry.max_attempts - 1
            )
            delay = self.retry.backoff(attempt, self._rng)
            handle.respawn_at = now + delay
            get_registry().counter(
                "repro_cluster_restarts_total",
                _RESTARTS_HELP,
                worker=handle.shard,
            ).inc()
            obs_events.emit(
                "cluster.worker_crashed",
                shard=handle.shard,
                returncode=returncode,
                respawn_delay=round(delay, 3),
            )
            self._update_gauge()
            return
        # Waiting out the backoff; respawn once it expires.
        if handle.respawn_at is not None and now >= handle.respawn_at:
            handle.respawn_at = None
            self._spawn(handle)
            self._update_gauge()

    def _update_gauge(self) -> None:
        registry = get_registry()
        counts = {state: 0 for state in WORKER_STATES}
        for handle in self.handles:
            counts[handle.state] = counts.get(handle.state, 0) + 1
        for state, count in counts.items():
            registry.gauge(
                "repro_cluster_workers", _WORKERS_HELP, state=state
            ).set(count)
