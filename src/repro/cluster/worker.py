"""The worker process: one unmodified SolveService behind the router.

Runnable as ``python -m repro.cluster.worker --config <json>``.  The
supervisor writes the config file, spawns this module, and discovers
the bound port from the **port file** the worker publishes -- workers
bind ephemeral ports (``port=0``) so respawns never race a half-closed
socket, and the port file (written atomically: tmp + rename) is the
rendezvous.  Its document::

    {"kind": "repro-worker-port", "shard": "worker-0",
     "pid": 1234, "host": "127.0.0.1", "port": 40123}

Lifecycle: build the :class:`~repro.serve.app.ServiceConfig` from the
config document, start the service, publish the port, then block until
SIGTERM/SIGINT -- on which the service drains (in-flight requests
finish, sessions checkpoint, cache stats flush) and the process exits
0.  Anything harsher (SIGKILL, a crash) is the supervisor's problem:
it notices the exit and respawns; the session checkpoint directory and
the shared cache directory survive on disk, so the replacement worker
re-adopts both.

A chaos plan installed in the parent before spawning reaches workers
through ``$REPRO_FAULT_PLAN`` (see :mod:`repro.faults.injector`) --
no cluster-specific plumbing needed.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from pathlib import Path
from typing import Any, Dict

from repro.serve.app import ServiceConfig, SolveService

PORT_FILE_KIND = "repro-worker-port"

#: ServiceConfig fields a cluster config document may set; anything
#: else in the document is a spelling mistake worth failing loudly on.
_CONFIG_FIELDS = frozenset(ServiceConfig.__dataclass_fields__)


def build_config(document: Dict[str, Any]) -> ServiceConfig:
    """A :class:`ServiceConfig` from a worker config document."""
    service = document.get("service", {})
    if not isinstance(service, dict):
        raise ValueError("worker config 'service' must be an object")
    unknown = set(service) - _CONFIG_FIELDS
    if unknown:
        raise ValueError(f"unknown service config fields: {sorted(unknown)}")
    return ServiceConfig(**service)


def write_port_file(
    path: Path, shard: str, host: str, port: int
) -> None:
    """Publish the bound address atomically (readers never see a torn
    file, and a respawned worker's rewrite is a clean replace)."""
    document = {
        "kind": PORT_FILE_KIND,
        "shard": shard,
        "pid": os.getpid(),
        "host": host,
        "port": port,
    }
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(document, sort_keys=True) + "\n")
    os.replace(tmp, path)


def read_port_file(path: Path) -> Dict[str, Any]:
    """The port document, or :class:`ValueError` if absent/torn/foreign."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"port file {path} unreadable: {error}") from error
    if (
        not isinstance(document, dict)
        or document.get("kind") != PORT_FILE_KIND
        or not isinstance(document.get("port"), int)
    ):
        raise ValueError(f"port file {path} is not a worker port document")
    return document


def run_worker(config_path: str) -> int:
    """The worker main: serve until SIGTERM, drain, exit 0."""
    document = json.loads(Path(config_path).read_text())
    if not isinstance(document, dict):
        raise ValueError("worker config must be a JSON object")
    shard = document.get("shard")
    if not isinstance(shard, str) or not shard:
        raise ValueError("worker config needs a 'shard' name")
    port_file = document.get("port_file")
    if not isinstance(port_file, str) or not port_file:
        raise ValueError("worker config needs a 'port_file' path")

    service = SolveService(build_config(document))
    stop = threading.Event()

    def on_signal(signum: int, frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    service.start()
    try:
        host, port = service.address
        write_port_file(Path(port_file), shard, host, port)
        print(
            f"worker {shard} serving on http://{host}:{port}",
            flush=True,
        )
        stop.wait()
    finally:
        service.stop()
    print(f"worker {shard} stopped", flush=True)
    return 0


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description="one solve-service shard under a cluster supervisor",
    )
    parser.add_argument(
        "--config", required=True, help="path to the worker config JSON"
    )
    arguments = parser.parse_args(argv)
    return run_worker(arguments.config)


if __name__ == "__main__":
    sys.exit(main())
