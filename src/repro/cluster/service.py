"""ClusterService: supervisor + router under one lifecycle.

The cluster analogue of :class:`~repro.serve.app.SolveService`, with
the same three consumption modes: ``repro serve --workers N`` runs it
in the foreground, tests embed it on an ephemeral router port, and
``with ClusterService(config) as cluster:`` scopes it to a block.

Startup order matters: workers first (so the router never races an
empty fleet), router last.  Shutdown reverses it -- the router stops
accepting (new clients get structured 503s elsewhere), then the
supervisor drains the workers, which finish in-flight requests and
checkpoint their sessions.

Shared state lives on disk, deliberately: one cache directory for the
cross-worker tier, one checkpoint directory with a per-shard
subdirectory each (a respawned ``worker-3`` re-adopts exactly
``worker-3``'s sessions -- the ring pins a session's lineage to its
shard, so handing its checkpoints to any other worker would break
stickiness).
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.cluster.router import Router, RouterHTTPServer
from repro.cluster.supervisor import Supervisor
from repro.runtime.cache import default_cache_dir


@dataclass(frozen=True)
class ClusterConfig:
    """Everything tunable about one cluster."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 8080  # router port; 0 = ephemeral (tests)
    runtime_dir: Optional[str] = None  # port files, configs, logs; None = tmp
    cache_dir: Optional[str] = None  # shared tier; None = default store
    checkpoint_dir: Optional[str] = None  # session persistence; None = off
    request_timeout: float = 60.0  # router budget per request
    max_restarts: int = 5  # per worker, inside restart_window
    restart_window: float = 60.0
    start_timeout: float = 30.0  # whole-fleet readiness bound
    #: Overrides merged into every worker's ServiceConfig (tests lower
    #: queue bounds, disable sessions, shrink batch windows, ...).
    service: Dict[str, Any] = field(default_factory=dict)


class ClusterService:
    """One running (or startable) sharded serving cluster."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if self.config.runtime_dir is not None:
            self.runtime_dir = Path(self.config.runtime_dir)
        else:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            self.runtime_dir = Path(self._tmpdir.name)
        cache_dir = self.config.cache_dir or str(default_cache_dir())
        self.supervisor = Supervisor(
            runtime_dir=self.runtime_dir,
            workers=self.config.workers,
            service=self._service_for(cache_dir),
            max_restarts=self.config.max_restarts,
            restart_window=self.config.restart_window,
            start_timeout=self.config.start_timeout,
        )
        self.router = Router(
            self.supervisor, request_timeout=self.config.request_timeout
        )
        self._httpd: Optional[RouterHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def _service_for(self, cache_dir: str) -> Dict[str, Any]:
        """The worker ServiceConfig document (shard fields filled later).

        Per-shard values (checkpoint subdir, cache label) cannot live
        in one shared document -- the supervisor patches them per
        worker via the ``{shard}`` placeholder.
        """
        service: Dict[str, Any] = {
            "port": 0,  # ephemeral: respawns never fight over a socket
            "host": self.config.host,
            "cache_dir": cache_dir,
            "cache_label": "{shard}",
            "request_timeout": self.config.request_timeout,
        }
        if self.config.checkpoint_dir is not None:
            service["session_checkpoint_dir"] = str(
                Path(self.config.checkpoint_dir) / "{shard}"
            )
        service.update(self.config.service)
        return service

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ClusterService":
        """Spawn the fleet, wait healthy, then open the router socket."""
        if self._httpd is not None:
            raise RuntimeError("cluster already started")
        self.supervisor.start(wait=True)
        self._httpd = RouterHTTPServer(
            (self.config.host, self.config.port), self.router
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-router",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground variant for the CLI: blocks until interrupted."""
        if self._httpd is not None:
            raise RuntimeError("cluster already started")
        self.supervisor.start(wait=True)
        self._httpd = RouterHTTPServer(
            (self.config.host, self.config.port), self.router
        )
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self.stop()

    def stop(self) -> None:
        """Drain: router first, then the workers; idempotent."""
        self.router.draining = True
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.supervisor.stop()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The router's bound (host, port) -- resolves ephemeral port 0."""
        if self._httpd is None:
            raise RuntimeError("cluster not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"
