"""Consistent hashing of solve fingerprints onto worker shards.

The router must send identical work to the same worker (coalescing and
the in-memory cache tier are per-process), and must not reshuffle the
whole keyspace when the fleet grows or shrinks.  A consistent hash
ring gives both: each shard owns many small arcs of the SHA-256 key
space via virtual nodes, lookups are a binary search, and adding or
removing one shard moves only the arcs it owns (~1/N of keys).

Shard keys here are already uniform hex digests
(:func:`~repro.runtime.fingerprint.solve_fingerprint`), but the ring
hashes them again so arbitrary strings (session ids, raw-body digests)
route just as evenly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

#: Virtual nodes per shard.  At 64 the worst/best arc-share ratio over
#: small fleets stays within ~2x, plenty for <=16 workers; raising it
#: buys smoothness linearly in ring-build time.
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    """A position on the ring: the first 8 bytes of SHA-256."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Maps string keys to shard names, consistently.

    >>> ring = HashRing(["worker-0", "worker-1"])
    >>> ring.route("deadbeef") in ("worker-0", "worker-1")
    True

    The mapping is a pure function of the shard-name set: every router
    (and test) derives the same placement independently, with no
    coordination state to persist or replicate.
    """

    def __init__(
        self,
        shards: Sequence[str],
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if not shards:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names: {sorted(shards)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._shards: List[str] = list(shards)
        points: List[Tuple[int, str]] = []
        for shard in self._shards:
            for replica in range(replicas):
                points.append((_point(f"{shard}#{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @property
    def shards(self) -> List[str]:
        return list(self._shards)

    def route(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise of its hash)."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._owners[index]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each shard owns (diagnostics, tests)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards
