"""Sharded multi-worker serving: router, supervisor, shared cache tier.

The single-process :class:`~repro.serve.app.SolveService` tops out at
what one core can solve.  This package scales it *horizontally* without
touching the solve path: N worker processes each run an unmodified
``SolveService`` on its own port, a **router** process owns the public
address and forwards every request to the worker that owns its shard,
and a **supervisor** keeps the workers alive (health checks, bounded
respawn-with-backoff, drain on SIGTERM).

The shard key is the content-addressed **solve fingerprint**
(:mod:`repro.runtime.fingerprint`): identical instances land on the
same worker, so in-memory cache hits and request coalescing keep
working across the fleet, and sessions stay sticky to the shard that
holds their live evaluator state.  The workers share one crash-safe
on-disk :class:`~repro.runtime.cache.ScheduleCache` directory as the
cross-worker tier, so work done on one shard is visible to all.

Entry points:

- ``repro serve --workers N`` -- boot a cluster in the foreground;
- :class:`~repro.cluster.service.ClusterService` -- embed one (tests);
- ``repro loadgen`` / :mod:`repro.cluster.loadgen` -- drive open-loop
  load at a target rps and report p50/p95/p99 against an SLO.
"""

from repro.cluster.hashring import HashRing
from repro.cluster.loadgen import LoadgenConfig, run_loadgen
from repro.cluster.router import Router
from repro.cluster.service import ClusterConfig, ClusterService
from repro.cluster.supervisor import Supervisor, WorkerHandle

__all__ = [
    "ClusterConfig",
    "ClusterService",
    "HashRing",
    "LoadgenConfig",
    "Router",
    "Supervisor",
    "WorkerHandle",
    "run_loadgen",
]
