"""The router: one public address in front of N shard workers.

The router is deliberately dumb about *solving* -- it never parses a
response beyond what routing needs, and relays worker bytes verbatim
(the differential serve tests pin responses byte-identical to a direct
solve, and a byte-copying router keeps that property for free).  It is
smart about exactly three things:

**Placement.**  Solve-shaped requests are routed by their content
fingerprint (:func:`~repro.runtime.fingerprint.solve_fingerprint`)
over a consistent :class:`~repro.cluster.hashring.HashRing`, so
identical instances land on the same worker and keep coalescing and
the in-memory cache tier effective.  A body that cannot be
fingerprinted (invalid, or a randomized method without a seed) routes
by the SHA-256 of its raw bytes -- same bytes, same worker; the worker
owns producing the structured validation error.  Session creation
routes by the *initial solve's* fingerprint, so a session lands where
its cold solve would have; thereafter the learned ``id -> shard``
table keeps every delta on the shard holding the live evaluator
state.  An id the table has never seen (a router restart) is found by
fan-out: only the owning worker answers non-404.

**Deadline accounting.**  Each forwarded request carries the
*remaining* budget in ``X-Repro-Deadline`` -- the router's configured
timeout minus time already burnt queueing and retrying here -- so a
worker never spends longer on a request than the client has left.
Worker timeouts surface as the worker's own structured 503
(``timeout``), relayed untouched; a hop that dies on the wire becomes
the same taxonomy (503 ``timeout`` / ``transient-failure``) the
single-process service uses.

**Crash absorption.**  A connection-refused forward usually means the
supervisor is mid-respawn of that shard.  Idempotent requests (solve,
simulate, GETs -- deterministic and content-addressed) are retried
against the fresh worker within the deadline; non-idempotent session
mutations are never replayed (a delta that may have applied must not
apply twice) and fail as structured 503s the client can retry at its
own seq.  When the table says a shard owned a session but the worker
answers ``unknown-session`` (crash with checkpointing disabled), the
router answers a structured **410 session-gone**: the session is
unrecoverable, and an honest "gone, recreate it" beats a lying 404.

Chaos reaches the hop through the ``router.forward`` injector site
(error/sleep), so ``repro chaos --cluster-workers`` can prove the
taxonomy above under fire.
"""

from __future__ import annotations

import hashlib
import json
import re
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.hashring import HashRing
from repro.cluster.supervisor import Supervisor
from repro.faults.injector import InjectedFaultError, maybe_hit
from repro.obs import events as obs_events
from repro.obs.catalog import describe_standard_metrics
from repro.obs.export import to_prometheus
from repro.obs.registry import get_registry
from repro.runtime.fingerprint import solve_fingerprint
from repro.serve import schemas
from repro.serve.handlers import DEADLINE_HEADER

_SESSION_ROUTE = re.compile(
    r"^(?:/v1)?/session(?:/(?P<id>[A-Za-z0-9_-]+)"
    r"(?:/(?P<action>delta|schedule))?)?$"
)

_REQUESTS_HELP = "Router requests by endpoint and status code"
_FORWARD_HELP = "Router-to-worker forward wall time"
_FORWARD_ERRORS_HELP = "Failed forwards by worker and failure kind"

#: Paths safe to replay against a respawned worker: deterministic,
#: content-addressed reads/solves.  Session mutations are absent on
#: purpose -- a delta that *may* have applied must never apply twice.
_IDEMPOTENT_ENDPOINTS = frozenset(
    {"solve", "simulate", "session-schedule", "metrics", "healthz"}
)

CLUSTER_HEALTH_KIND = "repro-cluster-health"


class ForwardError(Exception):
    """A forward that produced no worker response (wire-level failure).

    ``kind`` encodes what the failure implies about delivery:

    - ``refused``/``injected``: the request was **never delivered**
      (connect failed, worker down, fault fired before the send) --
      safe to retry for *any* request, session mutations included;
    - ``broken``: the connection died after the send -- the worker may
      have applied the request, so only idempotent work retries;
    - ``timeout``: the worker may still be working -- never retried.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind  # "refused" | "broken" | "timeout" | "injected"


class Router:
    """Routing brain shared by every handler thread (no HTTP in here)."""

    def __init__(
        self,
        supervisor: Supervisor,
        request_timeout: float = 60.0,
        retry_attempts: int = 6,
    ) -> None:
        self.supervisor = supervisor
        self.ring = HashRing(supervisor.shards())
        self.request_timeout = request_timeout
        self.retry_attempts = retry_attempts
        self.draining = False
        self._lock = threading.Lock()
        self._session_table: Dict[str, str] = {}
        self._started_at = time.monotonic()

    # -- placement -----------------------------------------------------

    def shard_for_body(self, path: str, raw: bytes) -> str:
        """The shard owning a solve-shaped request body.

        Any parse or fingerprint failure falls back to hashing the raw
        bytes: routing must be total and deterministic, and the worker
        is the one that owes the client a structured error.
        """
        key: Optional[str] = None
        try:
            document = json.loads(raw.decode("utf-8"))
            if _SESSION_ROUTE.match(path):
                document = {
                    field: document[field]
                    for field in ("problem", "method", "seed")
                    if field in document
                }
            problem, method, seed = schemas.parse_solve_request(document)
            key = solve_fingerprint(problem, method, seed)
        except Exception:
            key = None
        if key is None:
            key = hashlib.sha256(raw).hexdigest()
        return self.ring.route(key)

    def session_shard(self, session_id: str) -> Optional[str]:
        with self._lock:
            return self._session_table.get(session_id)

    def learn_session(self, session_id: str, shard: str) -> None:
        with self._lock:
            self._session_table[session_id] = shard
        obs_events.emit("router.session", id=session_id, shard=shard)

    def forget_session(self, session_id: str) -> None:
        with self._lock:
            self._session_table.pop(session_id, None)

    def session_count(self) -> int:
        with self._lock:
            return len(self._session_table)

    # -- the hop -------------------------------------------------------

    def forward(
        self,
        shard: str,
        method: str,
        path: str,
        body: Optional[bytes],
        deadline: float,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """One attempt against ``shard``; returns (status, body, headers).

        Worker error statuses are *responses*, not exceptions -- they
        relay as-is.  Only wire-level failures raise
        :class:`ForwardError`.
        """
        budget = deadline - time.monotonic()
        if budget <= 0.0:
            raise ForwardError("timeout", "request deadline exhausted")
        try:
            maybe_hit("router.forward", shard=shard, path=path)
        except InjectedFaultError as error:
            raise ForwardError("injected", str(error)) from error
        address = self.supervisor.address(shard)
        if address is None:
            raise ForwardError("refused", f"worker {shard} is down")
        host, port = address
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=body,
            method=method,
            headers={
                "Content-Type": "application/json",
                DEADLINE_HEADER: f"{budget:.3f}",
            },
        )
        started = time.perf_counter()
        try:
            with urllib.request.urlopen(
                request, timeout=min(budget, self.request_timeout)
            ) as response:
                payload = response.read()
                status = response.status
                headers = dict(response.headers.items())
        except urllib.error.HTTPError as error:
            payload = error.read()
            status = error.code
            headers = dict(error.headers.items())
        except (socket.timeout, TimeoutError) as error:
            self._count_forward_error(shard, "timeout")
            raise ForwardError(
                "timeout", f"worker {shard} did not answer in time"
            ) from error
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            reason = getattr(error, "reason", error)
            if isinstance(reason, (socket.timeout, TimeoutError)):
                kind = "timeout"
            elif isinstance(reason, ConnectionRefusedError):
                kind = "refused"  # connect failed: never delivered
            else:
                kind = "broken"  # died after the send: maybe applied
            self._count_forward_error(shard, kind)
            raise ForwardError(
                kind, f"worker {shard} unreachable: {error}"
            ) from error
        get_registry().histogram(
            "repro_router_forward_seconds", _FORWARD_HELP, worker=shard
        ).observe(time.perf_counter() - started)
        return status, payload, headers

    def _count_forward_error(self, shard: str, kind: str) -> None:
        get_registry().counter(
            "repro_router_forward_errors_total",
            _FORWARD_ERRORS_HELP,
            worker=shard,
            kind=kind,
        ).inc()

    # -- aggregate health ----------------------------------------------

    def cluster_health(self) -> Tuple[int, Dict[str, Any]]:
        """Fan out to every worker; one JSON document for the fleet."""
        workers: List[Dict[str, Any]] = []
        healthy = 0
        for entry in self.supervisor.describe():
            record: Dict[str, Any] = dict(entry)
            address = self.supervisor.address(entry["shard"])
            if address is not None and entry["state"] == "up":
                host, port = address
                try:
                    with urllib.request.urlopen(
                        f"http://{host}:{port}/healthz", timeout=2.0
                    ) as response:
                        detail = json.loads(response.read().decode("utf-8"))
                except (urllib.error.URLError, OSError, ValueError):
                    record["state"] = "restarting"  # alive pid, dead socket
                else:
                    healthy += 1
                    record["status"] = detail.get("status")
                    record["sessions"] = detail.get("sessions")
                    record["queue_depth"] = detail.get("queue_depth")
                    record["breaker"] = detail.get("breaker")
            workers.append(record)
        if self.draining:
            status = "draining"
        elif healthy == len(workers):
            status = "ok"
        elif healthy > 0:
            status = "degraded"
        else:
            status = "down"
        body = {
            "kind": CLUSTER_HEALTH_KIND,
            "version": schemas.WIRE_VERSION,
            "status": status,
            "workers": workers,
            "router": {
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3
                ),
                "sessions_routed": self.session_count(),
            },
        }
        return (503 if status in ("draining", "down") else 200), body


class RouterHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer handing its handlers the router object."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], router: Router):
        self.router = router
        super().__init__(address, RouterRequestHandler)


class RouterRequestHandler(BaseHTTPRequestHandler):
    """One connection's worth of routing (threaded, like the workers)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-router/1"

    @property
    def router(self) -> Router:
        return self.server.router  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/healthz":
            self._timed("healthz", self._handle_healthz)
        elif self.path == "/metrics":
            self._timed("metrics", self._handle_metrics)
        else:
            session = _SESSION_ROUTE.match(self.path)
            if session is not None and session.group("id"):
                self._timed(
                    "session-schedule",
                    lambda: self._handle_session(
                        "GET", session.group("id"), None
                    ),
                )
            else:
                self._timed("proxy", lambda: self._proxy_by_body("GET"))

    def do_POST(self) -> None:  # noqa: N802
        session = _SESSION_ROUTE.match(self.path)
        if session is not None and session.group("id"):
            self._timed(
                "session-delta",
                lambda: self._handle_session(
                    "POST", session.group("id"), self._read_body()
                ),
            )
        elif session is not None:
            self._timed("session", self._handle_session_create)
        else:
            endpoint = (
                "solve"
                if self.path == "/v1/solve"
                else "simulate"
                if self.path == "/v1/simulate"
                else "proxy"
            )
            self._timed(endpoint, lambda: self._proxy_by_body("POST"))

    def do_DELETE(self) -> None:  # noqa: N802
        session = _SESSION_ROUTE.match(self.path)
        if session is not None and session.group("id"):
            self._timed(
                "session-delete",
                lambda: self._handle_session(
                    "DELETE", session.group("id"), None
                ),
            )
        else:
            self._timed("proxy", lambda: self._proxy_by_body("DELETE"))

    # -- handlers ------------------------------------------------------

    def _handle_healthz(self) -> Tuple[int, bytes, str]:
        status, body = self.router.cluster_health()
        return status, schemas.encode(body), "healthz"

    def _handle_metrics(self) -> Tuple[int, bytes, str]:
        registry = get_registry()
        describe_standard_metrics(registry)
        return 200, to_prometheus(registry).encode("utf-8"), "metrics"

    def _proxy_by_body(self, method: str) -> Tuple[int, bytes, str]:
        """Route a solve-shaped request by its content fingerprint."""
        router = self.router
        if router.draining:
            return self._structured(
                503, "shutting-down", "cluster is draining; retry elsewhere"
            )
        body = self._read_body() if method == "POST" else None
        shard = router.shard_for_body(self.path, body or b"")
        return self._forward_with_retries(shard, method, body)

    def _handle_session_create(self) -> Tuple[int, bytes, str]:
        router = self.router
        if router.draining:
            return self._structured(
                503, "shutting-down", "cluster is draining; retry elsewhere"
            )
        body = self._read_body()
        shard = router.shard_for_body(self.path, body or b"")
        status, payload, headers = self._forward_with_retries(
            shard, "POST", body
        )
        if status == 200:
            session_id = _session_id_of(payload)
            if session_id is not None:
                router.learn_session(session_id, shard)
        return status, payload, headers

    def _handle_session(
        self, method: str, session_id: str, body: Optional[bytes]
    ) -> Tuple[int, bytes, str]:
        """Route an existing session's request to its sticky shard."""
        router = self.router
        if router.draining:
            return self._structured(
                503, "shutting-down", "cluster is draining; retry elsewhere"
            )
        shard = router.session_shard(session_id)
        if shard is None:
            return self._session_fanout(method, session_id, body)
        status, payload, headers = self._forward_with_retries(
            shard, method, body
        )
        if status == 404 and _error_code_of(payload) == "unknown-session":
            # The table says this shard owned the session, the worker
            # says it has never heard of it: the state died with a
            # crashed worker (checkpointing disabled).  Honest answer:
            # gone, not unknown.
            router.forget_session(session_id)
            return self._structured(
                410,
                "session-gone",
                f"session {session_id!r} was lost when its worker "
                "crashed (no checkpointing); recreate it",
            )
        if status in (200,) and method == "DELETE":
            router.forget_session(session_id)
        elif status == 410:
            router.forget_session(session_id)
        return status, payload, headers

    def _session_fanout(
        self, method: str, session_id: str, body: Optional[bytes]
    ) -> Tuple[int, bytes, str]:
        """Find an unknown session id by asking every shard.

        Only the owning worker answers anything but ``unknown-session``
        (ids are uuid-unique across the fleet), so the first non-404
        answer is authoritative.  Used after a router restart, when the
        learned table is empty but workers still hold live sessions.
        """
        router = self.router
        last: Optional[Tuple[int, bytes, Dict[str, str]]] = None
        for shard in router.ring.shards:
            try:
                status, payload, headers = router.forward(
                    shard, method, self.path, body, self._deadline
                )
            except ForwardError:
                continue
            content_type = _content_type_of(headers)
            if status == 404 and _error_code_of(payload) == "unknown-session":
                last = (status, payload, content_type)
                continue
            router.learn_session(session_id, shard)
            return status, payload, content_type
        if last is not None:
            return last
        return self._structured(
            404, "unknown-session", f"no shard knows session {session_id!r}"
        )

    # -- forwarding ----------------------------------------------------

    def _forward_with_retries(
        self, shard: str, method: str, body: Optional[bytes]
    ) -> Tuple[int, bytes, str]:
        """Forward, absorbing respawn gaps for idempotent requests."""
        router = self.router
        endpoint = self._endpoint_name(method)
        idempotent = endpoint in _IDEMPOTENT_ENDPOINTS
        failure: Optional[ForwardError] = None
        for attempt in range(router.retry_attempts):
            try:
                status, payload, headers = router.forward(
                    shard, method, self.path, body, self._deadline
                )
            except ForwardError as error:
                failure = error
                # Undelivered failures (refused/injected) retry for any
                # request -- the worker is likely mid-respawn and the
                # mutation cannot have applied.  A connection that died
                # mid-flight only retries idempotent work.
                undelivered = error.kind in ("refused", "injected")
                if not undelivered and not (
                    idempotent and error.kind == "broken"
                ):
                    break
                remaining = self._deadline - time.monotonic()
                if remaining <= 0.1:
                    break
                time.sleep(min(0.25 * (attempt + 1), remaining / 2))
                continue
            return status, payload, _content_type_of(headers)
        assert failure is not None
        if failure.kind == "timeout":
            return self._structured(503, "timeout", str(failure))
        return self._structured(503, "transient-failure", str(failure))

    def _structured(
        self, status: int, code: str, message: str
    ) -> Tuple[int, bytes, str]:
        return (
            status,
            schemas.encode(schemas.error_body(code, message)),
            "application/json; charset=utf-8",
        )

    def _endpoint_name(self, method: str) -> str:
        session = _SESSION_ROUTE.match(self.path)
        if self.path == "/v1/solve":
            return "solve"
        if self.path == "/v1/simulate":
            return "simulate"
        if session is not None:
            if not session.group("id"):
                return "session"
            if method == "DELETE":
                return "session-delete"
            if session.group("action") == "delta":
                return "session-delta"
            return "session-schedule"
        return "proxy"

    # -- plumbing ------------------------------------------------------

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        return self.rfile.read(length) if length > 0 else b""

    def _timed(self, endpoint: str, handler) -> None:
        self._deadline = time.monotonic() + self.router.request_timeout
        start = time.perf_counter()
        try:
            status, payload, content_type = handler()
        except Exception as error:  # never hang a client on a router bug
            status, payload, content_type = self._structured(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        if content_type == "metrics":
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif content_type == "healthz" or not content_type.startswith(
            ("text/", "application/")
        ):
            content_type = "application/json; charset=utf-8"
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if status == 429:
                self.send_header("Retry-After", "1")
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass
        registry = get_registry()
        registry.counter(
            "repro_router_requests_total",
            _REQUESTS_HELP,
            endpoint=endpoint,
            status=str(status),
        ).inc()
        registry.histogram(
            "repro_server_request_seconds",
            "HTTP request wall time by endpoint",
            endpoint=f"router-{endpoint}",
        ).observe(time.perf_counter() - start)

    def log_message(self, format: str, *args: Any) -> None:
        obs_events.emit(
            "router.access",
            client=self.client_address[0],
            line=format % args,
        )


def _content_type_of(headers: Dict[str, str]) -> str:
    for name, value in headers.items():
        if name.lower() == "content-type":
            return value
    return "application/json; charset=utf-8"


def _session_id_of(payload: bytes) -> Optional[str]:
    """The session id inside a create response, or ``None``."""
    try:
        document = json.loads(payload.decode("utf-8"))
        session_id = document["session"]["id"]
    except (ValueError, KeyError, TypeError):
        return None
    return session_id if isinstance(session_id, str) else None


def _error_code_of(payload: bytes) -> Optional[str]:
    """The structured error code inside a worker error body, if any."""
    try:
        document = json.loads(payload.decode("utf-8"))
        code = document["error"]["code"]
    except (ValueError, KeyError, TypeError):
        return None
    return code if isinstance(code, str) else None
