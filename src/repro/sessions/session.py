"""A long-lived scheduling session: incumbent schedule + delta re-solve.

A :class:`Session` is the stateful counterpart of one
:func:`repro.core.solver.solve` call.  It holds

- the current :class:`~repro.core.problem.SchedulingProblem` (which
  deltas evolve),
- the failed-sensor set (live sensors = all minus failed),
- the incumbent one-period assignment, and
- one live :class:`~repro.utility.incremental.IncrementalEvaluator`
  per slot, kept exactly in sync with the assignment,

and consumes :class:`~repro.sessions.deltas.Delta` edits.  Each apply
picks the cheapest sound re-solve:

``warm``
    The default.  Failures drop the sensor and re-balance around its
    vacated slot; recoveries/additions place with
    :func:`~repro.core.repair.best_slot_for`; weight edits re-base the
    evaluators and sweep every slot.  All of it runs through
    :func:`~repro.core.repair.scoped_repair` -- O(live) per cascade
    round, no heap rebuild, which is where the >= 5x delta-vs-cold
    speedup pinned in ``BENCH_sessions.json`` comes from.
``cold``
    Structural deltas (``T`` changed) and every delta of a
    ``consistency="exact"`` session re-run the greedy planner over the
    live set (:func:`~repro.core.repair.greedy_repair`, which with no
    constraints is bit-for-bit Algorithm 1 restricted to the
    survivors; ``greedy+ls`` sessions add the local-search polish).
``memo``
    States already visited this session (fingerprint match) re-adopt
    their stored assignment outright; a failure-free state additionally
    consults the global :class:`~repro.runtime.cache.ScheduleCache`,
    because its fingerprint *is* the one-shot solve key
    (:func:`~repro.runtime.fingerprint.session_fingerprint`).

Consistency contract (see docs/SESSIONS.md): ``exact`` sessions always
answer exactly what a cold re-plan over the current live set would;
``warm`` sessions answer a repaired incumbent -- always feasible, never
worse than the unrepaired incumbent, and equal to the cold answer for
the homogeneous family (balanced counts are balanced counts).  The
:meth:`Session.full_resolve` escape hatch re-plans from a from-scratch
reconstruction of the instance and *asserts* the in-memory state
produces the identical plan, so state corruption is detectable, not
silent.

Every apply is transactional: state (assignment, evaluators via their
snapshot/restore tokens, problem, failed set, lineage) is snapshotted
first and restored on *any* failure -- a delta that raises leaves the
session exactly where it was, counted in
``repro_session_rollbacks_total``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.repair import best_slot_for, greedy_repair, scoped_repair
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.energy.period import ChargingPeriod
from repro.io.serialization import (
    utility_from_dict,
    utility_to_dict,
)
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.runtime.fingerprint import (
    UncacheableError,
    chain_fingerprint,
    problem_to_dict,
    session_fingerprint,
)
from repro.runtime.retry import remaining_budget
from repro.sessions.deltas import Delta, DeltaError, apply_delta
from repro.utility.base import UtilityFunction
from repro.utility.incremental import flush_ops, make_evaluator

CONSISTENCY_MODES: Tuple[str, ...] = ("warm", "exact")

#: Methods a session can warm-start.  The cold path must be expressible
#: as greedy_repair(+local_search) over an arbitrary live subset, which
#: rules out the randomized and LP methods.
SESSION_METHODS: Tuple[str, ...] = ("greedy", "greedy+ls")

_DELTAS_HELP = "Session deltas by kind and outcome"
_RESOLVE_HELP = "Session re-solve wall time by resolve mode"
_ROLLBACKS_HELP = "Session delta rollbacks (state restored after a failure)"
_CACHE_HITS_HELP = "Session re-solves answered from a cache (memo/global)"

#: Lineage entries kept in memory/checkpoints (the fingerprints still
#: chain over the full history; only the stored tail is bounded).
MAX_LINEAGE = 256


class SessionError(RuntimeError):
    """Base session failure; ``code`` is stable for the wire."""

    code = "session-error"

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class SessionClosedError(SessionError):
    """The session was deleted/evicted; in-flight work must not commit."""

    code = "session-evicted"


class SessionStateError(SessionError):
    """An invariant broke; the failing apply was rolled back."""

    code = "session-state"


class ColdResolveUnavailableError(SessionError):
    """A structural delta needs a cold solve the caller disallowed."""

    code = "degraded-unavailable"


def period_utility_of(
    assignment: Dict[int, int], utility: UtilityFunction, slots: int
) -> float:
    """Canonical per-period utility of an assignment.

    Slot sets are built as ``frozenset(sorted(members))`` so two
    independently maintained copies of the same assignment always sum
    the same floats in the same order -- the bit-for-bit anchor the
    differential suite (and :meth:`Session.full_resolve`) compares on.
    """
    total = 0.0
    for t in range(slots):
        members = frozenset(
            sorted(v for v, slot in assignment.items() if slot == t)
        )
        total += utility.value(members)
    return total


def problem_to_state(problem: SchedulingProblem) -> Dict[str, Any]:
    """Checkpoint document for a problem (serializable families only)."""
    return {
        "num_sensors": problem.num_sensors,
        "discharge_time": problem.period.discharge_time,
        "recharge_time": problem.period.recharge_time,
        "num_periods": problem.num_periods,
        "utility": utility_to_dict(problem.utility),
    }


def problem_from_state(state: Dict[str, Any]) -> SchedulingProblem:
    """Inverse of :func:`problem_to_state`."""
    return SchedulingProblem(
        num_sensors=int(state["num_sensors"]),
        period=ChargingPeriod(
            discharge_time=float(state["discharge_time"]),
            recharge_time=float(state["recharge_time"]),
        ),
        utility=utility_from_dict(state["utility"]),
        num_periods=int(state["num_periods"]),
    )


@dataclass
class DeltaOutcome:
    """What one committed apply (or full_resolve) did."""

    seq: int
    kind: str
    resolve: str  # "warm" | "cold" | "memo" | "none"
    moves: int = 0
    seconds: float = 0.0
    period_utility: float = 0.0
    fingerprint: Optional[str] = None
    lineage: Optional[str] = None
    degraded: bool = False
    structural: bool = False


@dataclass
class _Snapshot:
    problem: SchedulingProblem
    failed: Set[int]
    assignment: Dict[int, int]
    evaluators_ref: Any
    evaluator_tokens: Optional[List[Tuple[Any, ...]]]
    last_slot: Dict[int, int]
    seq: int
    state_fingerprint: Optional[str]
    lineage_head: Optional[str]
    lineage_len: int


class Session:
    """One mutable scheduling instance under a stream of deltas."""

    def __init__(
        self,
        problem: SchedulingProblem,
        method: str = "greedy",
        seed: Optional[int] = None,
        session_id: str = "",
        consistency: str = "warm",
        cache=None,
        incumbent_assignment: Optional[Dict[int, int]] = None,
        failed: Iterable[int] = (),
        seq: int = 0,
        on_commit: Optional[Callable[["Session"], None]] = None,
    ) -> None:
        if method not in SESSION_METHODS:
            raise ValueError(
                f"sessions support methods {list(SESSION_METHODS)}, "
                f"got {method!r}"
            )
        if consistency not in CONSISTENCY_MODES:
            raise ValueError(
                f"consistency must be one of {list(CONSISTENCY_MODES)}, "
                f"got {consistency!r}"
            )
        if not problem.is_sparse_regime:
            raise ValueError(
                "sessions repair sparse-regime (rho >= 1) schedules; "
                f"got rho={problem.rho:g}"
            )
        self.session_id = session_id
        self.method = method
        self.seed = seed
        self.consistency = consistency
        self.cache = cache
        self.on_commit = on_commit
        self.problem = problem
        self.failed: Set[int] = set(failed)
        bad = [v for v in self.failed if not 0 <= v < problem.num_sensors]
        if bad:
            raise ValueError(f"failed sensors {bad} outside the ground set")
        self.seq = int(seq)
        self.closed = False
        self.released = False
        self._last_slot: Dict[int, int] = {}
        self._memo: Dict[str, Dict[int, int]] = {}
        self._memo_order: List[str] = []
        self._memo_capacity = 16
        self._problem_document: Tuple[Any, Any] = (None, None)

        self.lineage: List[str] = []
        self.state_fingerprint = self._fingerprint()

        if incumbent_assignment is not None:
            live = self.live_sensors()
            if set(incumbent_assignment) != live:
                raise ValueError(
                    "incumbent assignment does not cover exactly the live "
                    "sensor set"
                )
            self.assignment = dict(incumbent_assignment)
            resolve = "adopted"
        else:
            self.assignment, resolve = self._initial_assignment()
        self.evaluators = self._build_evaluators(
            self.problem.utility, self.assignment
        )
        if self.consistency == "warm" and resolve != "adopted":
            # Adopted incumbents (checkpoint restore) must reproduce
            # the persisted state bit-for-bit; fresh plans get polished
            # so the session starts at a move-local optimum.
            self._polish()
        self._check_invariants()
        self._remember(self.state_fingerprint, self.assignment)
        self.created_resolve = resolve
        obs_events.emit(
            "session.created",
            id=self.session_id,
            method=method,
            consistency=consistency,
            num_sensors=problem.num_sensors,
            resolve=resolve,
        )

    # -- basic views ---------------------------------------------------

    def live_sensors(self) -> Set[int]:
        return set(range(self.problem.num_sensors)) - self.failed

    @property
    def slots_per_period(self) -> int:
        return self.problem.slots_per_period

    def period_utility(self) -> float:
        """Canonical current per-period utility (see docs/SESSIONS.md)."""
        self._ensure_open()
        return period_utility_of(
            self.assignment, self.problem.utility, self.slots_per_period
        )

    def schedule(self) -> PeriodicSchedule:
        self._ensure_open()
        return PeriodicSchedule(
            slots_per_period=self.slots_per_period,
            assignment=dict(self.assignment),
            mode=ScheduleMode.ACTIVE_SLOT,
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Mark evicted: nothing may commit after this (flag only --
        resource release is the store's job once no holder remains)."""
        self.closed = True

    def release(self) -> None:
        """Free the live solver state.  Only safe with no in-flight
        holder; the store guarantees that by refcounting checkouts."""
        self.closed = True
        self.released = True
        self.evaluators = []
        self._memo.clear()
        self._memo_order.clear()

    def _ensure_open(self) -> None:
        if self.released:
            raise SessionClosedError(
                f"session {self.session_id or '?'} resources were released"
            )
        if self.closed:
            raise SessionClosedError(
                f"session {self.session_id or '?'} was deleted"
            )

    # -- the one write path --------------------------------------------

    def apply(
        self,
        delta: Delta,
        deadline: Optional[float] = None,
        allow_cold: bool = True,
    ) -> DeltaOutcome:
        """Apply one delta transactionally; returns the commit record.

        ``deadline`` is an absolute ``time.monotonic()`` bound threaded
        into the repair/re-solve inner loops.  ``allow_cold=False`` is
        the circuit-breaker hook: warm repairs still run (they never
        touch the guarded cold path), a structural delta raises
        :class:`ColdResolveUnavailableError`, and an ``exact`` session
        falls back to a warm repair with ``degraded=True`` on the
        outcome -- mirroring the one-shot degraded contract.

        Any failure (validation, deadline, invariant breach, eviction
        racing the apply) rolls the session back to its pre-delta state
        before the exception propagates.
        """
        self._ensure_open()
        registry = get_registry()
        token = self._snapshot()
        start = time.perf_counter()
        try:
            effect = apply_delta(self.problem, self.failed, delta)
            forced_warm = False
            needs_cold = effect.structural or self.consistency == "exact"
            if needs_cold and not allow_cold:
                if effect.structural:
                    raise ColdResolveUnavailableError(
                        f"{delta.kind} changes the period structure and "
                        "needs a cold re-solve, which is currently "
                        "unavailable (circuit breaker open)"
                    )
                needs_cold = False
                forced_warm = True

            self.problem = effect.problem
            self.failed = set(effect.failed)
            next_fingerprint = self._fingerprint()

            memo_hit = (
                next_fingerprint is not None and next_fingerprint in self._memo
            )
            if memo_hit:
                resolve = "memo"
                moves = 0
                self.assignment = dict(self._memo[next_fingerprint])
                self.evaluators = self._build_evaluators(
                    self.problem.utility, self.assignment
                )
                registry.counter(
                    "repro_session_cache_hits_total",
                    _CACHE_HITS_HELP,
                    source="memo",
                ).inc()
            elif needs_cold:
                resolve = "cold"
                moves = 0
                self.assignment = self._cold_assignment(
                    next_fingerprint, deadline
                )
                self.evaluators = self._build_evaluators(
                    self.problem.utility, self.assignment
                )
                if self.consistency == "warm":
                    # A warm session promises a locally-repaired
                    # incumbent; re-establish it after the structural
                    # re-plan so the next delta repairs incrementally.
                    self._polish(deadline)
            else:
                resolve, moves = self._warm_repair(effect, deadline)
            # An exact session forced onto the warm path gave a
            # repaired-incumbent answer, not the exact one it promised.
            degraded = forced_warm and resolve == "warm"
            self._check_invariants()
        except Exception:
            self._restore(token)
            registry.counter(
                "repro_session_rollbacks_total", _ROLLBACKS_HELP
            ).inc()
            registry.counter(
                "repro_session_deltas_total",
                _DELTAS_HELP,
                kind=delta.kind,
                outcome="rolled-back",
            ).inc()
            obs_events.emit(
                "session.rollback", id=self.session_id, delta=delta.kind
            )
            raise
        if self.closed:
            # Eviction raced the resolve: the store already tombstoned
            # this id, so committing now would resurrect freed state.
            self._restore(token)
            registry.counter(
                "repro_session_deltas_total",
                _DELTAS_HELP,
                kind=delta.kind,
                outcome="rolled-back",
            ).inc()
            raise SessionClosedError(
                f"session {self.session_id or '?'} was deleted while the "
                "delta was in flight"
            )

        seconds = time.perf_counter() - start
        self.seq += 1
        self.state_fingerprint = next_fingerprint
        link = self._extend_lineage(delta.to_dict())
        self._remember(next_fingerprint, self.assignment)
        registry.counter(
            "repro_session_deltas_total",
            _DELTAS_HELP,
            kind=delta.kind,
            outcome="ok",
        ).inc()
        registry.histogram(
            "repro_session_resolve_seconds", _RESOLVE_HELP, mode=resolve
        ).observe(seconds)
        utility = self.period_utility()
        obs_events.emit(
            "session.delta",
            id=self.session_id,
            seq=self.seq,
            delta=delta.kind,
            resolve=resolve,
            moves=moves,
            degraded=degraded,
            period_utility=utility,
        )
        outcome = DeltaOutcome(
            seq=self.seq,
            kind=delta.kind,
            resolve=resolve,
            moves=moves,
            seconds=seconds,
            period_utility=utility,
            fingerprint=self.state_fingerprint,
            lineage=link,
            degraded=degraded,
            structural=effect.structural,
        )
        if self.on_commit is not None:
            self.on_commit(self)
        return outcome

    # -- escape hatch --------------------------------------------------

    def full_resolve(self, deadline: Optional[float] = None) -> DeltaOutcome:
        """Cold re-plan from a from-scratch reconstruction, asserted
        equivalent to re-planning the in-memory state.

        The instance is serialized (``problem_to_state``) and rebuilt
        through the family constructors; both the reconstruction and
        the live state are re-planned cold.  A mismatch means the
        incremental bookkeeping corrupted something -- that raises
        :class:`SessionStateError` (after restoring the incumbent), it
        does not get papered over.
        """
        self._ensure_open()
        token = self._snapshot()
        start = time.perf_counter()
        try:
            rebuilt = problem_from_state(problem_to_state(self.problem))
            live = sorted(self.live_sensors())
            fresh = self._plan_cold(rebuilt, live, deadline)
            incumbent_plan = self._plan_cold(self.problem, live, deadline)
            if fresh != incumbent_plan:
                raise SessionStateError(
                    "full-resolve divergence: the re-plan of the live "
                    "session state differs from the re-plan of its "
                    "serialized reconstruction"
                )
            fresh_utility = period_utility_of(
                fresh, rebuilt.utility, rebuilt.slots_per_period
            )
            live_utility = period_utility_of(
                incumbent_plan,
                self.problem.utility,
                self.slots_per_period,
            )
            if fresh_utility != live_utility:
                raise SessionStateError(
                    "full-resolve divergence: equal plans score "
                    f"differently ({fresh_utility!r} vs {live_utility!r}); "
                    "the in-memory utility state is corrupt"
                )
            self.assignment = incumbent_plan
            self.evaluators = self._build_evaluators(
                self.problem.utility, self.assignment
            )
            self._check_invariants()
        except Exception:
            self._restore(token)
            get_registry().counter(
                "repro_session_rollbacks_total", _ROLLBACKS_HELP
            ).inc()
            raise
        seconds = time.perf_counter() - start
        self.seq += 1
        link = self._extend_lineage({"kind": "full-resolve"})
        self._remember(self.state_fingerprint, self.assignment)
        get_registry().histogram(
            "repro_session_resolve_seconds", _RESOLVE_HELP, mode="cold"
        ).observe(seconds)
        utility = self.period_utility()
        obs_events.emit(
            "session.delta",
            id=self.session_id,
            seq=self.seq,
            delta="full-resolve",
            resolve="cold",
            moves=0,
            degraded=False,
            period_utility=utility,
        )
        outcome = DeltaOutcome(
            seq=self.seq,
            kind="full-resolve",
            resolve="cold",
            seconds=seconds,
            period_utility=utility,
            fingerprint=self.state_fingerprint,
            lineage=link,
        )
        if self.on_commit is not None:
            self.on_commit(self)
        return outcome

    # -- checkpointing -------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Checkpoint document (crash-safe persistence via io.checkpoint)."""
        return {
            "session_id": self.session_id,
            "method": self.method,
            "seed": self.seed,
            "consistency": self.consistency,
            "seq": self.seq,
            "problem": problem_to_state(self.problem),
            "failed": sorted(self.failed),
            "assignment": {str(v): t for v, t in self.assignment.items()},
            "fingerprint": self.state_fingerprint,
            "lineage": list(self.lineage),
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        cache=None,
        on_commit: Optional[Callable[["Session"], None]] = None,
    ) -> "Session":
        """Rebuild a session from :meth:`to_state` output."""
        session = cls(
            problem=problem_from_state(state["problem"]),
            method=state["method"],
            seed=state["seed"],
            session_id=state["session_id"],
            consistency=state["consistency"],
            cache=cache,
            incumbent_assignment={
                int(v): int(t) for v, t in state["assignment"].items()
            },
            failed=state["failed"],
            seq=state["seq"],
            on_commit=on_commit,
        )
        session.lineage = list(state.get("lineage", ()))
        obs_events.emit("session.restored", id=session.session_id)
        return session

    # -- internals -----------------------------------------------------

    def _fingerprint(self) -> Optional[str]:
        # Serializing the instance dominates fingerprint cost on large
        # problems, and only structural deltas replace self.problem --
        # memoize the document per problem object so a failure stream
        # hashes in O(document) instead of O(instance) per delta.
        try:
            cached_problem, document = self._problem_document
            if cached_problem is not self.problem:
                document = problem_to_dict(self.problem)
                self._problem_document = (self.problem, document)
            return session_fingerprint(
                self.problem,
                self.method,
                self.seed,
                self.failed,
                problem_document=document,
            )
        except UncacheableError:
            return None

    def _initial_assignment(self) -> Tuple[Dict[int, int], str]:
        fingerprint = self.state_fingerprint
        if (
            self.cache is not None
            and fingerprint is not None
            and not self.failed
        ):
            cached = self.cache.peek_result(fingerprint, self.problem)
            if cached is not None and cached.periodic is not None:
                get_registry().counter(
                    "repro_session_cache_hits_total",
                    _CACHE_HITS_HELP,
                    source="global",
                ).inc()
                return dict(cached.periodic.assignment), "cache"
        live = sorted(self.live_sensors())
        return self._plan_cold(self.problem, live, None), "cold"

    def _plan_cold(
        self,
        problem: SchedulingProblem,
        live: List[int],
        deadline: Optional[float],
    ) -> Dict[int, int]:
        """The session's cold path: Algorithm 1 over the live subset.

        With every sensor allowed everywhere greedy_repair is
        bit-for-bit the lazy greedy of core.greedy restricted to
        ``live`` -- the equivalence the differential suite pins.
        """
        remaining_budget(deadline)
        schedule = greedy_repair(
            live, problem.slots_per_period, problem.utility
        )
        if self.method == "greedy+ls":
            from repro.core.local_search import local_search

            schedule = local_search(problem, schedule, deadline=deadline)
        return dict(schedule.assignment)

    def _cold_assignment(
        self, fingerprint: Optional[str], deadline: Optional[float]
    ) -> Dict[int, int]:
        if (
            self.cache is not None
            and fingerprint is not None
            and not self.failed
        ):
            cached = self.cache.peek_result(fingerprint, self.problem)
            if cached is not None and cached.periodic is not None:
                get_registry().counter(
                    "repro_session_cache_hits_total",
                    _CACHE_HITS_HELP,
                    source="global",
                ).inc()
                return dict(cached.periodic.assignment)
        live = sorted(self.live_sensors())
        return self._plan_cold(self.problem, live, deadline)

    def _polish(self, deadline: Optional[float] = None) -> int:
        """Drive the incumbent to a move-local optimum (all slots dirty).

        Greedy plans are not local optima; without this, the *first*
        warm repair after a fresh plan absorbs the whole backlog of
        profitable moves and delta latency looks like a full local
        search.  Paying it once at plan time keeps every subsequent
        delta genuinely incremental.  The round cap is a convergence
        backstop, not a budget -- each move strictly increases a
        bounded objective, so the sweep terminates on its own.
        """
        return scoped_repair(
            self.assignment,
            self.evaluators,
            self.live_sensors(),
            range(self.problem.slots_per_period),
            max_rounds=1024,
            deadline=deadline,
        )

    def _warm_repair(self, effect, deadline: Optional[float]) -> Tuple[str, int]:
        dirty: List[int] = list(effect.dirty_slots)
        for v in effect.drop_sensors:
            home = self.assignment.pop(v)
            self.evaluators[home].remove(v)
            self._last_slot[v] = home
            dirty.append(home)
        if effect.utility_changed:
            # New function object: re-base every evaluator onto the
            # current slot sets (same snapshot-exact rebase local_search
            # uses).
            self.evaluators = self._build_evaluators(
                self.problem.utility, self.assignment
            )
        for v in effect.place_sensors:
            slot = best_slot_for(
                v, self.evaluators, prefer=self._last_slot.get(v)
            )
            self.evaluators[slot].add(v)
            self.assignment[v] = slot
            dirty.append(slot)
        if not dirty:
            return "none", 0
        moves = scoped_repair(
            self.assignment,
            self.evaluators,
            self.live_sensors(),
            dirty,
            deadline=deadline,
        )
        return "warm", moves

    def _build_evaluators(
        self, utility: UtilityFunction, assignment: Dict[int, int]
    ):
        slots = self.problem.slots_per_period
        members: List[List[int]] = [[] for _ in range(slots)]
        for v, t in assignment.items():
            members[t].append(v)
        evaluators = [make_evaluator(utility) for _ in range(slots)]
        for t, sensors in enumerate(members):
            evaluators[t].reset(frozenset(sorted(sensors)))
        flush_ops(evaluators)
        return evaluators

    def _snapshot(self) -> _Snapshot:
        try:
            tokens = [e.snapshot() for e in self.evaluators]
        except Exception:
            tokens = None
        return _Snapshot(
            problem=self.problem,
            failed=set(self.failed),
            assignment=dict(self.assignment),
            evaluators_ref=self.evaluators,
            evaluator_tokens=tokens,
            last_slot=dict(self._last_slot),
            seq=self.seq,
            state_fingerprint=self.state_fingerprint,
            lineage_head=self.lineage[-1] if self.lineage else None,
            lineage_len=len(self.lineage),
        )

    def _restore(self, token: _Snapshot) -> None:
        self.problem = token.problem
        self.failed = set(token.failed)
        self.assignment = dict(token.assignment)
        self._last_slot = dict(token.last_slot)
        self.seq = token.seq
        self.state_fingerprint = token.state_fingerprint
        del self.lineage[token.lineage_len:]
        restored = False
        if (
            token.evaluator_tokens is not None
            # Tokens only mean anything to the evaluator objects they
            # were taken from; a swapped evaluator list (structural or
            # utility-changing delta) must be rebuilt instead.
            and self.evaluators is token.evaluators_ref
            and len(self.evaluators) == len(token.evaluator_tokens)
        ):
            try:
                for evaluator, state in zip(
                    self.evaluators, token.evaluator_tokens
                ):
                    evaluator.restore(state)
                restored = True
            except Exception:
                restored = False
        if not restored:
            # Structural change already swapped the evaluator list (or a
            # restore failed): rebuild from the restored assignment.
            self.evaluators = self._build_evaluators(
                token.problem.utility, self.assignment
            )

    def _check_invariants(self) -> None:
        live = self.live_sensors()
        assigned = set(self.assignment)
        if assigned != live:
            missing = sorted(live - assigned)
            extra = sorted(assigned - live)
            raise SessionStateError(
                "assignment does not cover the live set "
                f"(missing={missing}, extra={extra})"
            )
        slots = self.slots_per_period
        bad = {v: t for v, t in self.assignment.items() if not 0 <= t < slots}
        if bad:
            raise SessionStateError(
                f"assignment maps sensors outside 0..{slots - 1}: {bad}"
            )

    def _extend_lineage(self, delta_document: Dict[str, Any]) -> str:
        parent = (
            self.lineage[-1]
            if self.lineage
            else (self.state_fingerprint or "uncacheable")
        )
        link = chain_fingerprint(parent, delta_document)
        self.lineage.append(link)
        if len(self.lineage) > MAX_LINEAGE:
            del self.lineage[: len(self.lineage) - MAX_LINEAGE]
        return link

    def _remember(
        self, fingerprint: Optional[str], assignment: Dict[int, int]
    ) -> None:
        if fingerprint is None:
            return
        if fingerprint not in self._memo:
            self._memo_order.append(fingerprint)
            if len(self._memo_order) > self._memo_capacity:
                evicted = self._memo_order.pop(0)
                self._memo.pop(evicted, None)
        self._memo[fingerprint] = dict(assignment)
