"""Long-lived scheduling sessions: delta streams over a live schedule.

The paper's deployment is online -- sensors fail, weather shifts
``rho``, target weights drift -- but :func:`repro.core.solver.solve`
is one-shot.  This package makes the schedule a *mutable, repairable
object*:

- :mod:`repro.sessions.deltas` -- the typed edit grammar and its pure
  application semantics;
- :mod:`repro.sessions.session` -- :class:`Session`: incumbent
  assignment + live per-slot incremental evaluators, warm-start
  re-solve (:func:`repro.core.repair.scoped_repair`), transactional
  rollback, fingerprint lineage, and the asserted-equivalent
  ``full_resolve`` escape hatch;
- :mod:`repro.sessions.store` -- the bounded, TTL-evicting,
  checkpointing :class:`SessionStore` the HTTP service mounts at
  ``/v1/session``;
- :mod:`repro.sessions.replay` -- deterministic replay of a JSONL
  delta log (``repro session replay``).

See docs/SESSIONS.md for the lifecycle, delta grammar, and the
warm-vs-exact consistency contract.
"""

from repro.sessions.deltas import (
    DELTA_KINDS,
    Delta,
    DeltaError,
    apply_delta,
    delta_from_dict,
)
from repro.sessions.session import (
    CONSISTENCY_MODES,
    SESSION_METHODS,
    ColdResolveUnavailableError,
    DeltaOutcome,
    Session,
    SessionClosedError,
    SessionError,
    SessionStateError,
    period_utility_of,
)
from repro.sessions.store import (
    SessionGoneError,
    SessionNotFoundError,
    SessionStore,
    StoreFullError,
)

__all__ = [
    "DELTA_KINDS",
    "Delta",
    "DeltaError",
    "apply_delta",
    "delta_from_dict",
    "CONSISTENCY_MODES",
    "SESSION_METHODS",
    "ColdResolveUnavailableError",
    "DeltaOutcome",
    "Session",
    "SessionClosedError",
    "SessionError",
    "SessionStateError",
    "period_utility_of",
    "SessionGoneError",
    "SessionNotFoundError",
    "SessionStore",
    "StoreFullError",
]
