"""Deterministic replay of a session delta log (``repro session replay``).

A delta log is JSONL: the first record creates the session, every
following record applies one delta, in order::

    {"kind": "session-create", "problem": {...}, "method": "greedy",
     "consistency": "warm"}
    {"kind": "session-delta", "delta": {"kind": "sensor-failed", "sensor": 3}}
    {"kind": "session-delta", "delta": {"kind": "sensor-recovered", "sensor": 3}}

The ``problem`` document is the same wire format ``POST /v1/solve``
accepts (:func:`repro.serve.schemas.problem_from_wire`), so a captured
service request replays unchanged.  Replay is the offline twin of the
HTTP delta endpoint: same :class:`~repro.sessions.session.Session`
machinery, same resolve modes, no network -- which makes a seeded log
a CI smoke test for the whole subsystem (see the ``sessions-smoke``
job).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.sessions.deltas import delta_from_dict
from repro.sessions.session import Session

PathLike = Union[str, Path]


@dataclass
class ReplayStep:
    """One committed delta during replay."""

    seq: int
    kind: str
    resolve: str
    moves: int
    seconds: float
    period_utility: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "resolve": self.resolve,
            "moves": self.moves,
            "seconds": self.seconds,
            "period_utility": self.period_utility,
        }


@dataclass
class ReplayReport:
    """Everything a replay run produced."""

    num_sensors: int
    slots_per_period: int
    method: str
    consistency: str
    initial_utility: float
    steps: List[ReplayStep] = field(default_factory=list)

    @property
    def final_utility(self) -> float:
        return (
            self.steps[-1].period_utility
            if self.steps
            else self.initial_utility
        )

    @property
    def warm_fraction(self) -> float:
        if not self.steps:
            return 1.0
        warm = sum(1 for s in self.steps if s.resolve in ("warm", "none"))
        return warm / len(self.steps)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-session-replay",
            "version": 1,
            "num_sensors": self.num_sensors,
            "slots_per_period": self.slots_per_period,
            "method": self.method,
            "consistency": self.consistency,
            "initial_utility": self.initial_utility,
            "final_utility": self.final_utility,
            "warm_fraction": self.warm_fraction,
            "steps": [step.to_dict() for step in self.steps],
        }


def load_delta_log(
    path: PathLike,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a log into ``(create_record, delta_records)``; fail loudly."""
    records: List[Dict[str, Any]] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {error}"
                ) from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: record must be an object"
                )
            records.append(record)
    if not records:
        raise ValueError(f"{path}: empty delta log")
    head, tail = records[0], records[1:]
    if head.get("kind") != "session-create":
        raise ValueError(
            f"{path}:1: first record must have kind 'session-create', "
            f"got {head.get('kind')!r}"
        )
    for offset, record in enumerate(tail, start=2):
        if record.get("kind") != "session-delta":
            raise ValueError(
                f"{path}:{offset}: expected kind 'session-delta', "
                f"got {record.get('kind')!r}"
            )
        if "delta" not in record:
            raise ValueError(f"{path}:{offset}: missing 'delta' object")
    return head, tail


def replay_log(
    path: PathLike,
    cache=None,
    deadline: Optional[float] = None,
) -> ReplayReport:
    """Replay a delta log through a fresh in-process session.

    Raises ``ValueError`` for malformed logs and lets
    :class:`~repro.sessions.deltas.DeltaError` /
    :class:`~repro.sessions.session.SessionError` propagate -- the CLI
    maps all of them to its exit-2 invalid-input contract.
    """
    # Imported here: pulling the serve package in at module import
    # would drag the HTTP stack into every `import repro.sessions`.
    from repro.serve.schemas import WireError, problem_from_wire

    create, delta_records = load_delta_log(path)
    if "problem" not in create:
        raise ValueError("session-create record needs a 'problem' object")
    try:
        problem = problem_from_wire(create["problem"])
    except WireError as error:
        raise ValueError(f"invalid problem in delta log: {error}") from error
    session = Session(
        problem=problem,
        method=create.get("method", "greedy"),
        seed=create.get("seed"),
        session_id="replay",
        consistency=create.get("consistency", "warm"),
        cache=cache,
    )
    report = ReplayReport(
        num_sensors=problem.num_sensors,
        slots_per_period=problem.slots_per_period,
        method=session.method,
        consistency=session.consistency,
        initial_utility=session.period_utility(),
    )
    for record in delta_records:
        delta = delta_from_dict(record["delta"])
        outcome = session.apply(delta, deadline=deadline)
        report.steps.append(
            ReplayStep(
                seq=outcome.seq,
                kind=outcome.kind,
                resolve=outcome.resolve,
                moves=outcome.moves,
                seconds=outcome.seconds,
                period_utility=outcome.period_utility,
            )
        )
    return report
