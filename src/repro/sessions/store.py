"""The bounded, TTL-evicting, crash-safe session store.

Sessions hold real resources -- per-slot incremental evaluators over
potentially thousands of sensors -- so the store is where the serving
layer's capacity discipline lives:

- **bounded**: at most ``capacity`` live sessions; creating one more
  first evicts the least-recently-used *idle* session, and if every
  session is mid-request, refuses (:class:`StoreFullError` -> 429).
- **TTL**: sessions idle past ``ttl`` seconds are evicted by
  :meth:`sweep` (the service runs it on a timer and at admission).
- **deterministic release**: a checkout refcount tracks in-flight
  handlers.  ``delete`` always *closes* the session immediately (the
  in-flight delta observes the flag and rolls back with a structured
  409), but the evaluators are only freed when the last holder exits
  -- an evicted session is never operated on after its resources are
  freed, and never freed under an active request.
- **tombstones**: a bounded memory of evicted ids so clients get an
  honest 410 ("existed, gone: " + reason) instead of a 404.
- **crash safety**: every committed delta checkpoints the session
  through :func:`repro.io.checkpoint.save_checkpoint` (atomic
  write-then-rename); a store built over the same directory re-adopts
  every checkpointed session, and eviction unlinks the file so deleted
  sessions stay deleted.
"""

from __future__ import annotations

import contextlib
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.sessions.session import Session

_ACTIVE_HELP = "Live sessions in the store"
_CREATED_HELP = "Sessions created (including checkpoint restores)"
_EVICTIONS_HELP = "Session evictions by reason"
_CHECKPOINTS_HELP = "Session checkpoints written"

#: Evicted ids remembered for honest 410s; beyond this the oldest
#: tombstones decay back into 404s (an acceptable trade for a bound).
MAX_TOMBSTONES = 1024


class SessionNotFoundError(KeyError):
    """No session with that id (never existed, or tombstone decayed)."""

    def __init__(self, session_id: str):
        super().__init__(session_id)
        self.session_id = session_id
        self.message = f"no session {session_id!r}"


class SessionGoneError(KeyError):
    """The session existed and was evicted; ``reason`` says why."""

    def __init__(self, session_id: str, reason: str):
        super().__init__(session_id)
        self.session_id = session_id
        self.reason = reason
        self.message = f"session {session_id!r} is gone (evicted: {reason})"


class StoreFullError(RuntimeError):
    """Capacity reached and every resident session is mid-request."""


class _Entry:
    __slots__ = ("session", "lock", "last_used", "holders", "pending_release")

    def __init__(self, session: Session, now: float):
        self.session = session
        self.lock = threading.Lock()
        self.last_used = now
        self.holders = 0
        self.pending_release = False


class SessionStore:
    """Thread-safe registry of live :class:`Session` objects."""

    def __init__(
        self,
        capacity: int = 64,
        ttl: float = 600.0,
        checkpoint_dir: Optional[str] = None,
        cache=None,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self.cache = cache
        self.clock = clock
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self._tombstones: Dict[str, str] = {}
        self._tombstone_order: List[str] = []
        if self.checkpoint_dir is not None:
            self._restore_checkpoints()

    # -- creation ------------------------------------------------------

    def create(
        self,
        problem,
        method: str = "greedy",
        seed: Optional[int] = None,
        consistency: str = "warm",
        incumbent_assignment=None,
    ) -> Session:
        """Admit a new session (evicting an idle LRU one if full)."""
        self.sweep()
        session_id = uuid.uuid4().hex
        session = Session(
            problem=problem,
            method=method,
            seed=seed,
            session_id=session_id,
            consistency=consistency,
            cache=self.cache,
            incumbent_assignment=incumbent_assignment,
            on_commit=self._checkpoint,
        )
        with self._lock:
            while len(self._entries) >= self.capacity:
                victim = self._idle_lru_locked()
                if victim is None:
                    raise StoreFullError(
                        f"all {self.capacity} sessions are mid-request; "
                        "retry shortly"
                    )
                self._evict_locked(victim, "capacity")
            self._entries[session_id] = _Entry(session, self.clock())
            self._set_active_gauge_locked()
        get_registry().counter(
            "repro_session_created_total", _CREATED_HELP
        ).inc()
        self._checkpoint(session)
        return session

    # -- access --------------------------------------------------------

    @contextlib.contextmanager
    def checkout(self, session_id: str) -> Iterator[Session]:
        """Exclusive access to one session for the span of a request.

        Raises :class:`SessionNotFoundError` / :class:`SessionGoneError`
        up front.  If the session is deleted *while checked out*, the
        session's own closed flag makes the in-flight apply raise (the
        handler maps it to 409) and the exit path performs the deferred
        resource release once no holder remains.
        """
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                self._raise_missing_locked(session_id)
            entry.holders += 1
            entry.last_used = self.clock()
        try:
            with entry.lock:
                yield entry.session
        finally:
            release = False
            with self._lock:
                entry.holders -= 1
                entry.last_used = self.clock()
                if entry.pending_release and entry.holders == 0:
                    entry.pending_release = False
                    release = True
            if release:
                entry.session.release()

    def get_unchecked(self, session_id: str) -> Session:
        """Peek without holding (introspection only -- healthz, tests)."""
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                self._raise_missing_locked(session_id)
            return entry.session

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- eviction ------------------------------------------------------

    def delete(self, session_id: str, reason: str = "delete") -> None:
        """Evict now.  In-flight deltas fail (409) and never commit;
        resources free immediately if idle, else on last holder exit."""
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                self._raise_missing_locked(session_id)
            self._evict_locked(session_id, reason)

    def sweep(self) -> int:
        """Evict every idle session whose TTL expired; returns count."""
        now = self.clock()
        evicted = 0
        with self._lock:
            expired = [
                session_id
                for session_id, entry in self._entries.items()
                if entry.holders == 0 and now - entry.last_used > self.ttl
            ]
            for session_id in expired:
                self._evict_locked(session_id, "ttl")
                evicted += 1
        return evicted

    def close(self) -> None:
        """Evict everything (service shutdown).  Checkpoints are kept:
        a restarted store over the same directory re-adopts them."""
        with self._lock:
            for session_id in list(self._entries):
                self._evict_locked(
                    session_id, "shutdown", unlink_checkpoint=False
                )

    # -- internals (store lock held) -----------------------------------

    def _raise_missing_locked(self, session_id: str) -> None:
        reason = self._tombstones.get(session_id)
        if reason is not None and reason != "shutdown":
            raise SessionGoneError(session_id, reason)
        raise SessionNotFoundError(session_id)

    def _idle_lru_locked(self) -> Optional[str]:
        idle = [
            (entry.last_used, session_id)
            for session_id, entry in self._entries.items()
            if entry.holders == 0
        ]
        if not idle:
            return None
        return min(idle)[1]

    def _evict_locked(
        self, session_id: str, reason: str, unlink_checkpoint: bool = True
    ) -> None:
        entry = self._entries.pop(session_id)
        entry.session.close()
        if entry.holders == 0:
            entry.session.release()
        else:
            entry.pending_release = True
        self._tombstones[session_id] = reason
        self._tombstone_order.append(session_id)
        if len(self._tombstone_order) > MAX_TOMBSTONES:
            decayed = self._tombstone_order.pop(0)
            self._tombstones.pop(decayed, None)
        if unlink_checkpoint and self.checkpoint_dir is not None:
            try:
                self._checkpoint_path(session_id).unlink()
            except OSError:
                pass
        self._set_active_gauge_locked()
        get_registry().counter(
            "repro_session_evictions_total", _EVICTIONS_HELP, reason=reason
        ).inc()
        obs_events.emit("session.evicted", id=session_id, reason=reason)

    def _set_active_gauge_locked(self) -> None:
        get_registry().gauge("repro_session_active", _ACTIVE_HELP).set(
            len(self._entries)
        )

    # -- checkpointing -------------------------------------------------

    def _checkpoint_path(self, session_id: str) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / f"{session_id}.json"

    def _checkpoint(self, session: Session) -> None:
        if self.checkpoint_dir is None:
            return
        save_checkpoint(
            session.to_state(),
            self._checkpoint_path(session.session_id),
            config={"kind": "repro-session", "id": session.session_id},
        )
        get_registry().counter(
            "repro_session_checkpoints_total", _CHECKPOINTS_HELP
        ).inc()

    def _restore_checkpoints(self) -> None:
        directory = self.checkpoint_dir
        if directory is None or not directory.is_dir():
            return
        now = self.clock()
        for path in sorted(directory.glob("*.json")):
            try:
                state, config = load_checkpoint(path)
                if config.get("kind") != "repro-session":
                    continue
                session = Session.from_state(
                    state, cache=self.cache, on_commit=self._checkpoint
                )
            except Exception as error:
                # A checkpoint that cannot be re-adopted must not take
                # the service down with it; it is left on disk for
                # inspection.
                obs_events.emit(
                    "session.restore_failed", path=str(path), error=str(error)
                )
                continue
            with self._lock:
                if len(self._entries) >= self.capacity:
                    break
                self._entries[session.session_id] = _Entry(session, now)
                self._set_active_gauge_locked()
            get_registry().counter(
                "repro_session_created_total", _CREATED_HELP
            ).inc()
