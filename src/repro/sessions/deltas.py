"""The session delta grammar: typed edits to a live scheduling instance.

The paper's deployment setting is online -- sensors fail and recover,
weather changes the harvest rate (and with it ``rho = T_r / T_d``),
targets gain or lose importance -- yet a solver call is a one-shot
function.  A :class:`Delta` is the unit of change a long-lived
:class:`~repro.sessions.session.Session` accepts between solves::

    {"kind": "sensor-failed",   "sensor": 3}
    {"kind": "sensor-recovered","sensor": 3}
    {"kind": "sensor-added",    "p": 0.4}            # family-specific params
    {"kind": "rho-change",      "rho": 4}
    {"kind": "harvest-shift",   "factor": 1.5}       # scales T_r (weather)
    {"kind": "weight-change",   "sensor": 3, "value": 0.7}
    {"kind": "target-weight-change", "element": 2, "value": 5.0}

Application is a *pure* function (:func:`apply_delta`): given the
current problem and failed-sensor set it returns a
:class:`DeltaEffect` describing the successor state and what the
warm-start machinery must do about it -- which slots became *dirty*,
which sensors need placing or dropping, and whether the edit is
*structural* (it changed ``T``, so the incumbent assignment is
meaningless and only a cold re-solve makes sense).  Keeping
application pure is what makes session rollback and the differential
delta-walk suite trivial: the same chain of documents always produces
the same chain of states.

Utility edits go through the :mod:`repro.io.serialization` documents:
the current utility is serialized, the document is mutated, and the
family constructor re-validates on the way back in -- so a delta can
never build a utility state that could not have arrived over the wire.

Failures raise :class:`DeltaError` with a stable machine-readable
``code``:

- ``invalid-delta`` -- malformed or semantically impossible (unknown
  sensor, failing an already-failed sensor, non-integral ``rho``...);
- ``unknown-delta`` -- unrecognized ``kind``;
- ``unsupported-delta`` -- recognized but not applicable to this
  session (a ``rho`` crossing into the dense regime, a family without
  the edited parameter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Set, Tuple

from repro.core.problem import SchedulingProblem
from repro.energy.period import ChargingPeriod
from repro.io.serialization import utility_from_dict, utility_to_dict

#: Every delta kind the grammar accepts, in documentation order.
DELTA_KINDS: Tuple[str, ...] = (
    "sensor-failed",
    "sensor-recovered",
    "sensor-added",
    "rho-change",
    "harvest-shift",
    "weight-change",
    "target-weight-change",
)

#: Wire fields each kind accepts (beyond "kind"); everything else is
#: rejected so typos fail loudly instead of silently no-opping.
_FIELDS: Dict[str, FrozenSet[str]] = {
    "sensor-failed": frozenset({"sensor"}),
    "sensor-recovered": frozenset({"sensor"}),
    "sensor-added": frozenset({"p", "weight", "covers"}),
    "rho-change": frozenset({"rho"}),
    "harvest-shift": frozenset({"factor"}),
    "weight-change": frozenset({"sensor", "value"}),
    "target-weight-change": frozenset({"element", "value"}),
}


class DeltaError(ValueError):
    """A delta failed validation or application; ``code`` is stable."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def _fail(code: str, message: str) -> None:
    raise DeltaError(code, message)


@dataclass(frozen=True)
class Delta:
    """One validated edit.  Unused fields stay ``None``."""

    kind: str
    sensor: Optional[int] = None
    value: Optional[float] = None
    factor: Optional[float] = None
    rho: Optional[float] = None
    element: Optional[int] = None
    p: Optional[float] = None
    weight: Optional[float] = None
    covers: Optional[Tuple[int, ...]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical wire document (only the fields that are set)."""
        document: Dict[str, Any] = {"kind": self.kind}
        for name in ("sensor", "value", "factor", "rho", "element", "p", "weight"):
            value = getattr(self, name)
            if value is not None:
                document[name] = value
        if self.covers is not None:
            document["covers"] = list(self.covers)
        return document


@dataclass(frozen=True)
class DeltaEffect:
    """What applying a delta does to session state.

    Attributes
    ----------
    problem:
        The successor instance (may be the same object when only the
        failed set changed).
    failed:
        The successor failed-sensor set.
    structural:
        ``T`` changed -- the incumbent assignment cannot be repaired,
        only replaced by a cold re-solve.
    utility_changed:
        The utility function object was rebuilt; live evaluators must
        be re-based onto the new function before any warm repair.
    dirty_slots:
        Slots whose membership or gains the delta perturbed; the warm
        path seeds :func:`~repro.core.repair.scoped_repair` with them.
    drop_sensors:
        Sensors to remove from the incumbent assignment (failures).
    place_sensors:
        Live sensors with no slot yet (recoveries, additions); place
        with :func:`~repro.core.repair.best_slot_for` before repairing.
    """

    problem: SchedulingProblem
    failed: FrozenSet[int]
    structural: bool = False
    utility_changed: bool = False
    dirty_slots: Tuple[int, ...] = ()
    drop_sensors: Tuple[int, ...] = ()
    place_sensors: Tuple[int, ...] = ()


# ----------------------------------------------------------------------
# Wire parsing
# ----------------------------------------------------------------------


def _wire_int(document: Dict[str, Any], field: str) -> Optional[int]:
    value = document.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        _fail("invalid-delta", f"{field!r} must be an integer, got {value!r}")
    return value


def _wire_number(document: Dict[str, Any], field: str) -> Optional[float]:
    value = document.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail("invalid-delta", f"{field!r} must be a number, got {value!r}")
    return float(value)


def delta_from_dict(document: Any) -> Delta:
    """Validate a wire document into a :class:`Delta`.

    Shape-only validation: whether the delta *applies* to the current
    session state (sensor exists, family has weights, ...) is decided
    by :func:`apply_delta`, which sees that state.
    """
    if not isinstance(document, dict):
        _fail(
            "invalid-delta",
            f"delta must be an object, got {type(document).__name__}",
        )
    kind = document.get("kind")
    if kind not in _FIELDS:
        _fail(
            "unknown-delta",
            f"unknown delta kind {kind!r}; choose from {list(DELTA_KINDS)}",
        )
    unknown = set(document) - _FIELDS[kind] - {"kind"}
    if unknown:
        _fail(
            "invalid-delta",
            f"{kind} does not accept fields {sorted(unknown)}",
        )

    sensor = _wire_int(document, "sensor")
    element = _wire_int(document, "element")
    value = _wire_number(document, "value")
    factor = _wire_number(document, "factor")
    rho = _wire_number(document, "rho")
    p = _wire_number(document, "p")
    weight = _wire_number(document, "weight")
    covers: Optional[Tuple[int, ...]] = None
    if "covers" in document:
        raw = document["covers"]
        if not isinstance(raw, list) or any(
            isinstance(e, bool) or not isinstance(e, int) for e in raw
        ):
            _fail(
                "invalid-delta",
                f"'covers' must be a list of element ids, got {raw!r}",
            )
        covers = tuple(sorted(set(raw)))

    if kind in ("sensor-failed", "sensor-recovered") and sensor is None:
        _fail("invalid-delta", f"{kind} needs a 'sensor' id")
    if kind == "rho-change" and rho is None:
        _fail("invalid-delta", "rho-change needs 'rho'")
    if kind == "harvest-shift":
        if factor is None:
            _fail("invalid-delta", "harvest-shift needs 'factor'")
        if factor <= 0:
            _fail("invalid-delta", f"'factor' must be > 0, got {factor}")
    if kind == "weight-change" and value is None:
        _fail("invalid-delta", "weight-change needs 'value'")
    if kind == "target-weight-change" and (element is None or value is None):
        _fail("invalid-delta", "target-weight-change needs 'element' and 'value'")
    if kind == "sensor-added" and sum(
        x is not None for x in (p, weight, covers)
    ) > 1:
        _fail(
            "invalid-delta",
            "sensor-added takes at most one of 'p', 'weight', 'covers'",
        )

    return Delta(
        kind=kind,
        sensor=sensor,
        value=value,
        factor=factor,
        rho=rho,
        element=element,
        p=p,
        weight=weight,
        covers=covers,
    )


# ----------------------------------------------------------------------
# Application (pure)
# ----------------------------------------------------------------------


def _with_utility(problem: SchedulingProblem, utility_doc: Dict[str, Any],
                  num_sensors: Optional[int] = None) -> SchedulingProblem:
    """Rebuild the problem around a mutated utility document."""
    try:
        utility = utility_from_dict(utility_doc)
    except (KeyError, TypeError, ValueError) as error:
        raise DeltaError(
            "invalid-delta", f"edit produces an invalid utility: {error}"
        ) from error
    return SchedulingProblem(
        num_sensors=(
            problem.num_sensors if num_sensors is None else num_sensors
        ),
        period=problem.period,
        utility=utility,
        num_periods=problem.num_periods,
    )


def _with_period(
    problem: SchedulingProblem, period: ChargingPeriod
) -> SchedulingProblem:
    return SchedulingProblem(
        num_sensors=problem.num_sensors,
        period=period,
        utility=problem.utility,
        num_periods=problem.num_periods,
    )


def _require_sparse(period: ChargingPeriod, what: str) -> None:
    if period.rho < 1:
        _fail(
            "unsupported-delta",
            f"{what} crosses into the dense regime (rho < 1); sessions "
            "only repair sparse-regime (rho >= 1) schedules -- open a "
            "new session for the dense instance",
        )


def _all_slots(problem: SchedulingProblem) -> Tuple[int, ...]:
    return tuple(range(problem.slots_per_period))


def apply_delta(
    problem: SchedulingProblem,
    failed: Set[int],
    delta: Delta,
) -> DeltaEffect:
    """Pure successor-state computation; raises :class:`DeltaError`.

    Neither argument is mutated.  Utility edits round-trip through the
    :mod:`repro.io.serialization` documents so the family constructors
    re-validate every parameter.
    """
    kind = delta.kind
    n = problem.num_sensors

    if kind == "sensor-failed":
        v = delta.sensor
        if not 0 <= v < n:
            _fail("invalid-delta", f"sensor {v} outside 0..{n - 1}")
        if v in failed:
            _fail("invalid-delta", f"sensor {v} is already failed")
        return DeltaEffect(
            problem=problem,
            failed=frozenset(failed | {v}),
            drop_sensors=(v,),
            # The home slot just lost a member; scoped_repair discovers
            # it from the assignment (the session passes it in).
        )

    if kind == "sensor-recovered":
        v = delta.sensor
        if v not in failed:
            _fail("invalid-delta", f"sensor {v} is not failed")
        return DeltaEffect(
            problem=problem,
            failed=frozenset(failed - {v}),
            place_sensors=(v,),
        )

    if kind == "sensor-added":
        new_id = n
        doc = utility_to_dict(problem.utility)
        family = doc["kind"]
        if family == "homogeneous-detection":
            if delta.p is not None or delta.weight is not None or delta.covers:
                _fail(
                    "invalid-delta",
                    "homogeneous-detection sensors share the global p; "
                    "sensor-added takes no parameters for this family",
                )
            doc["sensors"] = sorted(doc["sensors"]) + [new_id]
        elif family == "detection":
            if delta.p is None:
                _fail(
                    "invalid-delta",
                    "sensor-added on a detection utility needs 'p'",
                )
            doc["probabilities"][str(new_id)] = delta.p
        elif family == "logsum":
            if delta.weight is None:
                _fail(
                    "invalid-delta",
                    "sensor-added on a logsum utility needs 'weight'",
                )
            doc["weights"][str(new_id)] = delta.weight
        elif family == "weighted-coverage":
            if delta.covers is None:
                _fail(
                    "invalid-delta",
                    "sensor-added on a weighted-coverage utility needs "
                    "'covers' (the element ids the sensor covers)",
                )
            known = set(doc["element_weights"])
            missing = [e for e in delta.covers if str(e) not in known]
            if missing:
                _fail(
                    "invalid-delta",
                    f"'covers' names unknown elements {missing}; new "
                    "elements are not introducible by sensor-added",
                )
            doc["covers"][str(new_id)] = sorted(delta.covers)
        else:
            _fail(
                "unsupported-delta",
                f"sensor-added is not supported for the {family} family "
                "(per-target contributions cannot be inferred)",
            )
        return DeltaEffect(
            problem=_with_utility(problem, doc, num_sensors=n + 1),
            failed=frozenset(failed),
            utility_changed=True,
            place_sensors=(new_id,),
        )

    if kind == "rho-change":
        try:
            period = ChargingPeriod.from_ratio(
                delta.rho, discharge_time=problem.period.discharge_time
            )
        except ValueError as error:
            raise DeltaError("invalid-delta", str(error)) from error
        _require_sparse(period, f"rho-change to {delta.rho:g}")
        if period.slots_per_period == problem.slots_per_period:
            return DeltaEffect(problem=problem, failed=frozenset(failed))
        return DeltaEffect(
            problem=_with_period(problem, period),
            failed=frozenset(failed),
            structural=True,
        )

    if kind == "harvest-shift":
        old = problem.period
        try:
            period = ChargingPeriod(
                discharge_time=old.discharge_time,
                recharge_time=old.recharge_time * delta.factor,
            )
        except ValueError as error:
            raise DeltaError(
                "invalid-delta",
                f"harvest-shift by {delta.factor:g} leaves a non-integral "
                f"rho ({error}); pick a factor that keeps T_r/T_d integral",
            ) from error
        _require_sparse(period, f"harvest-shift by {delta.factor:g}")
        if period.slots_per_period == problem.slots_per_period:
            return DeltaEffect(problem=problem, failed=frozenset(failed))
        return DeltaEffect(
            problem=_with_period(problem, period),
            failed=frozenset(failed),
            structural=True,
        )

    if kind == "weight-change":
        doc = utility_to_dict(problem.utility)
        family = doc["kind"]
        if family == "homogeneous-detection":
            if delta.sensor is not None:
                _fail(
                    "unsupported-delta",
                    "homogeneous-detection has one global p; omit 'sensor' "
                    "to change it for everyone",
                )
            doc["p"] = delta.value
        elif family == "detection":
            if delta.sensor is None:
                _fail("invalid-delta", "detection weight-change needs 'sensor'")
            key = str(delta.sensor)
            if key not in doc["probabilities"]:
                _fail(
                    "invalid-delta",
                    f"sensor {delta.sensor} has no detection probability",
                )
            doc["probabilities"][key] = delta.value
        elif family == "logsum":
            if delta.sensor is None:
                _fail("invalid-delta", "logsum weight-change needs 'sensor'")
            key = str(delta.sensor)
            if key not in doc["weights"]:
                _fail(
                    "invalid-delta", f"sensor {delta.sensor} has no weight"
                )
            doc["weights"][key] = delta.value
        else:
            _fail(
                "unsupported-delta",
                f"weight-change is not supported for the {family} family "
                "(use target-weight-change for element weights)",
            )
        return DeltaEffect(
            problem=_with_utility(problem, doc),
            failed=frozenset(failed),
            utility_changed=True,
            # A weight edit moves gains in every slot; T is small, so
            # dirtying them all keeps the repair exact and still O(n*T).
            dirty_slots=_all_slots(problem),
        )

    if kind == "target-weight-change":
        doc = utility_to_dict(problem.utility)
        family = doc["kind"]
        if family != "weighted-coverage":
            _fail(
                "unsupported-delta",
                f"target-weight-change edits weighted-coverage element "
                f"weights; the {family} family has none",
            )
        key = str(delta.element)
        if key not in doc["element_weights"]:
            _fail(
                "invalid-delta", f"element {delta.element} has no weight"
            )
        doc["element_weights"][key] = delta.value
        return DeltaEffect(
            problem=_with_utility(problem, doc),
            failed=frozenset(failed),
            utility_changed=True,
            dirty_slots=_all_slots(problem),
        )

    raise DeltaError("unknown-delta", f"unknown delta kind {kind!r}")
