"""Local-search polish for activation schedules.

A natural strengthening of the greedy hill-climbing scheme: starting
from any feasible one-period schedule, repeatedly apply the best
**move** (reassign one sensor to a different slot) while it improves
the total utility.  For submodular per-slot utilities this is the
standard local search over a partition-matroid-constrained assignment;
it can only improve on the greedy schedule and in practice closes most
of the remaining gap to the optimum.

Used by the ablation benches to quantify how much head-room the greedy
scheme leaves, and exposed as ``solve(..., method="greedy+ls")`` via
:mod:`repro.core.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.obs.registry import get_registry
from repro.utility.base import UtilityFunction
from repro.utility.incremental import flush_ops, make_evaluator


@dataclass
class LocalSearchReport:
    """What the polish pass did."""

    moves: int
    initial_utility: float
    final_utility: float

    @property
    def improvement(self) -> float:
        return self.final_utility - self.initial_utility


def local_search(
    problem: SchedulingProblem,
    schedule: PeriodicSchedule,
    max_moves: int = 10_000,
    tolerance: float = 1e-12,
    report: Optional[LocalSearchReport] = None,
    deadline: Optional[float] = None,
) -> PeriodicSchedule:
    """Best-improvement local search over single-sensor reassignments.

    Works in both regimes: in ACTIVE_SLOT mode a move changes the slot
    a sensor is active in; in PASSIVE_SLOT mode it changes the slot a
    sensor rests in.  Either way feasibility is preserved (each sensor
    still has exactly one assigned slot per period).

    Terminates when no move improves by more than ``tolerance``, or
    after ``max_moves`` moves (a safety bound -- each move strictly
    increases a bounded objective, so termination is guaranteed anyway
    for any fixed tolerance > 0).  ``deadline`` is an absolute
    ``time.monotonic()`` budget end checked once per sweep: warm-start
    callers (:mod:`repro.sessions`) propagate the HTTP request deadline
    here so a polish pass can never outlive its client
    (:class:`~repro.runtime.retry.DeadlineExceededError`).
    """
    from repro.runtime.retry import remaining_budget
    utility = problem.utility
    T = schedule.slots_per_period
    assignment = dict(schedule.assignment)
    passive_mode = schedule.mode is ScheduleMode.PASSIVE_SLOT

    def build_slot_sets() -> List[frozenset]:
        sets: List[set] = [set() for _ in range(T)]
        if passive_mode:
            everyone = set(assignment)
            for t in range(T):
                sets[t] = {v for v in everyone if assignment[v] != t}
        else:
            for v, t in assignment.items():
                sets[t].add(v)
        return [frozenset(s) for s in sets]

    # One incremental evaluator per slot, rebased onto the exact initial
    # slot-set objects (gain/loss answers are bit-equal to the
    # utility.marginal/decrement calls they replace).
    evaluators = [make_evaluator(utility) for _ in range(T)]
    for t, slot_set in enumerate(build_slot_sets()):
        evaluators[t].reset(slot_set)

    current = sum(evaluator.value() for evaluator in evaluators)
    initial = current
    moves = 0
    evaluations = 0
    improved = True
    while improved and moves < max_moves:
        remaining_budget(deadline)
        improved = False
        best_gain = tolerance
        best_move: Optional[Tuple[int, int]] = None
        for sensor, home in assignment.items():
            if passive_mode:
                # Moving the passive slot from `home` to `target`:
                # sensor becomes active at `home`, inactive at `target`.
                gain_home = evaluators[home].gain(sensor)
                evaluations += 1
                for target in range(T):
                    if target == home:
                        continue
                    loss_target = evaluators[target].loss(sensor)
                    evaluations += 1
                    gain = gain_home - loss_target
                    if gain > best_gain:
                        best_gain = gain
                        best_move = (sensor, target)
            else:
                loss_home = evaluators[home].loss(sensor)
                evaluations += 1
                for target in range(T):
                    if target == home:
                        continue
                    gain_target = evaluators[target].gain(sensor)
                    evaluations += 1
                    gain = gain_target - loss_home
                    if gain > best_gain:
                        best_gain = gain
                        best_move = (sensor, target)
        if best_move is not None:
            sensor, target = best_move
            home = assignment[sensor]
            assignment[sensor] = target
            if passive_mode:
                evaluators[home].add(sensor)
                evaluators[target].remove(sensor)
            else:
                evaluators[home].remove(sensor)
                evaluators[target].add(sensor)
            current += best_gain
            moves += 1
            improved = True

    from repro.core.greedy import _EVALS_HELP

    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="local-search"
    ).inc(evaluations)
    flush_ops(evaluators)

    if report is not None:
        report.moves = moves
        report.initial_utility = initial
        report.final_utility = current
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=schedule.mode
    )


def greedy_with_local_search(
    problem: SchedulingProblem,
    max_moves: int = 10_000,
    report: Optional[LocalSearchReport] = None,
) -> PeriodicSchedule:
    """Greedy hill-climbing followed by the local-search polish."""
    from repro.core.greedy import greedy_schedule
    from repro.core.greedy_passive import greedy_passive_schedule

    if problem.is_sparse_regime:
        start = greedy_schedule(problem)
    else:
        start = greedy_passive_schedule(problem)
    return local_search(problem, start, max_moves=max_moves, report=report)
