"""The NP-hardness reduction from Subset-Sum (paper Thm. 3.1), executable.

Construction: given integers ``I_1..I_n``, build a scheduling instance
with ``n`` sensors, one target covered by all of them, ``rho = 1``
(period ``T = 2`` slots), working time ``L = T``, and utility

.. math:: U(S) = \\log\\Bigl(1 + \\sum_{v_i \\in S} I_i\\Bigr).

Each sensor is activated in exactly one of the two slots, so a schedule
is a 2-partition ``(A_1, A_2)`` of the weights, with total utility
``log(1 + w(A_1)) + log(1 + w(A_2))``.  By strict concavity this is
maximized exactly when ``w(A_1) = w(A_2) = W/2``; hence the optimum
reaches ``2 log(1 + W/2)`` iff the Subset-Sum instance (target ``W/2``)
is a yes-instance.

:func:`decide_subset_sum_via_scheduling` runs the reduction end-to-end
with the exact solver, turning it into a (exponential-time, of course)
decision procedure used by the tests to verify the reduction on known
yes/no instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.optimal import optimal_schedule
from repro.core.problem import SchedulingProblem
from repro.energy.period import ChargingPeriod
from repro.utility.logsum import LogSumUtility


@dataclass(frozen=True)
class SubsetSumInstance:
    """A Subset-Sum instance asking for a subset summing to half the total."""

    weights: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("need at least one weight")
        for w in self.weights:
            if w <= 0 or int(w) != w:
                raise ValueError(f"weights must be positive integers, got {w}")

    @property
    def total(self) -> int:
        return sum(self.weights)

    @property
    def target(self) -> float:
        """Half the total (may be fractional, in which case: no-instance)."""
        return self.total / 2

    def brute_force_decide(self) -> bool:
        """Classic DP decision, used as the test oracle."""
        if self.total % 2 == 1:
            return False
        goal = self.total // 2
        reachable = {0}
        for w in self.weights:
            reachable |= {r + w for r in reachable if r + w <= goal}
        return goal in reachable


def reduction_from_subset_sum(instance: SubsetSumInstance) -> SchedulingProblem:
    """Build the Thm. 3.1 scheduling instance for a Subset-Sum input."""
    weights = {i: float(w) for i, w in enumerate(instance.weights)}
    utility = LogSumUtility(weights)
    period = ChargingPeriod.from_ratio(1.0)  # rho = 1 -> T = 2 slots
    return SchedulingProblem(
        num_sensors=len(instance.weights),
        period=period,
        utility=utility,
        num_periods=1,
    )


def optimum_if_yes(instance: SubsetSumInstance) -> float:
    """``2 log(1 + W/2)``: the utility reachable iff a perfect split exists."""
    return 2.0 * math.log1p(instance.total / 2.0)


def decide_subset_sum_via_scheduling(
    instance: SubsetSumInstance, tol: float = 1e-9
) -> bool:
    """Decide Subset-Sum by solving the constructed scheduling instance.

    Solves the reduction exactly and compares the optimum against
    ``2 log(1 + W/2)``.  Exponential time -- this exists to *validate*
    the reduction, not to solve Subset-Sum fast.
    """
    problem = reduction_from_subset_sum(instance)
    schedule = optimal_schedule(problem)
    achieved = schedule.period_utility(problem.utility)
    return achieved >= optimum_if_yes(instance) - tol
