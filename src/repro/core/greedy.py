"""Algorithm 1: the Greedy Hill-Climbing Activation Scheme (Sec. IV-A-2).

The scheme schedules sensors one at a time: at every step it picks the
(sensor, slot) pair with the maximum *incremental* utility given the
assignments already made, until all ``n`` sensors are placed -- exactly
``n`` steps.  The paper proves (Lemma 4.1) the resulting one-period
schedule achieves at least 1/2 of the optimum, and (Thm. 4.3) that
repeating it each period keeps the 1/2 bound for any ``L = alpha T``.

Two equivalent implementations are provided:

- ``lazy=False``: the literal algorithm -- every step scans all
  remaining (sensor, slot) pairs.  O(n^2 T) utility evaluations.
- ``lazy=True`` (default): a CELF-style lazy evaluation.  The marginal
  gain of placing ``v`` in slot ``t`` only changes when some other
  sensor is placed in the *same* slot ``t`` (slots do not interact),
  and by submodularity it can only *decrease*.  We therefore keep a
  max-heap of cached gains tagged with a per-slot version number and
  re-evaluate only stale heads.  The selected pairs -- and hence the
  output schedule -- are identical to the naive scan under the same
  deterministic tie-breaking; only the work is reduced.

Both variants record a :class:`GreedyTrace` of the placement order, the
data behind the paper's Fig. 4 walkthrough.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.obs import tracing
from repro.obs.registry import get_registry
from repro.utility.base import UtilityFunction
from repro.utility.incremental import flush_ops, make_slot_evaluators
from repro.utility.target_system import PerSlotUtility

#: Help text for the marginal-evaluation counter (shared by variants).
_EVALS_HELP = "Marginal-utility evaluations by solver variant"


@dataclass(frozen=True)
class GreedyStep:
    """One placement made by the greedy scheme."""

    order: int  # 0-based step number
    sensor: int
    slot: int
    gain: float  # incremental utility of this placement
    total_after: float  # cumulative schedule utility after the step


@dataclass
class GreedyTrace:
    """The full placement history (Fig. 4's step-by-step table)."""

    steps: List[GreedyStep] = field(default_factory=list)

    @property
    def total_utility(self) -> float:
        return self.steps[-1].total_after if self.steps else 0.0

    def placements(self) -> List[Tuple[int, int]]:
        """(sensor, slot) pairs in placement order."""
        return [(s.sensor, s.slot) for s in self.steps]

    def gains(self) -> List[float]:
        return [s.gain for s in self.steps]


def _slot_functions(
    problem: SchedulingProblem,
    slot_utilities: Optional[PerSlotUtility],
) -> Sequence[UtilityFunction]:
    T = problem.slots_per_period
    if slot_utilities is None:
        return [problem.utility] * T
    if slot_utilities.num_slots != T:
        raise ValueError(
            f"slot_utilities covers {slot_utilities.num_slots} slots but the "
            f"period has {T}"
        )
    return [slot_utilities.slot_fn(t) for t in range(T)]


def greedy_schedule(
    problem: SchedulingProblem,
    lazy: bool = True,
    slot_utilities: Optional[PerSlotUtility] = None,
    trace: Optional[GreedyTrace] = None,
) -> PeriodicSchedule:
    """Run Algorithm 1 and return the one-period schedule.

    Parameters
    ----------
    problem:
        The instance.  Must be in the rho >= 1 regime (each sensor gets
        exactly one active slot per period); use
        :func:`~repro.core.greedy_passive.greedy_passive_schedule` for
        rho <= 1.
    lazy:
        Use the lazy-evaluation acceleration (same output, less work).
    slot_utilities:
        Optional per-slot utility override (defaults to the problem's
        stationary utility in every slot).  Used internally by tests of
        the Lemma 4.1 residual argument.
    trace:
        Optional trace object to fill with the placement history.

    Returns
    -------
    A feasible :class:`~repro.core.schedule.PeriodicSchedule` assigning
    every sensor exactly one active slot.  Repeat with
    :meth:`~repro.core.schedule.PeriodicSchedule.unroll` for L = alpha T
    (Thm. 4.3 guarantees the approximation carries over).
    """
    if not problem.is_sparse_regime:
        raise ValueError(
            f"greedy_schedule requires rho >= 1 (got rho={problem.rho:g}); "
            "use greedy_passive_schedule for rho <= 1"
        )
    functions = _slot_functions(problem, slot_utilities)
    with tracing.span("greedy", variant="lazy" if lazy else "naive"):
        if lazy:
            assignment, steps = _run_lazy(problem, functions)
        else:
            assignment, steps = _run_naive(problem, functions)
    if trace is not None:
        trace.steps = steps
    return PeriodicSchedule(
        slots_per_period=problem.slots_per_period,
        assignment=assignment,
        mode=ScheduleMode.ACTIVE_SLOT,
    )


def _run_naive(
    problem: SchedulingProblem,
    functions: Sequence[UtilityFunction],
) -> Tuple[dict, List[GreedyStep]]:
    """Literal Algorithm 1: full scan of remaining pairs each step.

    Candidates are sorted once up front and placed sensors skipped --
    the visit order is identical to re-sorting the remaining set every
    step, without the per-step O(n log n).  Marginal gains come from
    per-slot incremental evaluators whose answers are bit-equal to
    ``functions[slot].marginal`` on the running slot sets.
    """
    T = problem.slots_per_period
    candidates = sorted(problem.sensors)
    placed: Set[int] = set()
    evaluators = make_slot_evaluators(functions)
    assignment: dict = {}
    steps: List[GreedyStep] = []
    total = 0.0
    evaluations = 0
    for order in range(problem.num_sensors):
        best: Optional[Tuple[float, int, int]] = None
        for sensor in candidates:
            if sensor in placed:
                continue
            for slot in range(T):
                gain = evaluators[slot].gain(sensor)
                evaluations += 1
                # Deterministic tie-break: higher gain, then lower sensor
                # id, then lower slot id.
                key = (gain, -sensor, -slot)
                if best is None or key > best:
                    best = key
                    best_pair = (sensor, slot)
        assert best is not None
        sensor, slot = best_pair
        gain = best[0]
        placed.add(sensor)
        evaluators[slot].add(sensor)
        assignment[sensor] = slot
        total += gain
        steps.append(
            GreedyStep(
                order=order, sensor=sensor, slot=slot, gain=gain, total_after=total
            )
        )
    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="naive"
    ).inc(evaluations)
    flush_ops(evaluators)
    return assignment, steps


def _run_lazy(
    problem: SchedulingProblem,
    functions: Sequence[UtilityFunction],
) -> Tuple[dict, List[GreedyStep]]:
    """CELF-style lazy greedy with per-slot version stamps.

    Heap entries are ``(-gain, sensor, slot, slot_version)``.  A popped
    entry whose version matches the slot's current version is exact --
    the slot set has not changed since the gain was computed, and gains
    in other slots were unaffected -- so it can be taken immediately if
    the sensor is still unplaced.  Stale entries are recomputed and
    pushed back.  Correctness relies on per-slot submodularity: a
    recomputed gain never exceeds the cached one, so the popped maximum
    of fresh entries is the global maximum.
    """
    T = problem.slots_per_period
    remaining: Set[int] = set(problem.sensors)
    evaluators = make_slot_evaluators(functions)
    slot_version = [0] * T
    assignment: dict = {}
    steps: List[GreedyStep] = []
    total = 0.0

    evaluations = 0
    heap: List[Tuple[float, int, int, int]] = []
    for sensor in problem.sensors:
        for slot in range(T):
            gain = evaluators[slot].gain(sensor)
            evaluations += 1
            heapq.heappush(heap, (-gain, sensor, slot, 0))

    order = 0
    while remaining and heap:
        neg_gain, sensor, slot, version = heapq.heappop(heap)
        if sensor not in remaining:
            continue
        if version != slot_version[slot]:
            gain = evaluators[slot].gain(sensor)
            evaluations += 1
            heapq.heappush(heap, (-gain, sensor, slot, slot_version[slot]))
            continue
        gain = -neg_gain
        remaining.remove(sensor)
        evaluators[slot].add(sensor)
        slot_version[slot] += 1
        assignment[sensor] = slot
        total += gain
        steps.append(
            GreedyStep(
                order=order, sensor=sensor, slot=slot, gain=gain, total_after=total
            )
        )
        order += 1
    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="lazy"
    ).inc(evaluations)
    flush_ops(evaluators)
    return assignment, steps
