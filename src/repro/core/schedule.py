"""Schedule data types and feasibility checks (paper Sec. II-B, Fig. 5).

Two representations:

- :class:`PeriodicSchedule` -- the within-one-period assignment the
  solvers produce.  For rho >= 1 it maps each sensor to its single
  ACTIVE slot in ``0..T-1`` (Algorithm 1's output); for rho <= 1 it
  maps each sensor to its single PASSIVE slot (Sec. IV-B's output) and
  the sensor is active in the other ``T-1`` slots.
- :class:`UnrolledSchedule` -- explicit per-slot active sets over the
  full working time ``L``, produced by unrolling a periodic schedule
  ``alpha`` times (Thm. 4.3: repeating the one-period greedy schedule
  preserves both feasibility and the 1/2-approximation) or directly by
  the LP rounding.

Feasibility (the IP's third constraint, Sec. IV-A-1): for rho >= 1, in
every window of ``T`` *consecutive* slots each sensor is active at most
once.  For rho <= 1 the sliding-window form is: in every window of
``T`` consecutive slots each sensor is passive at least once.  The
simulator additionally enforces exact battery accounting; these checks
are the combinatorial necessary-and-sufficient condition under the
paper's full-charge activation rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.energy.period import ChargingPeriod
from repro.utility.base import UtilityFunction


class InfeasibleScheduleError(ValueError):
    """Raised when a schedule violates the per-period activation budget."""


class ScheduleMode(Enum):
    """Which slot the per-sensor assignment denotes."""

    ACTIVE_SLOT = "active"  # rho >= 1: the single slot the sensor is ON
    PASSIVE_SLOT = "passive"  # rho <= 1: the single slot the sensor is OFF


@dataclass(frozen=True)
class PeriodicSchedule:
    """One-period assignment, repeated across the working time.

    Attributes
    ----------
    slots_per_period:
        ``T`` in slots.
    assignment:
        sensor id -> slot index in ``0..T-1``.  Sensors absent from the
        mapping are *never activated* in ACTIVE_SLOT mode (allowed: the
        LP repair may deactivate sensors) and *always active* in
        PASSIVE_SLOT mode is NOT allowed -- every sensor needs a passive
        slot to recharge, so PASSIVE_SLOT mode requires a total map.
    mode:
        Whether ``assignment`` holds active slots (rho >= 1) or passive
        slots (rho <= 1).
    """

    slots_per_period: int
    assignment: Mapping[int, int]
    mode: ScheduleMode = ScheduleMode.ACTIVE_SLOT

    def __post_init__(self) -> None:
        if self.slots_per_period < 1:
            raise ValueError(
                f"slots_per_period must be >= 1, got {self.slots_per_period}"
            )
        object.__setattr__(self, "assignment", dict(self.assignment))
        for sensor, slot in self.assignment.items():
            if not 0 <= slot < self.slots_per_period:
                raise InfeasibleScheduleError(
                    f"sensor {sensor} assigned to slot {slot}, outside "
                    f"0..{self.slots_per_period - 1}"
                )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def scheduled_sensors(self) -> FrozenSet[int]:
        """Sensors with an assigned slot."""
        return frozenset(self.assignment)

    def slot_of(self, sensor: int) -> int | None:
        """The assigned slot of ``sensor`` (active or passive per mode)."""
        return self.assignment.get(sensor)

    def active_sets(self) -> Tuple[FrozenSet[int], ...]:
        """Active sensor set for each slot ``0..T-1`` of the period."""
        sets: List[set] = [set() for _ in range(self.slots_per_period)]
        if self.mode is ScheduleMode.ACTIVE_SLOT:
            for sensor, slot in self.assignment.items():
                sets[slot].add(sensor)
        else:
            all_sensors = set(self.assignment)
            for slot in range(self.slots_per_period):
                sets[slot] = {
                    v for v in all_sensors if self.assignment[v] != slot
                }
        return tuple(frozenset(s) for s in sets)

    def active_set(self, slot: int) -> FrozenSet[int]:
        """Active set at an absolute slot (wraps around the period)."""
        return self.active_sets()[slot % self.slots_per_period]

    # ------------------------------------------------------------------
    # Utility
    # ------------------------------------------------------------------

    def period_utility(self, utility: UtilityFunction) -> float:
        """Total utility over one period: ``sum_t U(S_t)``."""
        return sum(utility.value(s) for s in self.active_sets())

    def average_slot_utility(self, utility: UtilityFunction) -> float:
        """Mean per-slot utility over the period."""
        return self.period_utility(utility) / self.slots_per_period

    def total_utility(self, utility: UtilityFunction, num_periods: int = 1) -> float:
        """Total over ``L = alpha T`` slots of periodic repetition."""
        if num_periods < 1:
            raise ValueError(f"num_periods must be >= 1, got {num_periods}")
        return num_periods * self.period_utility(utility)

    # ------------------------------------------------------------------
    # Unrolling (Fig. 5: repeat the same schedule in each period)
    # ------------------------------------------------------------------

    def unroll(self, num_periods: int) -> "UnrolledSchedule":
        """Repeat the period ``alpha`` times (the Fig. 5 construction)."""
        if num_periods < 1:
            raise ValueError(f"num_periods must be >= 1, got {num_periods}")
        per_period = self.active_sets()
        return UnrolledSchedule(
            slots_per_period=self.slots_per_period,
            active_sets=tuple(per_period) * num_periods,
            rho_at_most_one=(self.mode is ScheduleMode.PASSIVE_SLOT),
        )

    def __str__(self) -> str:
        per_slot = ", ".join(
            f"t{slot}:{sorted(s)}" for slot, s in enumerate(self.active_sets())
        )
        return f"PeriodicSchedule[{self.mode.value}]({per_slot})"


@dataclass(frozen=True)
class UnrolledSchedule:
    """Explicit per-slot active sets over the whole working time ``L``."""

    slots_per_period: int
    active_sets: Tuple[FrozenSet[int], ...]
    rho_at_most_one: bool = False

    def __post_init__(self) -> None:
        if self.slots_per_period < 1:
            raise ValueError(
                f"slots_per_period must be >= 1, got {self.slots_per_period}"
            )
        object.__setattr__(
            self,
            "active_sets",
            tuple(frozenset(s) for s in self.active_sets),
        )

    @property
    def total_slots(self) -> int:
        """``L``: number of slots the schedule spans."""
        return len(self.active_sets)

    @property
    def num_periods(self) -> int:
        """Whole charging periods covered (``L // T``)."""
        return self.total_slots // self.slots_per_period

    def active_set(self, slot: int) -> FrozenSet[int]:
        """Active set at a slot (no wrap-around: explicit horizon)."""
        return self.active_sets[slot]

    def sensors_ever_active(self) -> FrozenSet[int]:
        """Union of all slots' active sets."""
        out: set = set()
        for s in self.active_sets:
            out |= s
        return frozenset(out)

    # ------------------------------------------------------------------
    # Feasibility (the IP's sliding-window constraint)
    # ------------------------------------------------------------------

    def validate_feasible(self) -> None:
        """Raise :class:`InfeasibleScheduleError` on any window violation.

        rho >= 1 mode: each sensor active at most once in every ``T``
        consecutive slots.  rho <= 1 mode: each sensor passive at least
        once in every ``T`` consecutive slots.
        """
        T = self.slots_per_period
        sensors = self.sensors_ever_active()
        for v in sensors:
            activity = [v in s for s in self.active_sets]
            window = sum(activity[:T])
            limit = T - 1 if self.rho_at_most_one else 1
            if window > limit:
                raise InfeasibleScheduleError(
                    f"sensor {v} active {window} times in slots [0, {T}) "
                    f"(limit {limit})"
                )
            for start in range(1, len(activity) - T + 1):
                window += activity[start + T - 1] - activity[start - 1]
                if window > limit:
                    raise InfeasibleScheduleError(
                        f"sensor {v} active {window} times in slots "
                        f"[{start}, {start + T}) (limit {limit})"
                    )

    def is_feasible(self) -> bool:
        """Boolean form of :meth:`validate_feasible`."""
        try:
            self.validate_feasible()
        except InfeasibleScheduleError:
            return False
        return True

    # ------------------------------------------------------------------
    # Utility
    # ------------------------------------------------------------------

    def total_utility(self, utility: UtilityFunction) -> float:
        """``sum_t U(S_t)`` over the whole horizon.

        Unrolled schedules repeat the *same* per-period frozenset
        objects ``alpha`` times (see :meth:`PeriodicSchedule.unroll`),
        so slot values are memoized by object identity within one call:
        the same object always yields the same float, and the running
        sum adds the identical values in the identical order as the
        plain scan -- the result is bit-equal.  Disabled (with the
        memo skipped entirely) when ``REPRO_INCREMENTAL=0``.
        """
        from repro.utility.incremental import incremental_enabled

        if not incremental_enabled():
            return sum(utility.value(s) for s in self.active_sets)
        cache: Dict[int, float] = {}
        total = 0.0
        for s in self.active_sets:
            key = id(s)
            value = cache.get(key)
            if value is None:
                value = utility.value(s)
                cache[key] = value
            total += value
        return total

    def average_slot_utility(self, utility: UtilityFunction) -> float:
        """Mean per-slot utility (0 for an empty schedule)."""
        if not self.active_sets:
            return 0.0
        return self.total_utility(utility) / self.total_slots

    def per_slot_utilities(self, utility: UtilityFunction) -> List[float]:
        """The per-slot utility series (one float per slot)."""
        return [utility.value(s) for s in self.active_sets]
