"""The rho <= 1 greedy scheme: allocate passive slots (Sec. IV-B, Thm. 4.4).

When recharge is faster than discharge (rho <= 1), a sensor can stay
active for ``1/rho`` slots per period and needs only one passive slot
to recharge.  The paper flips the greedy question: instead of choosing
when each sensor is *on*, start from "everybody on all the time" and
choose each sensor's single *off* (passive) slot so as to minimize the
decremental utility.  The resulting schedule is feasible and keeps the
1/2-approximation (Thm. 4.4).

As with the rho >= 1 scheme, a lazy variant is provided.  Here the
cached decrements are *lower bounds* of the true current decrements
(removing other sensors from a slot can only make a sensor's own
removal hurt more, by submodularity), so popping the min of a min-heap
and re-checking freshness is again exact.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.greedy import _EVALS_HELP, GreedyStep, GreedyTrace, _slot_functions
from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.obs.registry import get_registry
from repro.utility.base import UtilityFunction
from repro.utility.incremental import (
    IncrementalEvaluator,
    flush_ops,
    make_slot_evaluators,
)
from repro.utility.target_system import PerSlotUtility


def greedy_passive_schedule(
    problem: SchedulingProblem,
    lazy: bool = True,
    slot_utilities: Optional[PerSlotUtility] = None,
    trace: Optional[GreedyTrace] = None,
) -> PeriodicSchedule:
    """Allocate every sensor's passive slot greedily (Sec. IV-B).

    Requires the rho <= 1 regime.  Returns a PASSIVE_SLOT-mode
    :class:`~repro.core.schedule.PeriodicSchedule`: each sensor is
    active in all slots of the period except its assigned passive slot.

    The trace, if provided, records each (sensor, passive-slot) choice;
    ``gain`` holds the *negated decrement* (the larger, the cheaper the
    removal) and ``total_after`` the remaining schedule utility.
    """
    if problem.rho > 1:
        raise ValueError(
            f"greedy_passive_schedule requires rho <= 1 (got rho={problem.rho:g}); "
            "use greedy_schedule for rho > 1"
        )
    functions = _slot_functions(problem, slot_utilities)
    if lazy:
        assignment, steps = _run_lazy(problem, functions)
    else:
        assignment, steps = _run_naive(problem, functions)
    if trace is not None:
        trace.steps = steps
    return PeriodicSchedule(
        slots_per_period=problem.slots_per_period,
        assignment=assignment,
        mode=ScheduleMode.PASSIVE_SLOT,
    )


def _initial_evaluators(
    problem: SchedulingProblem,
    functions: Sequence[UtilityFunction],
) -> List[IncrementalEvaluator]:
    """One evaluator per slot, all starting from the *same* everyone-on
    frozenset (sharing the object keeps iteration order -- and hence
    float accumulation -- identical to the legacy shared-set code)."""
    everyone = frozenset(problem.sensors)
    evaluators = make_slot_evaluators(functions)
    for evaluator in evaluators:
        evaluator.reset(everyone)
    return evaluators


def _total(evaluators: Sequence[IncrementalEvaluator]) -> float:
    return sum(evaluator.value() for evaluator in evaluators)


def _run_naive(
    problem: SchedulingProblem,
    functions: Sequence[UtilityFunction],
) -> Tuple[dict, List[GreedyStep]]:
    """Literal Sec. IV-B: full scan for the cheapest removal each step."""
    T = problem.slots_per_period
    candidates = sorted(problem.sensors)
    placed: Set[int] = set()
    evaluators = _initial_evaluators(problem, functions)
    assignment: dict = {}
    steps: List[GreedyStep] = []
    total = _total(evaluators)
    evaluations = 0
    for order in range(problem.num_sensors):
        best: Optional[Tuple[float, int, int]] = None
        for sensor in candidates:
            if sensor in placed:
                continue
            for slot in range(T):
                loss = evaluators[slot].loss(sensor)
                evaluations += 1
                # Min loss; ties by lower sensor id then lower slot id.
                key = (loss, sensor, slot)
                if best is None or key < best:
                    best = key
                    best_pair = (sensor, slot)
        assert best is not None
        sensor, slot = best_pair
        loss = best[0]
        placed.add(sensor)
        evaluators[slot].remove(sensor)
        assignment[sensor] = slot
        total -= loss
        steps.append(
            GreedyStep(
                order=order, sensor=sensor, slot=slot, gain=-loss, total_after=total
            )
        )
    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="passive-naive"
    ).inc(evaluations)
    flush_ops(evaluators)
    return assignment, steps


def _run_lazy(
    problem: SchedulingProblem,
    functions: Sequence[UtilityFunction],
) -> Tuple[dict, List[GreedyStep]]:
    """Lazy min-heap variant; identical output to the naive scan."""
    T = problem.slots_per_period
    remaining: Set[int] = set(problem.sensors)
    evaluators = _initial_evaluators(problem, functions)
    slot_version = [0] * T
    assignment: dict = {}
    steps: List[GreedyStep] = []
    total = _total(evaluators)

    evaluations = 0
    heap: List[Tuple[float, int, int, int]] = []
    for sensor in problem.sensors:
        for slot in range(T):
            loss = evaluators[slot].loss(sensor)
            evaluations += 1
            heapq.heappush(heap, (loss, sensor, slot, 0))

    order = 0
    while remaining and heap:
        loss, sensor, slot, version = heapq.heappop(heap)
        if sensor not in remaining:
            continue
        if version != slot_version[slot]:
            fresh = evaluators[slot].loss(sensor)
            evaluations += 1
            heapq.heappush(heap, (fresh, sensor, slot, slot_version[slot]))
            continue
        remaining.remove(sensor)
        evaluators[slot].remove(sensor)
        slot_version[slot] += 1
        assignment[sensor] = slot
        total -= loss
        steps.append(
            GreedyStep(
                order=order, sensor=sensor, slot=slot, gain=-loss, total_after=total
            )
        )
        order += 1
    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="passive-lazy"
    ).inc(evaluations)
    flush_ops(evaluators)
    return assignment, steps
