"""The paper's core contribution: activation scheduling algorithms.

Given ``n`` homogeneous solar-powered sensors with charging period
``T`` (:class:`~repro.energy.period.ChargingPeriod`), a working time
``L = alpha T`` and a non-decreasing submodular per-slot utility, find
a feasible dynamic activation schedule maximizing total utility.

Solvers (all operate on :class:`~repro.core.problem.SchedulingProblem`):

- :func:`~repro.core.greedy.greedy_schedule` -- Algorithm 1, the greedy
  hill-climbing scheme with the proven 1/2-approximation (Lemma 4.1,
  Thm. 4.3); includes a lazy-evaluation accelerated variant.
- :func:`~repro.core.greedy_passive.greedy_passive_schedule` -- the
  rho <= 1 variant allocating passive slots (Sec. IV-B, Thm. 4.4).
- :func:`~repro.core.lp.lp_schedule` -- the LP-relaxation + randomized
  rounding + repair pipeline (Sec. IV-A-1).
- :func:`~repro.core.optimal.optimal_schedule` -- exhaustive / branch-
  and-bound optimum for small instances (the paper's Fig. 8 baseline).
- :mod:`~repro.core.baselines` -- random / round-robin / naive
  comparison policies.
- :mod:`~repro.core.bounds` -- optimum upper bounds, including the
  closed form ``U* = 1 - (1-p)^ceil(n/T)`` of Sec. VI-B.
- :mod:`~repro.core.hardness` -- the Subset-Sum reduction of Thm. 3.1.
- :func:`~repro.core.repair.greedy_repair` -- Algorithm 1 generalized
  to a surviving sensor subset with per-sensor allowed slots, the
  re-planning step of the self-healing runtime.
"""

from repro.core.problem import SchedulingProblem
from repro.core.schedule import (
    InfeasibleScheduleError,
    PeriodicSchedule,
    UnrolledSchedule,
)
from repro.core.greedy import GreedyTrace, greedy_schedule
from repro.core.greedy_passive import greedy_passive_schedule
from repro.core.lp import LpSolution, lp_periodic_schedule, lp_relaxation, lp_schedule
from repro.core.optimal import optimal_schedule
from repro.core.baselines import (
    all_in_first_slot_schedule,
    balanced_random_schedule,
    random_schedule,
    round_robin_schedule,
)
from repro.core.bounds import (
    lp_upper_bound,
    per_slot_ceiling_bound,
    single_target_upper_bound,
)
from repro.core.hardness import (
    SubsetSumInstance,
    decide_subset_sum_via_scheduling,
    reduction_from_subset_sum,
)
from repro.core.dp import (
    balanced_schedule,
    balanced_slot_sizes,
    concave_count_optimal_value,
    exact_count_optimal,
    single_target_optimal_value,
)
from repro.core.local_search import (
    LocalSearchReport,
    greedy_with_local_search,
    local_search,
)
from repro.core.stochastic_greedy import stochastic_greedy_schedule
from repro.core.repair import greedy_repair
from repro.core.solver import SolveResult, solve

__all__ = [
    "SchedulingProblem",
    "PeriodicSchedule",
    "UnrolledSchedule",
    "InfeasibleScheduleError",
    "greedy_schedule",
    "GreedyTrace",
    "greedy_repair",
    "greedy_passive_schedule",
    "lp_schedule",
    "lp_periodic_schedule",
    "lp_relaxation",
    "LpSolution",
    "optimal_schedule",
    "random_schedule",
    "balanced_random_schedule",
    "round_robin_schedule",
    "all_in_first_slot_schedule",
    "single_target_upper_bound",
    "per_slot_ceiling_bound",
    "lp_upper_bound",
    "SubsetSumInstance",
    "reduction_from_subset_sum",
    "decide_subset_sum_via_scheduling",
    "balanced_schedule",
    "balanced_slot_sizes",
    "concave_count_optimal_value",
    "exact_count_optimal",
    "single_target_optimal_value",
    "local_search",
    "greedy_with_local_search",
    "stochastic_greedy_schedule",
    "LocalSearchReport",
    "solve",
    "SolveResult",
]
