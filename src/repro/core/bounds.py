"""Upper bounds on the optimal schedule utility.

Three bounds, from cheapest to tightest:

1. :func:`single_target_upper_bound` -- the closed form the paper uses
   in Sec. VI-B for a single target covered by all sensors with
   homogeneous detection probability ``p``:

   .. math:: \\bar{U}^* = 1 - (1-p)^{\\bar{n}}, \\qquad \\bar{n} = \\lceil n/T \\rceil.

   Rationale: over one period each sensor is active at most once, so
   some slot hosts at least ``ceil(n/T)`` sensors *on average*; by
   concavity of ``1-(1-p)^k`` in ``k``, the per-slot average utility is
   maximized by splitting the sensors evenly, giving the bound on the
   *average utility per slot*.

2. :func:`per_slot_ceiling_bound` -- ``U(V)`` per slot: no slot can
   beat activating everybody.  Valid for any utility.

3. :func:`lp_upper_bound` -- the LP-relaxation optimum of
   Sec. IV-A-1 (see :mod:`repro.core.lp`); the tightest of the three
   and valid for count-based or coverage-type utilities.
"""

from __future__ import annotations

import math

from repro.core.problem import SchedulingProblem


def single_target_upper_bound(num_sensors: int, slots_per_period: int, p: float) -> float:
    """The paper's ``U* = 1 - (1-p)^ceil(n/T)`` average-utility bound.

    Paper's worked numbers (Sec. VI-B): ``n = 100``, ``T = 4``,
    ``p = 0.4`` gives ``1 - 0.6^25 = 0.999380...``.
    """
    if num_sensors < 0:
        raise ValueError(f"num_sensors must be >= 0, got {num_sensors}")
    if slots_per_period < 1:
        raise ValueError(
            f"slots_per_period must be >= 1, got {slots_per_period}"
        )
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    n_bar = math.ceil(num_sensors / slots_per_period)
    if p == 1.0:
        return 0.0 if n_bar == 0 else 1.0
    return -math.expm1(n_bar * math.log1p(-p))


def per_slot_ceiling_bound(problem: SchedulingProblem) -> float:
    """Total-utility bound ``L * U(V)``: every slot at the all-on ceiling."""
    return problem.total_slots * problem.utility.value(problem.sensor_set)


def balanced_count_bound(problem: SchedulingProblem, p: float) -> float:
    """Average per-slot detection-utility bound for multi-target systems.

    Generalizes the single-target closed form: for each target ``O_i``
    with ``n_i = |V(O_i)|`` covering sensors, no schedule can average
    better than ``1 - (1-p)^ceil(n_i / T)`` on that target (same
    concavity argument target-by-target).  Returns the *sum over
    targets* of the per-slot bounds, i.e. an upper bound on the average
    per-slot total utility.
    """
    from repro.utility.target_system import TargetSystem

    utility = problem.utility
    T = problem.slots_per_period
    if isinstance(utility, TargetSystem):
        total = 0.0
        for i in range(utility.num_targets):
            n_i = len(utility.coverage_set(i))
            total += single_target_upper_bound(n_i, T, p)
        return total
    return single_target_upper_bound(problem.num_sensors, T, p)


def lp_upper_bound(problem: SchedulingProblem) -> float:
    """Total-utility bound from the LP relaxation (Sec. IV-A-1)."""
    from repro.core.lp import lp_relaxation

    return lp_relaxation(problem).objective
