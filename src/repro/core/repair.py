"""Incremental schedule repair over a surviving node set.

When nodes die mid-deployment the planned schedule keeps commanding
ghosts: every slot that scheduled a dead sensor silently earns less
utility than planned.  Re-running Algorithm 1 from scratch over the
survivors is the right *combinatorial* answer -- greedy is fast and the
1/2-approximation (Lemma 4.1) holds for whatever ground set it is given
-- but a live network adds a constraint the offline planner never sees:
each survivor is mid-cycle, and a node that activated two slots ago
cannot honour a new activation until it has recharged.

:func:`greedy_repair` is the lazy hill-climbing scheme of
:mod:`repro.core.greedy` generalized to both realities: an explicit
sensor subset (the survivors) and per-sensor *allowed slots* (the
period slots the sensor can feasibly serve given its current charge).
With every sensor allowed everywhere it reduces exactly to Algorithm 1
restricted to the subset; the selected pairs use the same deterministic
tie-breaking (higher gain, then lower sensor id, then lower slot), so
repairs are reproducible.

Greedy over a symmetric instance has many equivalent optima, and an
arbitrary relabeling of the incumbent plan is a terrible repair: every
sensor moved to an earlier phase forfeits one activation while it
re-synchronizes, for zero steady-state benefit.  The ``prefer``
argument breaks gain ties toward each sensor's incumbent slot (then
toward later slots, which re-phase for free), so the repair is
*incremental*: it only moves a sensor against its current phase when
that strictly increases per-period utility.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.greedy import _EVALS_HELP, GreedyStep, GreedyTrace
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.obs.registry import get_registry
from repro.runtime.retry import remaining_budget
from repro.utility.base import UtilityFunction
from repro.utility.incremental import IncrementalEvaluator, flush_ops, make_evaluator


def greedy_repair(
    sensors: Iterable[int],
    slots_per_period: int,
    utility: UtilityFunction,
    allowed_slots: Optional[Mapping[int, Sequence[int]]] = None,
    prefer: Optional[Mapping[int, int]] = None,
    trace: Optional[GreedyTrace] = None,
) -> PeriodicSchedule:
    """Re-plan one period over ``sensors`` with per-sensor slot constraints.

    Parameters
    ----------
    sensors:
        The surviving ground set (any ids; need not be contiguous).
    slots_per_period:
        ``T`` of the charging period (rho >= 1 regime: one active slot
        per sensor per period).
    utility:
        The per-slot utility to hill-climb, evaluated with the same
        marginal-gain machinery as Algorithm 1.
    allowed_slots:
        Optional map sensor -> slots it may be assigned.  Sensors absent
        from the map may take any slot; an explicitly empty entry is an
        error (a sensor that can never activate should be excluded from
        ``sensors`` instead).
    prefer:
        Optional map sensor -> incumbent slot.  When marginal gains
        tie, the incumbent slot wins, then any later slot (a later
        phase shift costs nothing in transition), then the default
        (sensor id, slot) order.  Sensors absent from the map are
        unaffected.
    trace:
        Optional :class:`~repro.core.greedy.GreedyTrace` filled with the
        placement history.

    Returns
    -------
    A :class:`~repro.core.schedule.PeriodicSchedule` in ACTIVE_SLOT mode
    assigning each surviving sensor one feasible slot.
    """
    if slots_per_period < 1:
        raise ValueError(
            f"slots_per_period must be >= 1, got {slots_per_period}"
        )
    T = slots_per_period
    sensor_list = sorted(set(sensors))
    allowed: Dict[int, Tuple[int, ...]] = {}
    for v in sensor_list:
        slots = (
            tuple(range(T))
            if allowed_slots is None or v not in allowed_slots
            else tuple(sorted(set(allowed_slots[v])))
        )
        if not slots:
            raise ValueError(
                f"sensor {v} has no allowed slots; drop it from the repair "
                "instead of constraining it to nothing"
            )
        for t in slots:
            if not 0 <= t < T:
                raise ValueError(
                    f"allowed slot {t} for sensor {v} outside 0..{T - 1}"
                )
        allowed[v] = slots

    remaining: Set[int] = set(sensor_list)
    evaluators = [make_evaluator(utility) for _ in range(T)]
    slot_version = [0] * T
    assignment: Dict[int, int] = {}
    steps: List[GreedyStep] = []
    total = 0.0
    evaluations = 0

    def tie_rank(v: int, t: int) -> int:
        # 0 = incumbent slot, 1 = later slot or no incumbent (free),
        # 2 = earlier than incumbent (costs one missed activation).
        if prefer is None or v not in prefer:
            return 1
        if t == prefer[v]:
            return 0
        return 1 if t > prefer[v] else 2

    # Same CELF-style lazy evaluation as _run_lazy in core.greedy: a
    # popped entry is exact iff its slot's version is current, because
    # placements only change gains within their own slot and per-slot
    # submodularity makes every stale gain an upper bound.
    heap: List[Tuple[float, int, int, int, int]] = []
    for v in sensor_list:
        for t in allowed[v]:
            gain = evaluators[t].gain(v)
            evaluations += 1
            heapq.heappush(heap, (-gain, tie_rank(v, t), v, t, 0))

    order = 0
    while remaining and heap:
        neg_gain, rank, sensor, slot, version = heapq.heappop(heap)
        if sensor not in remaining:
            continue
        if version != slot_version[slot]:
            gain = evaluators[slot].gain(sensor)
            evaluations += 1
            heapq.heappush(
                heap, (-gain, rank, sensor, slot, slot_version[slot])
            )
            continue
        gain = -neg_gain
        remaining.remove(sensor)
        evaluators[slot].add(sensor)
        slot_version[slot] += 1
        assignment[sensor] = slot
        total += gain
        steps.append(
            GreedyStep(
                order=order, sensor=sensor, slot=slot, gain=gain, total_after=total
            )
        )
        order += 1

    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="repair"
    ).inc(evaluations)
    flush_ops(evaluators)
    if trace is not None:
        trace.steps = steps
    return PeriodicSchedule(
        slots_per_period=T,
        assignment=assignment,
        mode=ScheduleMode.ACTIVE_SLOT,
    )


@dataclass
class ScopedRepairReport:
    """What a :func:`scoped_repair` pass did."""

    moves: int = 0
    rounds: int = 0
    evaluations: int = 0
    utility_gain: float = 0.0
    dirty_history: List[int] = field(default_factory=list)


def scoped_repair(
    assignment: Dict[int, int],
    evaluators: Sequence[IncrementalEvaluator],
    live: Iterable[int],
    dirty_slots: Iterable[int],
    max_rounds: int = 64,
    tolerance: float = 1e-12,
    deadline: Optional[float] = None,
    report: Optional[ScopedRepairReport] = None,
) -> int:
    """Delta-scoped best-move repair around a set of *dirty* slots.

    The warm-start entry point for long-lived sessions
    (:mod:`repro.sessions`): after a small edit -- one sensor failed,
    one recovered, one weight shifted -- only the touched slots can
    have profitable incoming moves, so restricting the search to them
    (and cascading to any slot a move vacates) does the useful part of
    a full :func:`~repro.core.local_search.local_search` sweep in
    O(|live|) per round instead of O(|live| * T) per sweep.

    ``assignment`` and ``evaluators`` are mutated in place: the
    evaluators must already reflect ``assignment``'s slot sets (one
    evaluator per slot, ACTIVE_SLOT semantics).  Every live sensor must
    be assigned -- place recovered/new sensors with
    :func:`best_slot_for` first.

    Each round pops one dirty slot ``t`` and finds the single best move
    of a live sensor into ``t`` (gain at ``t`` minus the loss at its
    current home).  An improving move re-dirties both slots; the loop
    ends when no dirty slot has an improving move, after ``max_rounds``
    rounds (a safety bound; each move strictly increases a bounded
    objective), or when ``deadline`` (absolute ``time.monotonic()``)
    expires -- the caller's rollback contract makes a mid-repair
    :class:`~repro.runtime.retry.DeadlineExceededError` safe.

    Returns the number of moves applied.
    """
    T = len(evaluators)
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be >= 0, got {max_rounds}")
    live_sensors = sorted(set(live))
    for v in live_sensors:
        if v not in assignment:
            raise ValueError(
                f"live sensor {v} has no assigned slot; place it with "
                "best_slot_for before scoped_repair"
            )
    queue: List[int] = []
    queued: Set[int] = set()

    def enqueue(slot: int) -> None:
        if 0 <= slot < T and slot not in queued:
            queue.append(slot)
            queued.add(slot)

    for slot in dirty_slots:
        enqueue(slot)

    moves = 0
    rounds = 0
    evaluations = 0
    total_gain = 0.0
    while queue and rounds < max_rounds:
        remaining_budget(deadline)
        rounds += 1
        target = queue.pop(0)
        queued.discard(target)
        if report is not None:
            report.dirty_history.append(target)
        best_gain = tolerance
        best_sensor: Optional[int] = None
        target_gain = evaluators[target].gain
        for sensor in live_sensors:
            home = assignment[sensor]
            if home == target:
                continue
            incoming = target_gain(sensor)
            evaluations += 1
            # Monotone utilities have loss >= 0, so a move whose raw
            # incoming gain does not beat the incumbent can never win
            # -- skip the (more expensive) loss query entirely.
            if incoming <= best_gain:
                continue
            gain = incoming - evaluators[home].loss(sensor)
            evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best_sensor = sensor
        if best_sensor is None:
            continue
        home = assignment[best_sensor]
        evaluators[home].remove(best_sensor)
        evaluators[target].add(best_sensor)
        assignment[best_sensor] = target
        total_gain += best_gain
        moves += 1
        # The vacated slot may now profitably pull a sensor in, and the
        # filled slot's gains all changed: both are dirty again.
        enqueue(home)
        enqueue(target)

    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="scoped-repair"
    ).inc(evaluations)
    if report is not None:
        report.moves = moves
        report.rounds = rounds
        report.evaluations += evaluations
        report.utility_gain = total_gain
    return moves


def best_slot_for(
    sensor: int,
    evaluators: Sequence[IncrementalEvaluator],
    prefer: Optional[int] = None,
) -> int:
    """The slot where ``sensor`` currently adds the most utility.

    Gain ties break toward ``prefer`` (a recovered sensor's old phase
    costs nothing to keep), then toward the lower slot id -- the same
    deterministic order the greedy scheme uses.
    """
    if not evaluators:
        raise ValueError("no slots to place into")
    best_slot = 0
    best_key: Optional[Tuple[float, int, int]] = None
    for slot, evaluator in enumerate(evaluators):
        gain = evaluator.gain(sensor)
        key = (gain, 1 if slot == prefer else 0, -slot)
        if best_key is None or key > best_key:
            best_key = key
            best_slot = slot
    return best_slot
