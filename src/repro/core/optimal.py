"""Exact optimal schedules for small instances (the paper's Fig. 8 baseline).

The paper obtains the optimal solution "by enumerating all possible
scheduling".  For one period and rho >= 1 each of the ``n`` sensors
independently picks one of the ``T`` slots, so the search space is
``T^n``; for rho <= 1 each sensor picks its passive slot, also
``T^n``.  We implement depth-first enumeration with admissible
branch-and-bound pruning:

- rho >= 1 (assign active slots, maximizing): at a partial assignment,
  each remaining sensor's eventual marginal gain is at most its best
  current single-slot marginal (submodularity: later additions only
  shrink gains), so ``current + sum of per-sensor best marginals`` is a
  valid upper bound.
- rho <= 1 (assign passive slots): start from everybody-active; each
  removal only decreases utility, so the current partial total is
  itself a valid upper bound on any completion.

Pruning never changes the returned optimum -- the test-suite compares
against raw exhaustive enumeration.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.utility.base import UtilityFunction

#: Refuse instances whose search tree would exceed this many leaves.
DEFAULT_ENUMERATION_LIMIT = 5_000_000


def _check_size(problem: SchedulingProblem, limit: int) -> None:
    n = problem.num_sensors
    T = problem.slots_per_period
    if n * math.log(max(T, 2)) > math.log(limit):
        raise ValueError(
            f"instance too large for exact enumeration: T^n = {T}^{n} "
            f"exceeds the limit of {limit} leaves"
        )


def optimal_schedule(
    problem: SchedulingProblem,
    limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> PeriodicSchedule:
    """Exact one-period optimum by branch-and-bound enumeration.

    Dispatches on the regime: active-slot assignment for rho >= 1,
    passive-slot assignment for rho <= 1.  By Thm. 4.3's argument the
    periodic repetition of the one-period optimum is optimal among
    periodic schedules and ``alpha * OPT_T >= OPT_{alpha T}`` bounds the
    non-periodic optimum, so this is the right comparator for average
    utility.
    """
    _check_size(problem, limit)
    if problem.is_sparse_regime:
        assignment, _ = _search_active(problem)
        mode = ScheduleMode.ACTIVE_SLOT
    else:
        assignment, _ = _search_passive(problem)
        mode = ScheduleMode.PASSIVE_SLOT
    return PeriodicSchedule(
        slots_per_period=problem.slots_per_period,
        assignment=assignment,
        mode=mode,
    )


def optimal_value(
    problem: SchedulingProblem,
    limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> float:
    """One-period optimal total utility (sum over the period's slots)."""
    schedule = optimal_schedule(problem, limit=limit)
    return schedule.period_utility(problem.utility)


def _search_active(problem: SchedulingProblem) -> Tuple[Dict[int, int], float]:
    """DFS over active-slot assignments, best-first ordered, pruned."""
    utility = problem.utility
    T = problem.slots_per_period
    sensors = list(problem.sensors)
    best_value = -math.inf
    best_assignment: Dict[int, int] = {}

    slot_sets: List[frozenset] = [frozenset() for _ in range(T)]
    assignment: Dict[int, int] = {}

    def bound_remaining(index: int) -> float:
        """Admissible optimistic bound on gains of sensors[index:]."""
        total = 0.0
        for v in sensors[index:]:
            total += max(utility.marginal(v, slot_sets[t]) for t in range(T))
        return total

    def dfs(index: int, current: float) -> None:
        nonlocal best_value, best_assignment
        if index == len(sensors):
            if current > best_value:
                best_value = current
                best_assignment = dict(assignment)
            return
        if current + bound_remaining(index) <= best_value + 1e-12:
            return
        v = sensors[index]
        gains = sorted(
            ((utility.marginal(v, slot_sets[t]), t) for t in range(T)),
            reverse=True,
        )
        for gain, t in gains:
            assignment[v] = t
            saved = slot_sets[t]
            slot_sets[t] = saved | {v}
            dfs(index + 1, current + gain)
            slot_sets[t] = saved
            del assignment[v]

    dfs(0, 0.0)
    return best_assignment, best_value


def _search_passive(problem: SchedulingProblem) -> Tuple[Dict[int, int], float]:
    """DFS over passive-slot assignments; removals only decrease utility."""
    utility = problem.utility
    T = problem.slots_per_period
    sensors = list(problem.sensors)
    everyone = frozenset(sensors)

    best_value = -math.inf
    best_assignment: Dict[int, int] = {}

    slot_sets: List[frozenset] = [everyone for _ in range(T)]
    assignment: Dict[int, int] = {}
    # Current total assumes every *unassigned* sensor is active in all
    # slots; assigning a passive slot subtracts that slot's decrement.
    initial_total = sum(utility.value(s) for s in slot_sets)

    def dfs(index: int, current: float) -> None:
        nonlocal best_value, best_assignment
        if index == len(sensors):
            if current > best_value:
                best_value = current
                best_assignment = dict(assignment)
            return
        if current <= best_value + 1e-12:
            return  # removals only decrease: current is the bound
        v = sensors[index]
        losses = sorted(
            ((utility.decrement(v, slot_sets[t]), t) for t in range(T))
        )
        for loss, t in losses:
            assignment[v] = t
            saved = slot_sets[t]
            slot_sets[t] = saved - {v}
            dfs(index + 1, current - loss)
            slot_sets[t] = saved
            del assignment[v]

    dfs(0, initial_total)
    return best_assignment, best_value


def exhaustive_optimal_value(problem: SchedulingProblem, limit: int = 200_000) -> float:
    """Raw ``T^n`` enumeration with no pruning (test oracle only)."""
    _check_size(problem, limit)
    utility = problem.utility
    T = problem.slots_per_period
    sensors = list(problem.sensors)
    best = -math.inf
    for combo in itertools.product(range(T), repeat=len(sensors)):
        if problem.is_sparse_regime:
            slot_sets = [
                frozenset(v for v, slot in zip(sensors, combo) if slot == t)
                for t in range(T)
            ]
        else:
            slot_sets = [
                frozenset(v for v, slot in zip(sensors, combo) if slot != t)
                for t in range(T)
            ]
        value = sum(utility.value(s) for s in slot_sets)
        best = max(best, value)
    return best
