"""Exact optimum for count-based utilities via balanced allocation.

For the paper's evaluation utility -- a single target covered by all
sensors with a *count-based concave* utility ``u(k) = U(|S|)`` (e.g.
``1-(1-p)^k``) -- the one-period optimum has a closed combinatorial
form: only the slot sizes matter, the per-slot utility is concave in
the size, so the optimal allocation of ``n`` sensors to ``T`` slots is
the **balanced partition** (sizes ``ceil(n/T)`` or ``floor(n/T)``).

For a *sum* of count-based targets with arbitrary coverage sets the
problem is NP-hard (Thm. 3.1), but for the single-count case this
module gives an exact optimum in O(1) -- an independent oracle used to
cross-check both the greedy scheduler and the branch-and-bound solver
on instances far beyond enumeration reach (n in the hundreds).

``exact_count_optimal`` additionally handles *non-concave* count
utilities by an O(n^2 T) dynamic program over (sensors left, slots
left), still assuming the utility depends only on slot sizes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, List, Sequence, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.utility.detection import HomogeneousDetectionUtility


def balanced_slot_sizes(num_sensors: int, slots: int) -> List[int]:
    """Slot sizes of the balanced partition (differ by at most one)."""
    if slots <= 0:
        raise ValueError(f"slots must be positive, got {slots}")
    if num_sensors < 0:
        raise ValueError(f"num_sensors must be >= 0, got {num_sensors}")
    base = num_sensors // slots
    extra = num_sensors % slots
    return [base + 1] * extra + [base] * (slots - extra)


def concave_count_optimal_value(
    count_value: Callable[[int], float], num_sensors: int, slots: int
) -> float:
    """One-period optimum ``sum_t u(k_t)`` for concave ``u``: balance.

    By concavity, moving a sensor from a larger slot to a smaller one
    never decreases the total, so the balanced partition is optimal.
    """
    return sum(count_value(k) for k in balanced_slot_sizes(num_sensors, slots))


def exact_count_optimal(
    count_value: Callable[[int], float], num_sensors: int, slots: int
) -> Tuple[float, List[int]]:
    """Exact optimum over slot sizes for *any* count utility (DP).

    Returns ``(value, sizes)``.  O(n^2 T) time -- fine for n in the
    hundreds.  Makes no concavity assumption, so it doubles as the
    test oracle for :func:`concave_count_optimal_value`.
    """
    if slots <= 0:
        raise ValueError(f"slots must be positive, got {slots}")
    if num_sensors < 0:
        raise ValueError(f"num_sensors must be >= 0, got {num_sensors}")

    @lru_cache(maxsize=None)
    def best(remaining: int, slots_left: int) -> Tuple[float, Tuple[int, ...]]:
        if slots_left == 0:
            return (0.0, ()) if remaining == 0 else (float("-inf"), ())
        if slots_left == 1:
            return (count_value(remaining), (remaining,))
        top_value = float("-inf")
        top_sizes: Tuple[int, ...] = ()
        for take in range(remaining + 1):
            tail_value, tail_sizes = best(remaining - take, slots_left - 1)
            value = count_value(take) + tail_value
            if value > top_value:
                top_value = value
                top_sizes = (take,) + tail_sizes
        return top_value, top_sizes

    value, sizes = best(num_sensors, slots)
    best.cache_clear()
    return value, list(sizes)


def balanced_schedule(problem: SchedulingProblem) -> PeriodicSchedule:
    """The balanced one-period schedule (optimal for concave count utilities).

    Sensors are dealt in id order into slots sized by
    :func:`balanced_slot_sizes`.  Valid for the rho >= 1 regime.
    """
    if not problem.is_sparse_regime:
        raise ValueError("balanced_schedule applies to the rho >= 1 regime")
    sizes = balanced_slot_sizes(problem.num_sensors, problem.slots_per_period)
    assignment = {}
    sensor = 0
    for slot, size in enumerate(sizes):
        for _ in range(size):
            assignment[sensor] = slot
            sensor += 1
    return PeriodicSchedule(
        slots_per_period=problem.slots_per_period,
        assignment=assignment,
        mode=ScheduleMode.ACTIVE_SLOT,
    )


def single_target_optimal_value(problem: SchedulingProblem) -> float:
    """Exact one-period optimum for a homogeneous single-target problem.

    Requires the problem utility to be a
    :class:`~repro.utility.detection.HomogeneousDetectionUtility`; this
    is the Fig. 8(a) configuration, where enumeration is hopeless at
    n = 100 but the count structure makes the optimum closed-form.
    """
    utility = problem.utility
    if not isinstance(utility, HomogeneousDetectionUtility):
        raise TypeError(
            "single_target_optimal_value needs a HomogeneousDetectionUtility; "
            f"got {type(utility).__name__}"
        )
    return concave_count_optimal_value(
        utility.value_of_count, problem.num_sensors, problem.slots_per_period
    )
