"""Baseline activation schedules for comparison.

The paper compares its greedy scheme against the enumerated optimum and
the closed-form upper bound; a practical reproduction also wants cheap
baselines to show the greedy scheme's advantage and to sanity-check the
simulator.  All baselines return feasible one-period schedules in the
same format as :func:`~repro.core.greedy.greedy_schedule`.

- :func:`random_schedule` -- each sensor picks a uniformly random slot
  (or passive slot for rho <= 1).
- :func:`balanced_random_schedule` -- a random *balanced* partition:
  slot loads differ by at most one.  Matches the intuition the paper
  states ("we may want to let each sensor active evenly").
- :func:`round_robin_schedule` -- sensor ``i`` to slot ``i mod T``:
  the deterministic even-spreading heuristic.
- :func:`all_in_first_slot_schedule` -- the pathological clustered
  schedule (everything in slot 0); the anti-pattern the diminishing-
  returns discussion of Sec. II-C warns about.
- :func:`high_energy_first_schedule` -- the High-Energy-First heuristic
  of Manju & Pujari: sensors are placed in descending order of their
  standalone contribution, each taking the slot where it currently adds
  the most.  A per-sensor (rather than global) greedy that the paper's
  scheme beats on almost every instance -- a useful ordering check.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.coverage.deployment import RngLike, make_rng


def _mode(problem: SchedulingProblem) -> ScheduleMode:
    return (
        ScheduleMode.ACTIVE_SLOT
        if problem.is_sparse_regime
        else ScheduleMode.PASSIVE_SLOT
    )


def random_schedule(
    problem: SchedulingProblem, rng: RngLike = None
) -> PeriodicSchedule:
    """Every sensor picks an independent uniformly random slot."""
    generator = make_rng(rng)
    T = problem.slots_per_period
    assignment: Dict[int, int] = {
        v: int(generator.integers(T)) for v in problem.sensors
    }
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )


def balanced_random_schedule(
    problem: SchedulingProblem, rng: RngLike = None
) -> PeriodicSchedule:
    """Random assignment with slot loads balanced to within one sensor.

    Shuffles the sensors and deals them round-robin into slots, so the
    partition is uniform among all balanced partitions.
    """
    generator = make_rng(rng)
    T = problem.slots_per_period
    order = list(problem.sensors)
    generator.shuffle(order)
    assignment: Dict[int, int] = {v: i % T for i, v in enumerate(order)}
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )


def round_robin_schedule(problem: SchedulingProblem) -> PeriodicSchedule:
    """Deterministic even spreading: sensor ``i`` to slot ``i mod T``."""
    T = problem.slots_per_period
    assignment: Dict[int, int] = {v: v % T for v in problem.sensors}
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )


def all_in_first_slot_schedule(problem: SchedulingProblem) -> PeriodicSchedule:
    """Everything activated simultaneously in slot 0.

    For rho >= 1 this wastes the diminishing returns completely: all
    coverage is bunched in one slot out of T.  For rho <= 1 the
    passive slots are bunched instead (everyone rests in slot 0), which
    is actually a sensible schedule there -- useful asymmetry for tests.
    """
    T = problem.slots_per_period
    assignment: Dict[int, int] = {v: 0 for v in problem.sensors}
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )


def high_energy_first_schedule(
    problem: SchedulingProblem,
) -> PeriodicSchedule:
    """High-Energy-First: strongest sensors claim their best slot first.

    Orders sensors by descending standalone utility ``U({v})`` (ties
    broken toward the lower id) and assigns each, in that order, to the
    slot where its marginal contribution over the sensors already placed
    there is largest (ties toward the earlier slot).  A per-sensor
    greedy with a fixed visiting order, so it typically -- though not
    provably always -- trails the global greedy, which is free to pick
    the best (sensor, slot) pair each round.  Sparse regime only: with
    rho < 1 the "one active slot" framing does not apply.
    """
    if not problem.is_sparse_regime:
        raise ValueError(
            "high_energy_first_schedule requires the sparse regime "
            "(rho >= 1)"
        )
    utility = problem.utility
    T = problem.slots_per_period
    order = sorted(
        problem.sensors,
        key=lambda v: (-utility.value(frozenset({v})), v),
    )
    active: List[frozenset] = [frozenset() for _ in range(T)]
    values: List[float] = [utility.value(s) for s in active]
    assignment: Dict[int, int] = {}
    for v in order:
        best_slot = 0
        best_gain = float("-inf")
        for t in range(T):
            gain = utility.value(active[t] | {v}) - values[t]
            if gain > best_gain:
                best_gain = gain
                best_slot = t
        assignment[v] = best_slot
        active[best_slot] = active[best_slot] | {v}
        values[best_slot] = utility.value(active[best_slot])
    return PeriodicSchedule(
        slots_per_period=T,
        assignment=assignment,
        mode=ScheduleMode.ACTIVE_SLOT,
    )
