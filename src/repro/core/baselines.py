"""Baseline activation schedules for comparison.

The paper compares its greedy scheme against the enumerated optimum and
the closed-form upper bound; a practical reproduction also wants cheap
baselines to show the greedy scheme's advantage and to sanity-check the
simulator.  All baselines return feasible one-period schedules in the
same format as :func:`~repro.core.greedy.greedy_schedule`.

- :func:`random_schedule` -- each sensor picks a uniformly random slot
  (or passive slot for rho <= 1).
- :func:`balanced_random_schedule` -- a random *balanced* partition:
  slot loads differ by at most one.  Matches the intuition the paper
  states ("we may want to let each sensor active evenly").
- :func:`round_robin_schedule` -- sensor ``i`` to slot ``i mod T``:
  the deterministic even-spreading heuristic.
- :func:`all_in_first_slot_schedule` -- the pathological clustered
  schedule (everything in slot 0); the anti-pattern the diminishing-
  returns discussion of Sec. II-C warns about.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.coverage.deployment import RngLike, make_rng


def _mode(problem: SchedulingProblem) -> ScheduleMode:
    return (
        ScheduleMode.ACTIVE_SLOT
        if problem.is_sparse_regime
        else ScheduleMode.PASSIVE_SLOT
    )


def random_schedule(
    problem: SchedulingProblem, rng: RngLike = None
) -> PeriodicSchedule:
    """Every sensor picks an independent uniformly random slot."""
    generator = make_rng(rng)
    T = problem.slots_per_period
    assignment: Dict[int, int] = {
        v: int(generator.integers(T)) for v in problem.sensors
    }
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )


def balanced_random_schedule(
    problem: SchedulingProblem, rng: RngLike = None
) -> PeriodicSchedule:
    """Random assignment with slot loads balanced to within one sensor.

    Shuffles the sensors and deals them round-robin into slots, so the
    partition is uniform among all balanced partitions.
    """
    generator = make_rng(rng)
    T = problem.slots_per_period
    order = list(problem.sensors)
    generator.shuffle(order)
    assignment: Dict[int, int] = {v: i % T for i, v in enumerate(order)}
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )


def round_robin_schedule(problem: SchedulingProblem) -> PeriodicSchedule:
    """Deterministic even spreading: sensor ``i`` to slot ``i mod T``."""
    T = problem.slots_per_period
    assignment: Dict[int, int] = {v: v % T for v in problem.sensors}
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )


def all_in_first_slot_schedule(problem: SchedulingProblem) -> PeriodicSchedule:
    """Everything activated simultaneously in slot 0.

    For rho >= 1 this wastes the diminishing returns completely: all
    coverage is bunched in one slot out of T.  For rho <= 1 the
    passive slots are bunched instead (everyone rests in slot 0), which
    is actually a sensible schedule there -- useful asymmetry for tests.
    """
    T = problem.slots_per_period
    assignment: Dict[int, int] = {v: 0 for v in problem.sensors}
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=_mode(problem)
    )
