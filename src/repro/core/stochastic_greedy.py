"""Stochastic greedy: subsampled hill-climbing for large fleets.

For very large ``n`` even the lazy greedy's initial heap build costs
``n * T`` utility evaluations.  The stochastic-greedy idea
(Mirzasoleiman et al., AAAI'15, "lazier than lazy greedy") evaluates
each step on a random *sample* of the remaining candidates: with sample
size ``s = (n/k) log(1/eps)`` the expected approximation loses only
``eps``.  We adapt it to the paper's slot-assignment structure: at each
of the ``n`` steps, draw a sample of the unassigned sensors, evaluate
each against every slot, and commit the best (sensor, slot) pair.

Guarantees are in expectation and slightly weaker than Algorithm 1's
deterministic 1/2; the ablation bench measures the actual quality/speed
trade-off against the exact greedy.

Honest scaling note (see ``examples/city_scale.py``): under the
partition constraint the required sample is ``(n/T) log(1/eps)`` --
a large fraction of the ground set -- and sampling cannot reuse stale
gains, so this variant only beats the *naive* quadratic scan.  The
lazy (CELF) greedy in :mod:`repro.core.greedy` is both exact and
faster; prefer it unless utility evaluations are extremely expensive
and a coarse epsilon is acceptable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, ScheduleMode
from repro.coverage.deployment import RngLike, make_rng
from repro.obs.registry import get_registry
from repro.utility.incremental import flush_ops, make_evaluator


def stochastic_greedy_schedule(
    problem: SchedulingProblem,
    epsilon: float = 0.1,
    rng: RngLike = None,
) -> PeriodicSchedule:
    """Subsampled greedy assignment (rho >= 1 regime).

    Parameters
    ----------
    epsilon:
        Accuracy knob in (0, 1): smaller epsilon -> larger samples ->
        closer to the exact greedy.  The per-step sample size is
        ``ceil((n / T) * log(1 / eps))``, clipped to [1, remaining].
    """
    if not problem.is_sparse_regime:
        raise ValueError(
            f"stochastic_greedy_schedule requires rho >= 1 (got rho="
            f"{problem.rho:g})"
        )
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    generator = make_rng(rng)
    utility = problem.utility
    n = problem.num_sensors
    T = problem.slots_per_period

    sample_size = max(1, math.ceil((n / max(T, 1)) * math.log(1.0 / epsilon)))
    remaining: List[int] = list(range(n))
    # One incremental evaluator per slot; the batched gains() kernel
    # scores a whole sample against a slot in one call, bit-equal to
    # the per-pair utility.marginal scan it replaces.
    evaluators = [make_evaluator(utility) for _ in range(T)]
    assignment: Dict[int, int] = {}
    evaluations = 0

    while remaining:
        k = min(sample_size, len(remaining))
        idx = generator.choice(len(remaining), size=k, replace=False)
        sample = [remaining[i] for i in idx]
        slot_gains = [evaluators[slot].gains(sample) for slot in range(T)]
        evaluations += k * T
        best: Optional[Tuple[float, int, int]] = None
        best_pick = (sample[0], 0)
        for i, sensor in enumerate(sample):
            for slot in range(T):
                gain = float(slot_gains[slot][i])
                key = (gain, -sensor, -slot)
                if best is None or key > best:
                    best = key
                    best_pick = (sensor, slot)
        sensor, slot = best_pick
        remaining.remove(sensor)
        evaluators[slot].add(sensor)
        assignment[sensor] = slot

    from repro.core.greedy import _EVALS_HELP

    get_registry().counter(
        "repro_greedy_marginal_evals_total", _EVALS_HELP, variant="stochastic"
    ).inc(evaluations)
    flush_ops(evaluators)
    return PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=ScheduleMode.ACTIVE_SLOT
    )
