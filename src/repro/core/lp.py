"""LP-relaxation scheduling: IP, relaxation, rounding, repair (Sec. IV-A-1).

The paper's integer program (rho > 1):

.. math::

    \\max \\sum_{t=1}^{L} \\sum_{j=1}^{m} U_j(S_X(O_j, t)) \\quad
    \\text{s.t.} \\quad x(v_i, t) \\in \\{0, 1\\}, \\quad
    \\sum_{t'=t}^{t+T} x(v_i, t') \\in \\{0, 1\\}\\ \\forall i, \\forall
    0 \\le t \\le L - T,

i.e. every sensor is active at most once in any window of ``T``
consecutive slots.  Relaxing the integrality gives an LP; the paper
rounds each ``x(v_i, t)`` independently, repairs infeasibility by
re-rounding (the iterative method of [13]) and, when iteration is too
slow, "carefully deactivates some sensors to achieve feasibility".

**Linearizing the submodular objective.**  The IP as written carries
the set function ``U_j`` directly; to obtain an actual linear program
we use the standard concave-closure linearization for *count-based*
target utilities (which covers the paper's entire evaluation):
when ``U_j(S)`` depends only on ``c = |S \\cap V(O_j)|`` through a
concave sequence ``u_j(0) <= u_j(1) <= ...`` (e.g. the detection
utility ``1 - (1-p)^c``), a per-(target, slot) variable ``z_{j,t}``
bounded by every tangent line

.. math:: z_{j,t} \\le u_j(k) + (u_j(k{+}1) - u_j(k)) \\Bigl(\\sum_i
          a_{ij} x_{i,t} - k\\Bigr), \\qquad k = 0..K-1

equals the concave envelope at fractional ``x`` and the exact utility
at integral ``x``.  For target utilities that are not count-based we
fall back to the coarser (still valid) bound ``z_{j,t} \\le
U_j(V(O_j)) \\cdot \\min(1, \\sum_i a_{ij} x_{i,t})``.

The optimal LP value is therefore an **upper bound on the optimal
schedule utility**, used as such by :mod:`repro.core.bounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.problem import SchedulingProblem
from repro.core.schedule import UnrolledSchedule
from repro.coverage.deployment import RngLike, make_rng
from repro.utility.base import UtilityFunction
from repro.utility.detection import DetectionUtility, HomogeneousDetectionUtility
from repro.utility.logsum import LogSumUtility
from repro.utility.operations import CappedCardinalityUtility
from repro.utility.target_system import TargetSystem


# ----------------------------------------------------------------------
# Count-based utility detection
# ----------------------------------------------------------------------


def count_utility_values(fn: UtilityFunction) -> Optional[List[float]]:
    """``[U(0), U(1), .., U(K)]`` if ``fn`` depends only on ``|S|``.

    Returns ``None`` when the function is not recognizably count-based;
    callers then use the coarse coverage bound.  The sequence is checked
    for monotone concavity (it must be, for these classes, but a cheap
    assert catches regressions in the utility implementations).
    """
    size = len(fn.ground_set)
    values: Optional[List[float]] = None
    if isinstance(fn, HomogeneousDetectionUtility):
        values = [fn.value_of_count(k) for k in range(size + 1)]
    elif isinstance(fn, DetectionUtility):
        probs = list(fn.probabilities.values())
        if probs and all(abs(p - probs[0]) < 1e-12 for p in probs):
            p = probs[0]
            values = [1.0 - (1.0 - p) ** k for k in range(size + 1)]
    elif isinstance(fn, LogSumUtility):
        weights = list(fn.weights.values())
        if weights and all(abs(w - weights[0]) < 1e-12 for w in weights):
            w = weights[0]
            values = [math.log1p(k * w) for k in range(size + 1)]
    elif isinstance(fn, CappedCardinalityUtility):
        cap = fn.value(fn.ground_set)
        values = [float(min(k, cap)) for k in range(size + 1)]
    else:
        from repro.utility.kcoverage import KCoverageUtility

        if isinstance(fn, KCoverageUtility):
            values = [fn.value_of_count(k) for k in range(size + 1)]
    if values is None:
        return None
    for k in range(1, len(values)):
        if values[k] < values[k - 1] - 1e-9:
            raise AssertionError("count-utility sequence must be non-decreasing")
    return values


def _targets_of(problem: SchedulingProblem) -> Tuple[List[frozenset], List[UtilityFunction]]:
    """Split the problem utility into per-target (cover set, U_i) pairs.

    A :class:`TargetSystem` decomposes naturally; any other utility is
    treated as a single 'target' covering its whole ground set, which
    keeps the LP applicable to single-target or region utilities.
    """
    utility = problem.utility
    if isinstance(utility, TargetSystem):
        covers = [utility.coverage_set(i) for i in range(utility.num_targets)]
        fns = [utility.target_utility(i) for i in range(utility.num_targets)]
        return covers, fns
    return [utility.ground_set], [utility]


@dataclass(frozen=True)
class LpSolution:
    """Output of the LP pipeline.

    Attributes
    ----------
    fractional:
        The relaxed activation matrix, shape ``(n, L)``.
    objective:
        Optimal LP value -- an upper bound on any feasible schedule's
        total utility.
    schedule:
        The rounded, repaired, feasible schedule (``None`` if rounding
        was not requested).
    rounding_iterations:
        How many re-rounding passes the repair loop used.
    deactivated:
        Number of activations dropped by the greedy-deactivation
        fallback.
    """

    fractional: np.ndarray
    objective: float
    schedule: Optional[UnrolledSchedule]
    rounding_iterations: int = 0
    deactivated: int = 0


def _window_limit(problem: SchedulingProblem) -> int:
    """Max activations per sensor per window of T slots (1, or T-1 for rho<=1)."""
    T = problem.slots_per_period
    return 1 if problem.is_sparse_regime else T - 1


def lp_relaxation(problem: SchedulingProblem, periodic: bool = False) -> LpSolution:
    """Solve the LP relaxation; no rounding.

    Builds the concave-closure linearization described in the module
    docstring over the full horizon ``L`` with the paper's sliding
    window constraints, and solves it with HiGHS via
    :func:`scipy.optimize.linprog`.

    With ``periodic=True`` the LP is solved over a *single* period
    (variables ``n x T`` instead of ``n x L``; the window constraint
    collapses to the per-period activation budget) and the objective is
    scaled by ``alpha``.  For the paper's stationary utilities the
    periodic optimum repeated each period matches the full-horizon
    optimum, so the scaled objective is the same upper bound at a
    fraction of the solve cost; the returned ``fractional`` matrix has
    shape ``(n, T)``.
    """
    if periodic and problem.num_periods > 1:
        single = lp_relaxation(problem.with_num_periods(1))
        return LpSolution(
            fractional=single.fractional,
            objective=problem.num_periods * single.objective,
            schedule=None,
        )
    n = problem.num_sensors
    L = problem.total_slots
    T = problem.slots_per_period
    covers, fns = _targets_of(problem)
    m = len(covers)

    def x_index(sensor: int, slot: int) -> int:
        return sensor * L + slot

    num_x = n * L
    z_offset = num_x
    num_z = m * L

    def z_index(target: int, slot: int) -> int:
        return z_offset + target * L + slot

    num_vars = num_x + num_z

    # Objective: maximize sum z -> minimize -sum z.
    c = np.zeros(num_vars)
    c[z_offset:] = -1.0

    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    rhs: List[float] = []
    row = 0

    # Sliding-window activation constraints.
    limit = _window_limit(problem)
    window_starts = range(L - T + 1) if L >= T else range(1)
    for sensor in range(n):
        for start in window_starts:
            for t in range(start, min(start + T, L)):
                rows.append(row)
                cols.append(x_index(sensor, t))
                data.append(1.0)
            rhs.append(float(limit))
            row += 1

    # Utility linearization per (target, slot).
    upper_z = np.zeros(num_z)
    for j, (cover, fn) in enumerate(zip(covers, fns)):
        cover_list = sorted(v for v in cover if v < n)
        full_value = fn.value(frozenset(cover_list))
        counts = count_utility_values(fn)
        for t in range(L):
            upper_z[j * L + t] = full_value
            if not cover_list:
                continue
            if counts is not None:
                # Tangent lines of the concave count curve.
                for k in range(len(counts) - 1):
                    slope = counts[k + 1] - counts[k]
                    # z - slope * sum_i x_{i,t} <= counts[k] - slope * k
                    rows.append(row)
                    cols.append(z_index(j, t))
                    data.append(1.0)
                    for v in cover_list:
                        rows.append(row)
                        cols.append(x_index(v, t))
                        data.append(-slope)
                    rhs.append(counts[k] - slope * k)
                    row += 1
                    if slope <= 1e-15:
                        break  # flat tail: remaining tangents are dominated
            else:
                # Coarse bound: z <= U(full) * sum_i x_{i,t}.
                rows.append(row)
                cols.append(z_index(j, t))
                data.append(1.0)
                for v in cover_list:
                    rows.append(row)
                    cols.append(x_index(v, t))
                    data.append(-full_value)
                rhs.append(0.0)
                row += 1

    a_ub = csr_matrix((data, (rows, cols)), shape=(row, num_vars))
    bounds = [(0.0, 1.0)] * num_x + [
        (0.0, float(upper_z[i])) for i in range(num_z)
    ]
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=np.array(rhs),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP relaxation failed: {result.message}")
    x = result.x[:num_x].reshape(n, L)
    return LpSolution(
        fractional=x,
        objective=-result.fun,
        schedule=None,
    )


# ----------------------------------------------------------------------
# Rounding + repair
# ----------------------------------------------------------------------


def _round_sensor(
    probabilities: np.ndarray, rng: np.random.Generator
) -> List[int]:
    """Independently round one sensor's row: slot t kept w.p. x_{i,t}."""
    draws = rng.random(probabilities.shape[0])
    return [int(t) for t in np.flatnonzero(draws < probabilities)]


def _window_feasible(slots: Sequence[int], T: int, limit: int) -> bool:
    """Check a single sensor's activation slots against the window rule."""
    slots = sorted(slots)
    left = 0
    for right in range(len(slots)):
        while slots[right] - slots[left] >= T:
            left += 1
        if right - left + 1 > limit:
            return False
    return True


def _deactivate_to_feasibility(
    slots: Sequence[int], T: int, limit: int
) -> Tuple[List[int], int]:
    """Greedy deactivation: keep a maximal feasible subset of activations.

    Scans activations in time order and keeps one whenever doing so does
    not overfill the trailing window -- the "carefully deactivate some
    sensors" fallback the paper sketches.  Returns (kept, dropped).
    """
    kept: List[int] = []
    dropped = 0
    for slot in sorted(slots):
        window = [s for s in kept if slot - s < T] + [slot]
        if len(window) <= limit:
            kept.append(slot)
        else:
            dropped += 1
    return kept, dropped


def lp_periodic_schedule(
    problem: SchedulingProblem,
    rng: RngLike = None,
) -> LpSolution:
    """Periodic LP + marginal-preserving per-sensor rounding.

    Solves the one-period LP and rounds each sensor *categorically*:
    slot ``t`` is chosen with probability ``x(v_i, t)`` and no slot
    with the leftover ``1 - sum_t x(v_i, t)`` -- the literal "let each
    node be active at time-slot t with probability x(v_i, t)" of
    Sec. IV-A-1, but sampled jointly per sensor so the one-activation-
    per-period constraint holds *by construction*: no repair loop is
    ever needed.  Requires the rho >= 1 regime (a sensor picks its
    single active slot); the rounded period is unrolled ``alpha``
    times.
    """
    if not problem.is_sparse_regime:
        raise ValueError(
            "lp_periodic_schedule requires rho >= 1; use lp_schedule for "
            "the dense regime"
        )
    relaxed = lp_relaxation(problem, periodic=True)
    generator = make_rng(rng)
    T = problem.slots_per_period
    from repro.core.schedule import PeriodicSchedule, ScheduleMode

    assignment: Dict[int, int] = {}
    for sensor in range(problem.num_sensors):
        probabilities = np.clip(relaxed.fractional[sensor], 0.0, 1.0)
        leftover = max(0.0, 1.0 - probabilities.sum())
        weights = np.append(probabilities, leftover)
        weights = weights / weights.sum()
        choice = int(generator.choice(T + 1, p=weights))
        if choice < T:
            assignment[sensor] = choice
    periodic = PeriodicSchedule(
        slots_per_period=T, assignment=assignment, mode=ScheduleMode.ACTIVE_SLOT
    )
    schedule = periodic.unroll(problem.num_periods)
    schedule.validate_feasible()
    return LpSolution(
        fractional=relaxed.fractional,
        objective=relaxed.objective,
        schedule=schedule,
        rounding_iterations=1,
        deactivated=0,
    )


def lp_schedule(
    problem: SchedulingProblem,
    rng: RngLike = None,
    max_rounding_iterations: int = 50,
) -> LpSolution:
    """Full pipeline: relax, round, repair (Sec. IV-A-1).

    Each sensor's activations are rounded independently from its
    fractional row.  Sensors whose rounded activations violate the
    window rule are re-rounded (iterative repair, up to
    ``max_rounding_iterations`` passes over the violating sensors); any
    still-infeasible sensor after the iteration budget is repaired by
    greedy deactivation.  The returned schedule is always feasible.

    See :func:`lp_periodic_schedule` for the compact periodic variant
    whose rounding is feasible by construction.
    """
    relaxed = lp_relaxation(problem)
    generator = make_rng(rng)
    n = problem.num_sensors
    L = problem.total_slots
    T = problem.slots_per_period
    limit = _window_limit(problem)

    chosen: Dict[int, List[int]] = {}
    pending = list(range(n))
    iterations = 0
    while pending and iterations < max_rounding_iterations:
        iterations += 1
        still_bad: List[int] = []
        for sensor in pending:
            slots = _round_sensor(relaxed.fractional[sensor], generator)
            if _window_feasible(slots, T, limit):
                chosen[sensor] = slots
            else:
                still_bad.append(sensor)
        pending = still_bad

    deactivated = 0
    for sensor in pending:
        slots = _round_sensor(relaxed.fractional[sensor], generator)
        kept, dropped = _deactivate_to_feasibility(slots, T, limit)
        chosen[sensor] = kept
        deactivated += dropped

    active_sets: List[set] = [set() for _ in range(L)]
    for sensor, slots in chosen.items():
        for slot in slots:
            active_sets[slot].add(sensor)
    schedule = UnrolledSchedule(
        slots_per_period=T,
        active_sets=tuple(frozenset(s) for s in active_sets),
        rho_at_most_one=not problem.is_sparse_regime,
    )
    schedule.validate_feasible()
    return LpSolution(
        fractional=relaxed.fractional,
        objective=relaxed.objective,
        schedule=schedule,
        rounding_iterations=iterations,
        deactivated=deactivated,
    )
