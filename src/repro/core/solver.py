"""Unified solver front-end: one call, any method, comparable results.

``solve(problem, method="greedy")`` dispatches to the right algorithm
for the problem's regime and wraps the output in a :class:`SolveResult`
carrying the schedule, its utilities and solver metadata -- the shape
the benchmark harness and examples consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.baselines import (
    all_in_first_slot_schedule,
    balanced_random_schedule,
    high_energy_first_schedule,
    random_schedule,
    round_robin_schedule,
)
from repro.core.greedy import GreedyTrace, greedy_schedule
from repro.core.greedy_passive import greedy_passive_schedule
from repro.core.lp import lp_schedule
from repro.core.optimal import optimal_schedule
from repro.core.problem import SchedulingProblem
from repro.core.schedule import PeriodicSchedule, UnrolledSchedule
from repro.coverage.deployment import RngLike
from repro.obs import events as obs_events
from repro.obs import tracing
from repro.obs.registry import get_registry

#: Methods accepted by :func:`solve`.
METHODS = (
    "greedy",
    "greedy-naive",
    "greedy+ls",
    "balanced",
    "lp",
    "lp-periodic",
    "optimal",
    "random",
    "balanced-random",
    "round-robin",
    "all-first-slot",
    "hef",
)


@dataclass
class SolveResult:
    """A solved instance: schedule + headline metrics + metadata."""

    method: str
    problem: SchedulingProblem
    schedule: UnrolledSchedule
    periodic: Optional[PeriodicSchedule]
    total_utility: float
    average_slot_utility: float
    solve_seconds: float
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def average_utility_per_target(self) -> float:
        """Average utility per target per slot -- the paper's Fig. 8/9 metric."""
        from repro.utility.target_system import TargetSystem

        utility = self.problem.utility
        targets = (
            utility.num_targets if isinstance(utility, TargetSystem) else 1
        )
        if targets == 0:
            return 0.0
        return self.average_slot_utility / targets


def solve(
    problem: SchedulingProblem,
    method: str = "greedy",
    rng: RngLike = None,
    trace: Optional[GreedyTrace] = None,
) -> SolveResult:
    """Solve the instance with the chosen method.

    Periodic methods (everything except ``lp``) solve one period and
    unroll it ``alpha`` times -- the paper's Fig. 5 construction, which
    Thm. 4.3 shows preserves the greedy scheme's 1/2-approximation.
    The LP solves the full horizon directly.

    Parameters
    ----------
    method:
        One of :data:`METHODS`.  ``greedy`` auto-selects the active-slot
        (rho >= 1) or passive-slot (rho <= 1) variant.
    rng:
        Seed / generator for the randomized methods.
    trace:
        Optional :class:`~repro.core.greedy.GreedyTrace` filled when the
        method is greedy.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")

    start = time.perf_counter()
    periodic: Optional[PeriodicSchedule] = None
    extras: Dict[str, float] = {}

    with tracing.span("solve", method=method, sensors=problem.num_sensors):
        if method in ("greedy", "greedy-naive"):
            lazy = method == "greedy"
            if problem.is_sparse_regime:
                periodic = greedy_schedule(problem, lazy=lazy, trace=trace)
            else:
                periodic = greedy_passive_schedule(
                    problem, lazy=lazy, trace=trace
                )
        elif method == "greedy+ls":
            from repro.core.local_search import (
                LocalSearchReport,
                greedy_with_local_search,
            )

            ls_report = LocalSearchReport(0, 0.0, 0.0)
            periodic = greedy_with_local_search(problem, report=ls_report)
            extras["local_search_moves"] = float(ls_report.moves)
            extras["local_search_improvement"] = ls_report.improvement
        elif method == "balanced":
            from repro.core.dp import balanced_schedule

            periodic = balanced_schedule(problem)
        elif method == "optimal":
            periodic = optimal_schedule(problem)
        elif method == "random":
            periodic = random_schedule(problem, rng=rng)
        elif method == "balanced-random":
            periodic = balanced_random_schedule(problem, rng=rng)
        elif method == "round-robin":
            periodic = round_robin_schedule(problem)
        elif method == "all-first-slot":
            periodic = all_in_first_slot_schedule(problem)
        elif method == "hef":
            periodic = high_energy_first_schedule(problem)

        if method in ("lp", "lp-periodic"):
            if method == "lp-periodic":
                from repro.core.lp import lp_periodic_schedule

                lp_result = lp_periodic_schedule(problem, rng=rng)
            else:
                lp_result = lp_schedule(problem, rng=rng)
            schedule = lp_result.schedule
            assert schedule is not None
            extras["lp_objective"] = lp_result.objective
            extras["rounding_iterations"] = float(lp_result.rounding_iterations)
            extras["deactivated"] = float(lp_result.deactivated)
        elif method not in ("lp", "lp-periodic"):
            assert periodic is not None
            schedule = periodic.unroll(problem.num_periods)

    elapsed = time.perf_counter() - start
    registry = get_registry()
    registry.counter(
        "repro_solve_total", "Completed solves by method", method=method
    ).inc()
    registry.histogram(
        "repro_solve_seconds", "Solve wall time by method", method=method
    ).observe(elapsed)
    obs_events.emit(
        "solve",
        method=method,
        sensors=problem.num_sensors,
        seconds=elapsed,
    )
    schedule.validate_feasible()
    total = schedule.total_utility(problem.utility)
    # average_slot_utility would re-evaluate every slot; derive it from
    # the total instead (same division, bit-equal result).
    average = total / schedule.total_slots if schedule.total_slots else 0.0
    return SolveResult(
        method=method,
        problem=problem,
        schedule=schedule,
        periodic=periodic,
        total_utility=total,
        average_slot_utility=average,
        solve_seconds=elapsed,
        extras=extras,
    )
