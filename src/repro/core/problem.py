"""The scheduling-problem specification (paper Sec. II-D).

A :class:`SchedulingProblem` bundles everything a solver needs:

- the sensor ids (0..n-1, homogeneous batteries as the paper assumes),
- the charging period (which fixes ``T`` and whether we are in the
  rho > 1 or rho <= 1 regime),
- the number of periods ``alpha`` (working time ``L = alpha T``),
- the per-slot utility (a single stationary submodular function, the
  paper's setting -- per-slot variation is supported through
  :class:`~repro.utility.target_system.PerSlotUtility` in the greedy
  internals but the problem-level API is stationary, matching the
  periodic-repetition analysis of Thm. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.energy.period import ChargingPeriod
from repro.utility.base import UtilityFunction


@dataclass(frozen=True)
class SchedulingProblem:
    """A complete instance of the dynamic node-activation problem.

    Attributes
    ----------
    num_sensors:
        ``n``; sensors are ids ``0..n-1``.
    period:
        The homogeneous charging period (T_d, T_r) shared by all nodes.
    utility:
        The per-slot utility ``U(S)`` -- normalized, non-decreasing,
        submodular.  For multi-target coverage pass a
        :class:`~repro.utility.target_system.TargetSystem` (Eq. 1).
    num_periods:
        ``alpha >= 1``; the working time is ``L = alpha T`` slots.
    """

    num_sensors: int
    period: ChargingPeriod
    utility: UtilityFunction
    num_periods: int = 1

    def __post_init__(self) -> None:
        if self.num_sensors < 0:
            raise ValueError(f"num_sensors must be >= 0, got {self.num_sensors}")
        if self.num_periods < 1:
            raise ValueError(f"num_periods must be >= 1, got {self.num_periods}")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    @property
    def sensors(self) -> Tuple[int, ...]:
        """Sensor ids in order: ``(0, 1, .., n-1)``."""
        return tuple(range(self.num_sensors))

    @property
    def sensor_set(self) -> FrozenSet[int]:
        """Sensor ids as a frozenset (the full activation candidate set)."""
        return frozenset(range(self.num_sensors))

    @property
    def slots_per_period(self) -> int:
        """``T`` in slots."""
        return self.period.slots_per_period

    @property
    def total_slots(self) -> int:
        """``L`` in slots."""
        return self.num_periods * self.slots_per_period

    @property
    def rho(self) -> float:
        """``T_r / T_d`` of the charging period (integral per Sec. II-B)."""
        return self.period.rho

    @property
    def is_sparse_regime(self) -> bool:
        """True for rho >= 1 (each sensor active <= 1 slot per period)."""
        return self.rho >= 1

    def with_num_periods(self, num_periods: int) -> "SchedulingProblem":
        """Copy of the instance with a different working time ``alpha``."""
        return SchedulingProblem(
            num_sensors=self.num_sensors,
            period=self.period,
            utility=self.utility,
            num_periods=num_periods,
        )

    def __str__(self) -> str:
        return (
            f"SchedulingProblem(n={self.num_sensors}, rho={self.rho:g}, "
            f"T={self.slots_per_period} slots, alpha={self.num_periods})"
        )
