"""Network-facing service layer: HTTP solve/simulate with batching.

``repro serve`` turns the one-shot CLI pipeline into a long-lived
process: JSON problem instances arrive over HTTP, a request queue
coalesces duplicate in-flight instances by their content fingerprint,
and batches flow through :func:`repro.runtime.executor.solve_many` so
the schedule cache and worker pool are shared across clients.

Public surface:

- :class:`~repro.serve.app.SolveService` / ``ServiceConfig`` -- the
  embeddable server (tests run it in-process on an ephemeral port);
- :class:`~repro.serve.batcher.SolveBatcher` -- the request queue;
- :mod:`repro.serve.schemas` -- the wire formats and their validators.
"""

from repro.serve.app import ServiceConfig, SolveService
from repro.serve.batcher import OverloadedError, SolveBatcher

__all__ = [
    "ServiceConfig",
    "SolveService",
    "SolveBatcher",
    "OverloadedError",
]
