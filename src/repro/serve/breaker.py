"""Circuit breaker: stop hammering a failing backend, probe, recover.

The serving stack's solve path can fail for infrastructure reasons --
a broken worker pool, a wedged batch, injected chaos faults.  Retrying
each request individually (``runtime.retry``) handles *transient*
blips; the breaker handles *sustained* failure, where every retry is a
fresh way to waste the client's deadline.  The state machine is the
classic three-state one:

- **closed** (healthy): requests flow; consecutive infrastructure
  failures are counted, successes reset the count.  ``threshold``
  consecutive failures trip the breaker.
- **open** (tripped): requests are refused up front
  (:meth:`CircuitBreaker.allow` is ``False``) and the serving layer
  answers from its degraded path instead
  (:mod:`repro.serve.degrade`).  After ``recovery_time`` seconds the
  breaker moves to half-open.
- **half-open** (probing): a bounded number of probe requests are let
  through.  One success closes the breaker; one failure re-opens it
  and restarts the recovery clock.

Only *infrastructure* failures count (the handler records them for
timeouts, deadline exhaustion and :func:`repro.runtime.retry.is_retryable`
errors) -- a client posting an unsolvable instance must never trip the
breaker for everyone else.

State is exported as ``repro_breaker_state`` (0 closed / 1 open /
2 half-open) and every transition increments
``repro_breaker_transitions_total{from_state,to_state}``.  The clock is
injectable so tests can step time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs import events as obs_events
from repro.obs.registry import get_registry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the state (stable for dashboards).
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

_STATE_HELP = "Circuit breaker state (0 closed, 1 open, 2 half-open)"
_TRANSITIONS_HELP = "Circuit breaker state transitions"


class BreakerOpenError(RuntimeError):
    """The breaker is open; the solve path is presumed unhealthy."""


class CircuitBreaker:
    """Thread-safe three-state circuit breaker.

    Parameters
    ----------
    threshold:
        Consecutive infrastructure failures (while closed) that trip
        the breaker.
    recovery_time:
        Seconds the breaker stays open before probing.
    half_open_max:
        Concurrent probe requests admitted while half-open.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 5,
        recovery_time: float = 5.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if recovery_time < 0:
            raise ValueError(
                f"recovery_time must be >= 0, got {recovery_time}"
            )
        if half_open_max < 1:
            raise ValueError(
                f"half_open_max must be >= 1, got {half_open_max}"
            )
        self.threshold = threshold
        self.recovery_time = recovery_time
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive, while closed
        self._opened_at = 0.0
        self._probes = 0  # in-flight, while half-open
        registry = get_registry()
        self._m_state = registry.gauge("repro_breaker_state", _STATE_HELP)
        self._m_state.set(STATE_CODES[CLOSED])

    # -- introspection -------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_probe_locked()
            return self._state

    # -- the request path ----------------------------------------------

    def allow(self) -> bool:
        """May a request try the real solve path right now?

        Open -> ``False`` (serve degraded).  Half-open -> ``True`` for
        up to ``half_open_max`` concurrent probes, ``False`` beyond.
        Closed -> ``True``.  A ``True`` answer *admits* the caller: it
        must follow up with :meth:`record_success` or
        :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_probe_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes < self.half_open_max:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        """The admitted request succeeded."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition_locked(CLOSED)
            self._failures = 0
            self._probes = 0

    def record_neutral(self) -> None:
        """The admitted request ended without a health signal.

        Load shedding (429) and drain refusals say nothing about the
        solve path; this just releases a half-open probe slot so
        neutral outcomes cannot starve probing.
        """
        with self._lock:
            if self._probes > 0:
                self._probes -= 1

    def record_failure(self) -> None:
        """The admitted request failed for infrastructure reasons."""
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: back to open, restart the clock.
                self._transition_locked(OPEN)
                return
            if self._state != CLOSED:
                return
            self._failures += 1
            if self._failures >= self.threshold:
                self._transition_locked(OPEN)

    # -- internals -----------------------------------------------------

    def _maybe_probe_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._transition_locked(HALF_OPEN)

    def _transition_locked(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
        if new_state in (OPEN, CLOSED):
            self._probes = 0
        if new_state == CLOSED:
            self._failures = 0
        self._m_state.set(STATE_CODES[new_state])
        get_registry().counter(
            "repro_breaker_transitions_total",
            _TRANSITIONS_HELP,
            from_state=old_state,
            to_state=new_state,
        ).inc()
        obs_events.emit(
            "serve.breaker", from_state=old_state, to_state=new_state
        )
