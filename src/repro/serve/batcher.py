"""The request queue: admission control, micro-batching, coalescing.

Every solve a handler thread needs goes through one
:class:`SolveBatcher`.  The flow:

1. **Admission** (caller's thread): if the cache already holds the
   instance (:meth:`~repro.runtime.cache.ScheduleCache.peek_result`),
   answer immediately -- warm traffic never pays batching latency.
   Otherwise the request joins the queue, unless the number in flight
   has reached ``max_queue`` -- then :class:`OverloadedError` is raised
   *immediately* (the HTTP layer maps it to 429).  Load must be shed at
   the door; a bounded wait here would just move the pile-up into the
   socket backlog.
2. **Batching** (worker thread): the worker collects everything that
   arrives within ``batch_window`` seconds of the first pending request
   (up to ``max_batch``) and hands the batch to
   :func:`repro.runtime.executor.solve_many`, which fingerprints,
   coalesces duplicate instances onto one solve, consults the schedule
   cache, and farms unique misses across the worker pool.  N clients
   posting the same instance in one window cost **one** solver
   invocation.
3. **Fan-out**: each request's future is resolved with its own
   rehydrated result (no shared mutable state across responses).

The batcher never reorders errors into results: a failed batch fails
exactly the requests in it, with the original exception.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.solver import SolveResult
from repro.obs.registry import get_registry
from repro.runtime.cache import ScheduleCache
from repro.runtime.executor import SolveTask, solve_many
from repro.runtime.fingerprint import UncacheableError, solve_fingerprint

_QUEUE_HELP = "Solve requests queued or being batched right now"
_BATCH_HELP = "Requests per executed batch"
_COALESCED_HELP = "Requests answered by another in-flight request's solve"
_FASTPATH_HELP = "Requests answered from the cache at admission time"


class OverloadedError(RuntimeError):
    """The request queue is full; the caller should shed this request."""


class BatcherClosedError(RuntimeError):
    """The batcher is draining/closed and accepts no new requests."""


@dataclass
class _Pending:
    """One queued request and the slot its answer lands in."""

    task: SolveTask
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[SolveResult] = None
    cache_status: str = "miss"
    coalesced: bool = False
    error: Optional[BaseException] = None


class SolveBatcher:
    """Bounded, coalescing micro-batcher over ``solve_many``.

    Parameters
    ----------
    cache:
        Shared :class:`ScheduleCache` (``None`` disables caching and
        the admission fast path).
    jobs:
        Worker processes for each batch's unique misses.
    max_queue:
        Maximum requests in flight (queued + being solved); admissions
        beyond this raise :class:`OverloadedError`.
    batch_window:
        Seconds the worker waits after the first pending request for
        more to arrive.  Zero batches whatever is already queued.
    max_batch:
        Hard cap on requests per batch.
    """

    def __init__(
        self,
        cache: Optional[ScheduleCache] = None,
        jobs: Optional[int] = None,
        max_queue: int = 256,
        batch_window: float = 0.02,
        max_batch: int = 64,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        self.cache = cache
        self.jobs = jobs
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.max_batch = max_batch

        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._queue: List[_Pending] = []
        self._in_flight = 0  # queued + currently being solved
        self._closed = False
        self._last_progress = time.monotonic()

        registry = get_registry()
        self._m_queue_depth = registry.gauge(
            "repro_server_queue_depth", _QUEUE_HELP
        )
        self._m_batch_size = registry.histogram(
            "repro_server_batch_size", _BATCH_HELP, buckets=_batch_buckets()
        )
        self._m_coalesced = registry.counter(
            "repro_server_coalesced_total", _COALESCED_HELP
        )
        self._m_fastpath = registry.counter(
            "repro_server_cache_fastpath_total", _FASTPATH_HELP
        )

        self._worker = threading.Thread(
            target=self._run, name="solve-batcher", daemon=True
        )
        self._worker.start()

    # -- caller side ---------------------------------------------------

    def submit(
        self,
        problem: SchedulingProblem,
        method: str = "greedy",
        seed: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[SolveResult, Dict[str, Any]]:
        """Solve (through the batch pipeline) and block for the answer.

        Returns ``(result, meta)`` where ``meta`` carries the cache
        status and whether the request was coalesced onto another
        in-flight solve.  Raises :class:`OverloadedError` when the
        queue is full, :class:`BatcherClosedError` after :meth:`close`,
        ``TimeoutError`` if no answer arrives within ``timeout``
        seconds, and re-raises whatever the solver raised otherwise.
        """
        fast = self._admission_fast_path(problem, method, seed)
        if fast is not None:
            return fast
        pending = _Pending(task=(problem, method, seed))
        with self._lock:
            if self._closed:
                raise BatcherClosedError("batcher is closed")
            if self._in_flight >= self.max_queue:
                raise OverloadedError(
                    f"queue full ({self._in_flight}/{self.max_queue} in flight)"
                )
            self._in_flight += 1
            self._queue.append(pending)
            self._m_queue_depth.set(self._in_flight)
            self._arrived.notify()
        try:
            if not pending.done.wait(timeout):
                raise TimeoutError(
                    f"no answer within {timeout}s (queue depth "
                    f"{self.queue_depth()})"
                )
        finally:
            with self._lock:
                self._in_flight -= 1
                self._m_queue_depth.set(self._in_flight)
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result, {
            "cache": pending.cache_status,
            "coalesced": pending.coalesced,
        }

    def _admission_fast_path(
        self, problem: SchedulingProblem, method: str, seed: Optional[int]
    ) -> Optional[Tuple[SolveResult, Dict[str, Any]]]:
        if self.cache is None:
            return None
        try:
            key = solve_fingerprint(problem, method, seed)
        except UncacheableError:
            return None
        result = self.cache.peek_result(key, problem)
        if result is None:
            return None
        self._m_fastpath.inc()
        return result, {"cache": "hit", "coalesced": False}

    def queue_depth(self) -> int:
        with self._lock:
            return self._in_flight

    def last_progress_age(self) -> float:
        """Seconds since the pipeline last completed work (healthz)."""
        with self._lock:
            return time.monotonic() - self._last_progress

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain what is queued, join the worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._arrived.notify_all()
        self._worker.join(timeout)

    # -- worker side ---------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._execute(batch)

    def _collect_batch(self) -> Optional[List[_Pending]]:
        """Block for the first request, linger ``batch_window``, drain."""
        with self._lock:
            while not self._queue and not self._closed:
                self._arrived.wait()
            if not self._queue:
                return None  # closed and drained
        if self.batch_window > 0:
            deadline = time.monotonic() + self.batch_window
            with self._lock:
                while (
                    len(self._queue) < self.max_batch
                    and not self._closed
                    and (remaining := deadline - time.monotonic()) > 0
                ):
                    self._arrived.wait(remaining)
        with self._lock:
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
        return batch

    def _execute(self, batch: List[_Pending]) -> None:
        self._m_batch_size.observe(len(batch))
        coalesced_indices: set = set()

        def on_group(key, indices, disposition):
            # Members beyond the representative rode along for free.
            for index in indices[1:]:
                coalesced_indices.add(index)
                self._m_coalesced.inc()

        def on_task(record):
            with self._lock:
                self._last_progress = time.monotonic()

        try:
            results, telemetry = solve_many(
                [p.task for p in batch],
                jobs=self.jobs,
                cache=self.cache,
                on_group=on_group,
                on_task=on_task,
            )
        except BaseException as error:
            for pending in batch:
                pending.error = error
                pending.done.set()
            return
        with self._lock:
            self._last_progress = time.monotonic()
        for pending, result, record in zip(batch, results, telemetry):
            pending.result = result
            pending.cache_status = record.cache
            pending.coalesced = record.index in coalesced_indices
            pending.done.set()


def _batch_buckets() -> Tuple[float, ...]:
    """Batch-size shaped buckets: 1, 2, 4, ... 256 requests."""
    return tuple(float(2**i) for i in range(9))
