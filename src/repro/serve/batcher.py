"""The request queue: admission control, micro-batching, coalescing.

Every solve a handler thread needs goes through one
:class:`SolveBatcher`.  The flow:

1. **Admission** (caller's thread): if the cache already holds the
   instance (:meth:`~repro.runtime.cache.ScheduleCache.peek_result`),
   answer immediately -- warm traffic never pays batching latency.
   Otherwise the request joins the queue, unless the number in flight
   has reached ``max_queue`` -- then :class:`OverloadedError` is raised
   *immediately* (the HTTP layer maps it to 429).  Load must be shed at
   the door; a bounded wait here would just move the pile-up into the
   socket backlog.
2. **Batching** (worker thread): the worker collects everything that
   arrives within ``batch_window`` seconds of the first pending request
   (up to ``max_batch``) and hands the batch to
   :func:`repro.runtime.executor.solve_many`, which fingerprints,
   coalesces duplicate instances onto one solve, consults the schedule
   cache, and farms unique misses across the worker pool.  N clients
   posting the same instance in one window cost **one** solver
   invocation.
3. **Fan-out**: each request's future is resolved with its own
   rehydrated result (no shared mutable state across responses).

The batcher never reorders errors into results: a failed batch fails
exactly the requests in it, with the original exception.

Failure discipline (the robustness contract):

- a request that *times out* in :meth:`SolveBatcher.submit` is
  **cancelled**: pulled from the queue if still there, skipped by
  ``_execute`` if already collected -- its solve is never performed on
  behalf of a client that stopped listening;
- each request's remaining deadline rides down into
  :func:`~repro.runtime.executor.solve_many` (a batch is bounded by
  its *tightest* member), so pool waits and retry backoffs can never
  outlive the client;
- :meth:`close` resolves any request still unanswered after the drain
  window with :class:`BatcherClosedError` -- a leaked ``_Pending``
  would otherwise block its handler thread forever -- and reports the
  leak (``repro_server_drain_incomplete_total`` +
  ``serve.drain_incomplete``) instead of pretending the drain was
  clean.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.solver import SolveResult
from repro.faults.injector import maybe_hit
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.runtime.cache import ScheduleCache
from repro.runtime.executor import SolveTask, solve_many
from repro.runtime.fingerprint import UncacheableError, solve_fingerprint
from repro.runtime.retry import RetryPolicy

_QUEUE_HELP = "Solve requests queued or being batched right now"
_BATCH_HELP = "Requests per executed batch"
_COALESCED_HELP = "Requests answered by another in-flight request's solve"
_FASTPATH_HELP = "Requests answered from the cache at admission time"
_CANCELLED_HELP = "Requests cancelled after their submit timeout expired"
_DRAIN_HELP = "Requests resolved with BatcherClosedError at close, by component"
_BATCHED_HELP = "Service solves answered through the batched kernel path"


class OverloadedError(RuntimeError):
    """The request queue is full; the caller should shed this request."""


class BatcherClosedError(RuntimeError):
    """The batcher is draining/closed and accepts no new requests."""


@dataclass
class _Pending:
    """One queued request and the slot its answer lands in."""

    task: SolveTask
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[SolveResult] = None
    cache_status: str = "miss"
    coalesced: bool = False
    error: Optional[BaseException] = None
    #: Absolute ``time.monotonic()`` budget end (None = unbounded).
    deadline: Optional[float] = None
    #: The submitter timed out and left; do not solve on its behalf.
    cancelled: bool = False


class SolveBatcher:
    """Bounded, coalescing micro-batcher over ``solve_many``.

    Parameters
    ----------
    cache:
        Shared :class:`ScheduleCache` (``None`` disables caching and
        the admission fast path).
    jobs:
        Worker processes for each batch's unique misses.
    max_queue:
        Maximum requests in flight (queued + being solved); admissions
        beyond this raise :class:`OverloadedError`.
    batch_window:
        Seconds the worker waits after the first pending request for
        more to arrive.  Zero batches whatever is already queued.
    max_batch:
        Hard cap on requests per batch.
    retry:
        :class:`~repro.runtime.retry.RetryPolicy` applied per batch
        inside ``solve_many`` (``None`` disables retries).
    """

    def __init__(
        self,
        cache: Optional[ScheduleCache] = None,
        jobs: Optional[int] = None,
        max_queue: int = 256,
        batch_window: float = 0.02,
        max_batch: int = 64,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        self.cache = cache
        self.jobs = jobs
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.retry = retry

        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._queue: List[_Pending] = []
        self._current_batch: List[_Pending] = []  # being solved right now
        self._in_flight = 0  # queued + currently being solved
        self._closed = False
        self._last_progress = time.monotonic()

        registry = get_registry()
        self._m_queue_depth = registry.gauge(
            "repro_server_queue_depth", _QUEUE_HELP
        )
        self._m_batch_size = registry.histogram(
            "repro_server_batch_size", _BATCH_HELP, buckets=_batch_buckets()
        )
        self._m_coalesced = registry.counter(
            "repro_server_coalesced_total", _COALESCED_HELP
        )
        self._m_fastpath = registry.counter(
            "repro_server_cache_fastpath_total", _FASTPATH_HELP
        )
        self._m_cancelled = registry.counter(
            "repro_server_cancelled_total", _CANCELLED_HELP
        )
        self._m_batched = registry.counter(
            "repro_server_batched_total", _BATCHED_HELP
        )

        self._worker = threading.Thread(
            target=self._run, name="solve-batcher", daemon=True
        )
        self._worker.start()

    # -- caller side ---------------------------------------------------

    def submit(
        self,
        problem: SchedulingProblem,
        method: str = "greedy",
        seed: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[SolveResult, Dict[str, Any]]:
        """Solve (through the batch pipeline) and block for the answer.

        Returns ``(result, meta)`` where ``meta`` carries the cache
        status and whether the request was coalesced onto another
        in-flight solve.  Raises :class:`OverloadedError` when the
        queue is full, :class:`BatcherClosedError` after :meth:`close`,
        ``TimeoutError`` if no answer arrives within ``timeout``
        seconds, and re-raises whatever the solver raised otherwise.
        """
        fast = self._admission_fast_path(problem, method, seed)
        if fast is not None:
            return fast
        pending = _Pending(
            task=(problem, method, seed),
            deadline=(
                time.monotonic() + timeout if timeout is not None else None
            ),
        )
        with self._lock:
            if self._closed:
                raise BatcherClosedError("batcher is closed")
            if self._in_flight >= self.max_queue:
                raise OverloadedError(
                    f"queue full ({self._in_flight}/{self.max_queue} in flight)"
                )
            self._in_flight += 1
            self._queue.append(pending)
            self._m_queue_depth.set(self._in_flight)
            self._arrived.notify()
        try:
            if not pending.done.wait(timeout):
                # Cancel, don't leak: a timed-out request must not be
                # solved on behalf of a client that stopped listening.
                # Pull it from the queue if uncollected; flag it so
                # ``_execute`` skips it if a batch already holds it.
                with self._lock:
                    pending.cancelled = True
                    try:
                        self._queue.remove(pending)
                    except ValueError:
                        pass  # already collected into a batch
                self._m_cancelled.inc()
                obs_events.emit(
                    "serve.request_cancelled",
                    timeout=timeout,
                    queue_depth=self.queue_depth(),
                )
                raise TimeoutError(
                    f"no answer within {timeout}s (queue depth "
                    f"{self.queue_depth()})"
                )
        finally:
            with self._lock:
                self._in_flight -= 1
                self._m_queue_depth.set(self._in_flight)
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result, {
            "cache": pending.cache_status,
            "coalesced": pending.coalesced,
        }

    def _admission_fast_path(
        self, problem: SchedulingProblem, method: str, seed: Optional[int]
    ) -> Optional[Tuple[SolveResult, Dict[str, Any]]]:
        if self.cache is None:
            return None
        try:
            key = solve_fingerprint(problem, method, seed)
        except UncacheableError:
            return None
        result = self.cache.peek_result(key, problem)
        if result is None:
            return None
        self._m_fastpath.inc()
        return result, {"cache": "hit", "coalesced": False}

    def queue_depth(self) -> int:
        with self._lock:
            return self._in_flight

    def last_progress_age(self) -> float:
        """Seconds since the pipeline last completed work (healthz)."""
        with self._lock:
            return time.monotonic() - self._last_progress

    def close(self, timeout: float = 5.0) -> int:
        """Stop accepting work, drain what is queued, join the worker.

        Returns the number of requests that could *not* be drained
        within ``timeout`` seconds.  Those are not abandoned silently:
        each is resolved with :class:`BatcherClosedError` (so its
        handler thread wakes up and answers 503 instead of hanging on
        a leaked event), counted in
        ``repro_server_drain_incomplete_total`` and reported via a
        ``serve.drain_incomplete`` event.
        """
        with self._lock:
            if self._closed and not self._worker.is_alive():
                return 0
            self._closed = True
            self._arrived.notify_all()
        self._worker.join(timeout)
        leaked = 0
        with self._lock:
            stranded = self._queue + self._current_batch
            self._queue = []
        for pending in stranded:
            if pending.done.is_set():
                continue
            pending.error = BatcherClosedError(
                "batcher closed before this request was answered"
            )
            pending.done.set()
            leaked += 1
        if leaked or self._worker.is_alive():
            get_registry().counter(
                "repro_server_drain_incomplete_total",
                _DRAIN_HELP,
                component="batcher",
            ).inc(max(leaked, 1))
            obs_events.emit(
                "serve.drain_incomplete",
                component="batcher",
                leaked=leaked,
                worker_alive=self._worker.is_alive(),
            )
        return leaked

    # -- worker side ---------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._execute(batch)

    def _collect_batch(self) -> Optional[List[_Pending]]:
        """Block for the first request, linger ``batch_window``, drain."""
        with self._lock:
            while not self._queue and not self._closed:
                self._arrived.wait()
            if not self._queue:
                return None  # closed and drained
        if self.batch_window > 0:
            deadline = time.monotonic() + self.batch_window
            with self._lock:
                while (
                    len(self._queue) < self.max_batch
                    and not self._closed
                    and (remaining := deadline - time.monotonic()) > 0
                ):
                    self._arrived.wait(remaining)
        with self._lock:
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
        return batch

    def _execute(self, batch: List[_Pending]) -> None:
        # Skip members whose submitter already timed out and left --
        # solving them would burn pool time nobody is waiting on.
        with self._lock:
            batch = [p for p in batch if not p.cancelled]
            self._current_batch = batch
        if not batch:
            return
        try:
            self._execute_live(batch)
        finally:
            with self._lock:
                self._current_batch = []

    def _execute_live(self, batch: List[_Pending]) -> None:
        self._m_batch_size.observe(len(batch))
        # The batch is bounded by its *tightest* member's deadline:
        # retries and pool waits below must never outlive the first
        # client that would stop listening.
        member_deadlines = [p.deadline for p in batch if p.deadline is not None]
        deadline = min(member_deadlines) if member_deadlines else None
        coalesced_indices: set = set()

        def on_group(key, indices, disposition):
            # Members beyond the representative rode along for free.
            for index in indices[1:]:
                coalesced_indices.add(index)
                self._m_coalesced.inc()

        def on_task(record):
            with self._lock:
                self._last_progress = time.monotonic()

        try:
            # Chaos hook: "batcher.batch" faults (stalls via sleep,
            # injected errors) land inside the try so an injected
            # error fails this batch's requests, never the worker
            # thread itself.
            maybe_hit("batcher.batch", size=len(batch))
            results, telemetry = solve_many(
                [p.task for p in batch],
                jobs=self.jobs,
                cache=self.cache,
                on_group=on_group,
                on_task=on_task,
                retry=self.retry,
                deadline=deadline,
            )
        except BaseException as error:
            for pending in batch:
                pending.error = error
                pending.done.set()
            return
        with self._lock:
            self._last_progress = time.monotonic()
        for pending, result, record in zip(batch, results, telemetry):
            pending.result = result
            pending.cache_status = record.cache
            pending.coalesced = record.index in coalesced_indices
            if record.batched:
                self._m_batched.inc()
            pending.done.set()


def _batch_buckets() -> Tuple[float, ...]:
    """Batch-size shaped buckets: 1, 2, 4, ... 256 requests."""
    return tuple(float(2**i) for i in range(9))
