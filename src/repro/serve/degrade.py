"""Graceful degradation: a best-effort answer when the solve path is down.

When the circuit breaker is open (or a request's real solve failed and
retrying is pointless), the service still owes the client *something*
better than a bare 503.  Two fallbacks, in preference order:

1. **Stale cache** -- if the exact instance was ever solved, its cache
   entry is a *correct* answer (solves are deterministic; entries are
   checksummed), merely possibly old.  Served with
   ``degraded_source="stale-cache"``.
2. **Serial greedy** -- for instances up to
   ``ServiceConfig.degraded_max_sensors`` sensors, run the greedy
   solver inline in the handler thread.  Greedy is the one method with
   a hard polynomial bound, so this cannot wedge a thread the way an
   exact solve could.  The answer may come from a *different* method
   than requested -- that is the degradation, and the response says so
   (``"degraded": true``, ``degraded_source="greedy-fallback"``).

If neither applies the caller falls through to a structured 503; the
client learns the service is unhealthy rather than waiting out a
doomed retry loop.

Every degraded answer increments
``repro_server_degraded_total{source}`` and emits a
``serve.degraded`` event -- silent degradation would poison any
benchmark run against the service.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.problem import SchedulingProblem
from repro.core.solver import SolveResult, solve
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.runtime.cache import ScheduleCache
from repro.runtime.fingerprint import UncacheableError, solve_fingerprint

STALE_CACHE = "stale-cache"
GREEDY_FALLBACK = "greedy-fallback"

_DEGRADED_HELP = "Requests answered by a degraded fallback path, by source"


def degraded_answer(
    problem: SchedulingProblem,
    method: str,
    seed: Optional[int],
    cache: Optional[ScheduleCache],
    max_sensors: int,
) -> Optional[Tuple[SolveResult, Dict[str, Any]]]:
    """A degraded ``(result, meta)`` for the request, or ``None``.

    ``meta`` mirrors the batcher's (``cache``/``coalesced``) plus
    ``degraded_source``.  ``max_sensors`` bounds the greedy fallback;
    instances above it get no degraded answer (the caller 503s).
    """
    stale = _stale_cache_answer(problem, method, seed, cache)
    if stale is not None:
        _record(STALE_CACHE, problem, method)
        return stale
    if problem.num_sensors <= max_sensors:
        result = solve(problem, method="greedy", rng=seed)
        _record(GREEDY_FALLBACK, problem, method)
        return result, {
            "cache": "uncached",
            "coalesced": False,
            "degraded_source": GREEDY_FALLBACK,
        }
    return None


def _stale_cache_answer(
    problem: SchedulingProblem,
    method: str,
    seed: Optional[int],
    cache: Optional[ScheduleCache],
) -> Optional[Tuple[SolveResult, Dict[str, Any]]]:
    if cache is None:
        return None
    try:
        key = solve_fingerprint(problem, method, seed)
    except UncacheableError:
        return None
    result = cache.peek_result(key, problem)
    if result is None:
        return None
    return result, {
        "cache": "hit",
        "coalesced": False,
        "degraded_source": STALE_CACHE,
    }


def _record(source: str, problem: SchedulingProblem, method: str) -> None:
    get_registry().counter(
        "repro_server_degraded_total", _DEGRADED_HELP, source=source
    ).inc()
    obs_events.emit(
        "serve.degraded",
        source=source,
        method=method,
        num_sensors=problem.num_sensors,
    )
