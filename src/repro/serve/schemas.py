"""Wire formats: JSON requests/responses and their validators.

Everything a client can send is validated *before* any solver work is
queued; a request that fails validation costs one parse, never a batch
slot.  Validation failures raise :class:`WireError` carrying a stable
machine-readable ``code`` plus a human message -- the handler maps them
to an HTTP 400 with the structured error body below.

Request (``POST /v1/solve`` and ``POST /v1/simulate``)::

    {
      "problem": {
        "num_sensors": 8,
        "rho": 3.0,                  # or discharge_time + recharge_time
        "num_periods": 1,            # optional, default 1
        "utility": {...}             # io.serialization utility document,
                                     # or the {"p": 0.4} homogeneous
                                     # shortcut over all sensors
      },
      "method": "greedy",            # optional, default "greedy"
      "seed": 0                      # optional; required for randomized
                                     # methods (the cache key needs it)
    }

``POST /v1/simulate`` additionally accepts ``"slots": N`` to simulate a
prefix of the horizon.

Responses are schema-tagged envelopes.  The ``result`` object is fully
deterministic -- it deliberately excludes wall-clock fields like
``solve_seconds`` so that the same instance always yields the same
bytes, whatever path (cold solve, warm cache, coalesced duplicate)
produced it.  The differential tests pin this byte-for-byte against a
direct :func:`repro.core.solver.solve` call.

Error body (any non-2xx)::

    {"kind": "repro-error", "version": 1,
     "error": {"code": "invalid-instance", "message": "..."}}
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sessions.deltas import Delta
    from repro.sessions.session import DeltaOutcome, Session

from repro.core.problem import SchedulingProblem
from repro.core.solver import METHODS, SolveResult
from repro.energy.period import ChargingPeriod
from repro.io.serialization import schedule_to_dict, utility_from_dict
from repro.runtime.fingerprint import canonical_json
from repro.sim.engine import SimulationResult
from repro.utility.detection import HomogeneousDetectionUtility

SOLVE_RESPONSE_KIND = "repro-solve-response"
SIMULATE_RESPONSE_KIND = "repro-simulate-response"
SESSION_RESPONSE_KIND = "repro-session-response"
SESSION_DELTA_RESPONSE_KIND = "repro-session-delta-response"
SESSION_SCHEDULE_RESPONSE_KIND = "repro-session-schedule-response"
SESSION_DELETED_KIND = "repro-session-deleted"
ERROR_KIND = "repro-error"
WIRE_VERSION = 1

#: Instances above this size are refused outright (code
#: ``instance-too-large``): a service must bound the work one request
#: can demand, and the exact solvers here are exponential in the worst
#: case.  Raise it via ``ServiceConfig.max_sensors`` for trusted use.
DEFAULT_MAX_SENSORS = 512

#: Simulate requests are bounded separately: slots are linear but a
#: single request must not monopolize a handler thread for minutes.
DEFAULT_MAX_SLOTS = 100_000


class WireError(ValueError):
    """A request failed validation; ``code`` is stable for clients."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def _require(condition: bool, code: str, message: str) -> None:
    if not condition:
        raise WireError(code, message)


def _get_int(document: Dict[str, Any], field: str, default=None) -> Optional[int]:
    value = document.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(
            "invalid-field", f"{field!r} must be an integer, got {value!r}"
        )
    return value


def _get_number(document: Dict[str, Any], field: str) -> Optional[float]:
    value = document.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(
            "invalid-field", f"{field!r} must be a number, got {value!r}"
        )
    return float(value)


def problem_from_wire(
    document: Any, max_sensors: int = DEFAULT_MAX_SENSORS
) -> SchedulingProblem:
    """Build a :class:`SchedulingProblem` from its wire document."""
    _require(
        isinstance(document, dict),
        "invalid-problem",
        f"'problem' must be an object, got {type(document).__name__}",
    )
    num_sensors = _get_int(document, "num_sensors")
    _require(
        num_sensors is not None,
        "invalid-problem",
        "'problem.num_sensors' is required",
    )
    _require(
        num_sensors >= 0,
        "invalid-instance",
        f"num_sensors must be >= 0, got {num_sensors}",
    )
    _require(
        num_sensors <= max_sensors,
        "instance-too-large",
        f"num_sensors {num_sensors} exceeds the service limit "
        f"of {max_sensors}",
    )

    rho = _get_number(document, "rho")
    discharge = _get_number(document, "discharge_time")
    recharge = _get_number(document, "recharge_time")
    try:
        if rho is not None:
            _require(
                discharge is None and recharge is None,
                "invalid-problem",
                "give either 'rho' or 'discharge_time'+'recharge_time', "
                "not both",
            )
            period = ChargingPeriod.from_ratio(rho)
        else:
            _require(
                discharge is not None and recharge is not None,
                "invalid-problem",
                "'problem' needs 'rho' or 'discharge_time'+'recharge_time'",
            )
            period = ChargingPeriod(
                discharge_time=discharge, recharge_time=recharge
            )
    except ValueError as error:
        if isinstance(error, WireError):
            raise
        raise WireError("invalid-instance", str(error)) from error

    num_periods = _get_int(document, "num_periods", 1)
    _require(
        num_periods >= 1,
        "invalid-instance",
        f"num_periods must be >= 1, got {num_periods}",
    )

    utility_doc = document.get("utility")
    _require(
        isinstance(utility_doc, dict),
        "invalid-problem",
        "'problem.utility' must be an object "
        "(an io.serialization utility document or {'p': ...})",
    )
    if "kind" in utility_doc:
        try:
            utility = utility_from_dict(utility_doc)
        except (KeyError, TypeError, ValueError) as error:
            raise WireError(
                "invalid-utility", f"cannot decode utility: {error}"
            ) from error
    else:
        p = _get_number(utility_doc, "p")
        _require(
            p is not None,
            "invalid-utility",
            "shortcut utility needs 'p' (detection probability)",
        )
        _require(
            0.0 <= p <= 1.0,
            "invalid-utility",
            f"detection probability must be in [0, 1], got {p}",
        )
        utility = HomogeneousDetectionUtility(range(num_sensors), p=p)

    try:
        return SchedulingProblem(
            num_sensors=num_sensors,
            period=period,
            utility=utility,
            num_periods=num_periods,
        )
    except ValueError as error:
        raise WireError("invalid-instance", str(error)) from error


def parse_solve_request(
    document: Any, max_sensors: int = DEFAULT_MAX_SENSORS
) -> Tuple[SchedulingProblem, str, Optional[int]]:
    """Validate a solve request into a ``(problem, method, seed)`` task."""
    _require(
        isinstance(document, dict),
        "invalid-request",
        f"request body must be a JSON object, got {type(document).__name__}",
    )
    unknown = set(document) - {"problem", "method", "seed", "slots"}
    _require(
        not unknown,
        "unknown-field",
        f"unknown request fields: {sorted(unknown)}",
    )
    _require(
        "problem" in document,
        "invalid-request",
        "request needs a 'problem' object",
    )
    problem = problem_from_wire(document["problem"], max_sensors=max_sensors)
    method = document.get("method", "greedy")
    _require(
        isinstance(method, str) and method in METHODS,
        "invalid-method",
        f"unknown method {method!r}; choose from {list(METHODS)}",
    )
    seed = _get_int(document, "seed")
    return problem, method, seed


def parse_simulate_request(
    document: Any,
    max_sensors: int = DEFAULT_MAX_SENSORS,
    max_slots: int = DEFAULT_MAX_SLOTS,
) -> Tuple[SchedulingProblem, str, Optional[int], Optional[int]]:
    """Validate a simulate request; returns ``(problem, method, seed, slots)``."""
    problem, method, seed = parse_solve_request(
        document, max_sensors=max_sensors
    )
    slots = _get_int(document, "slots")
    if slots is not None:
        _require(slots >= 0, "invalid-field", f"slots must be >= 0, got {slots}")
    effective = slots if slots is not None else problem.total_slots
    _require(
        effective <= max_slots,
        "instance-too-large",
        f"simulating {effective} slots exceeds the service limit "
        f"of {max_slots}",
    )
    return problem, method, seed, slots


def parse_session_create(
    document: Any, max_sensors: int = DEFAULT_MAX_SENSORS
) -> Tuple[SchedulingProblem, str, Optional[int], str]:
    """Validate ``POST /v1/session`` into ``(problem, method, seed,
    consistency)``.

    Session methods are a subset of the solver's: the warm-start
    machinery must be able to re-plan an arbitrary live subset, which
    the randomized/LP methods cannot.  Sessions also require the
    sparse regime (rho >= 1) -- a dense instance gets a structured
    ``unsupported-instance`` instead of an incumbent it could never
    repair.
    """
    from repro.sessions.session import CONSISTENCY_MODES, SESSION_METHODS

    _require(
        isinstance(document, dict),
        "invalid-request",
        f"request body must be a JSON object, got {type(document).__name__}",
    )
    unknown = set(document) - {"problem", "method", "seed", "consistency"}
    _require(
        not unknown,
        "unknown-field",
        f"unknown request fields: {sorted(unknown)}",
    )
    _require(
        "problem" in document,
        "invalid-request",
        "request needs a 'problem' object",
    )
    problem = problem_from_wire(document["problem"], max_sensors=max_sensors)
    method = document.get("method", "greedy")
    _require(
        isinstance(method, str) and method in SESSION_METHODS,
        "unsupported-method",
        f"sessions support methods {list(SESSION_METHODS)}, got {method!r}",
    )
    consistency = document.get("consistency", "warm")
    _require(
        isinstance(consistency, str) and consistency in CONSISTENCY_MODES,
        "invalid-field",
        f"'consistency' must be one of {list(CONSISTENCY_MODES)}, "
        f"got {consistency!r}",
    )
    _require(
        problem.is_sparse_regime,
        "unsupported-instance",
        f"sessions repair sparse-regime (rho >= 1) schedules; "
        f"got rho={problem.rho:g}",
    )
    seed = _get_int(document, "seed")
    return problem, method, seed, consistency


def parse_session_delta(document: Any) -> "Delta":
    """Validate ``POST /v1/session/{id}/delta`` into a ``Delta``.

    Delta-grammar failures surface as :class:`WireError` with the
    :class:`~repro.sessions.deltas.DeltaError` code passed through
    (``invalid-delta`` / ``unknown-delta`` / ``unsupported-delta``).
    """
    from repro.sessions.deltas import DeltaError, delta_from_dict

    _require(
        isinstance(document, dict),
        "invalid-request",
        f"request body must be a JSON object, got {type(document).__name__}",
    )
    unknown = set(document) - {"delta"}
    _require(
        not unknown,
        "unknown-field",
        f"unknown request fields: {sorted(unknown)}",
    )
    _require(
        "delta" in document,
        "invalid-request",
        "request needs a 'delta' object",
    )
    try:
        return delta_from_dict(document["delta"])
    except DeltaError as error:
        raise WireError(error.code, error.message) from error


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


def result_to_wire(result: SolveResult) -> Dict[str, Any]:
    """The deterministic portion of a solve result.

    Wall-clock fields are excluded on purpose: the same instance must
    serialize to the same bytes whether it was solved cold, replayed
    from the cache, or coalesced onto another request's solve.
    """
    document: Dict[str, Any] = {
        "method": result.method,
        "num_sensors": result.problem.num_sensors,
        "rho": result.problem.rho,
        "slots_per_period": result.problem.slots_per_period,
        "num_periods": result.problem.num_periods,
        "total_utility": result.total_utility,
        "average_slot_utility": result.average_slot_utility,
        "average_utility_per_target": result.average_utility_per_target,
        "schedule": schedule_to_dict(result.schedule),
        "extras": dict(result.extras),
    }
    if result.periodic is not None:
        document["periodic"] = schedule_to_dict(result.periodic)
    return document


def solve_response(
    result: SolveResult,
    cache_status: str,
    coalesced: bool,
    degraded_source: Optional[str] = None,
) -> Dict[str, Any]:
    body = {
        "kind": SOLVE_RESPONSE_KIND,
        "version": WIRE_VERSION,
        "result": result_to_wire(result),
        "cache": cache_status,
        "coalesced": coalesced,
        "degraded": degraded_source is not None,
    }
    if degraded_source is not None:
        body["degraded_source"] = degraded_source
    return body


def simulate_response(
    planned: SolveResult,
    sim: SimulationResult,
    cache_status: str,
    coalesced: bool,
    degraded_source: Optional[str] = None,
) -> Dict[str, Any]:
    body = {
        "kind": SIMULATE_RESPONSE_KIND,
        "version": WIRE_VERSION,
        "result": {
            "num_slots": sim.num_slots,
            "scheduled_average_slot_utility": planned.average_slot_utility,
            "achieved_average_slot_utility": sim.average_slot_utility,
            "achieved_total_utility": sim.total_utility,
            "refused_activations": sim.refused_activations,
        },
        "cache": cache_status,
        "coalesced": coalesced,
        "degraded": degraded_source is not None,
    }
    if degraded_source is not None:
        body["degraded_source"] = degraded_source
    return body


def session_to_wire(session: "Session") -> Dict[str, Any]:
    """The session envelope every session response carries."""
    problem = session.problem
    return {
        "id": session.session_id,
        "seq": session.seq,
        "method": session.method,
        "consistency": session.consistency,
        "num_sensors": problem.num_sensors,
        "rho": problem.rho,
        "slots_per_period": problem.slots_per_period,
        "num_periods": problem.num_periods,
        "failed": sorted(session.failed),
        "live_sensors": len(session.live_sensors()),
        "fingerprint": session.state_fingerprint,
        "lineage": session.lineage[-1] if session.lineage else None,
    }


def session_result_to_wire(session: "Session") -> Dict[str, Any]:
    """The deterministic schedule payload of a session answer.

    Utilities are *periodic*: the per-period value of the incumbent
    assignment, its per-slot average, and the ``num_periods``
    extrapolation -- the natural quantities for a schedule that is
    live and mutable rather than unrolled once.
    """
    utility = session.period_utility()
    slots = session.slots_per_period
    return {
        "period_utility": utility,
        "average_slot_utility": utility / slots,
        "total_utility": utility * session.problem.num_periods,
        "schedule": schedule_to_dict(session.schedule()),
    }


def session_response(
    session: "Session", degraded_source: Optional[str] = None
) -> Dict[str, Any]:
    """``POST /v1/session`` (creation) body."""
    body = {
        "kind": SESSION_RESPONSE_KIND,
        "version": WIRE_VERSION,
        "session": session_to_wire(session),
        "result": session_result_to_wire(session),
        "degraded": degraded_source is not None,
    }
    if degraded_source is not None:
        body["degraded_source"] = degraded_source
    return body


def session_delta_response(
    session: "Session", outcome: "DeltaOutcome"
) -> Dict[str, Any]:
    """``POST /v1/session/{id}/delta`` body."""
    body = {
        "kind": SESSION_DELTA_RESPONSE_KIND,
        "version": WIRE_VERSION,
        "session": session_to_wire(session),
        "delta": {
            "seq": outcome.seq,
            "kind": outcome.kind,
            "resolve": outcome.resolve,
            "moves": outcome.moves,
            "structural": outcome.structural,
        },
        "result": session_result_to_wire(session),
        "degraded": outcome.degraded,
    }
    if outcome.degraded:
        body["degraded_source"] = "warm-repair"
    return body


def session_schedule_response(session: "Session") -> Dict[str, Any]:
    """``GET /v1/session/{id}/schedule`` body."""
    return {
        "kind": SESSION_SCHEDULE_RESPONSE_KIND,
        "version": WIRE_VERSION,
        "session": session_to_wire(session),
        "result": session_result_to_wire(session),
    }


def session_deleted_response(session_id: str) -> Dict[str, Any]:
    """``DELETE /v1/session/{id}`` body."""
    return {
        "kind": SESSION_DELETED_KIND,
        "version": WIRE_VERSION,
        "id": session_id,
    }


def error_body(code: str, message: str) -> Dict[str, Any]:
    return {
        "kind": ERROR_KIND,
        "version": WIRE_VERSION,
        "error": {"code": code, "message": message},
    }


def encode(document: Dict[str, Any]) -> bytes:
    """Canonical response bytes (sorted keys -- byte-stable for tests)."""
    return (canonical_json(document) + "\n").encode("utf-8")
