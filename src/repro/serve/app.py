"""The service object: configuration, lifecycle, and the HTTP server.

:class:`SolveService` owns the shared pieces -- one schedule cache, one
:class:`~repro.serve.batcher.SolveBatcher`, one
``ThreadingHTTPServer`` -- and exposes ``start``/``stop`` so it can run
three ways:

- ``repro serve`` (the CLI) starts it in the foreground;
- tests embed it on an ephemeral port (``port=0``) and drive it with
  plain ``urllib`` clients;
- ``with SolveService(config) as service:`` scopes it to a block.

``stop`` drains rather than kills: the listener stops accepting, the
health endpoint flips to ``draining`` (503), queued requests finish,
then the batcher joins.  In-flight clients get answers, new clients get
told to go elsewhere -- the shutdown story a load balancer expects.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.catalog import describe_standard_metrics
from repro.runtime.cache import ScheduleCache, default_cache_dir
from repro.runtime.retry import RetryPolicy
from repro.serve.batcher import SolveBatcher
from repro.serve.breaker import CircuitBreaker
from repro.serve.handlers import ServiceRequestHandler
from repro.serve.schemas import DEFAULT_MAX_SENSORS, DEFAULT_MAX_SLOTS
from repro.sessions.store import SessionStore


@dataclass(frozen=True)
class ServiceConfig:
    """Everything tunable about one service instance."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 = ephemeral (tests)
    jobs: Optional[int] = None  # worker processes per batch
    use_cache: bool = True
    cache_dir: Optional[str] = None  # None = $REPRO_CACHE_DIR / default
    cache_label: Optional[str] = None  # writer identity; None = pid-unique
    batch_window: float = 0.02  # seconds to linger collecting a batch
    max_batch: int = 64
    max_queue: int = 256  # in-flight bound; beyond it -> 429
    request_timeout: float = 60.0  # per-request wall bound -> 503
    max_body_bytes: int = 1_000_000
    max_sensors: int = DEFAULT_MAX_SENSORS
    max_slots: int = DEFAULT_MAX_SLOTS
    # -- resilience ----------------------------------------------------
    retry_attempts: int = 3  # per-batch solve attempts (1 = no retry)
    breaker_threshold: int = 5  # consecutive failures that trip it
    breaker_recovery: float = 5.0  # seconds open before probing
    degrade: bool = True  # serve degraded answers when the breaker opens
    degraded_max_sensors: int = 64  # greedy-fallback instance bound
    # -- sessions ------------------------------------------------------
    sessions: bool = True  # mount /v1/session
    max_sessions: int = 64  # live-session bound; beyond it -> 429
    session_ttl: float = 600.0  # idle seconds before eviction
    session_checkpoint_dir: Optional[str] = None  # None = no persistence


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that hands its handlers the service object."""

    daemon_threads = True  # a wedged client must not block shutdown

    def __init__(self, address: Tuple[str, int], service: "SolveService"):
        self.service = service
        super().__init__(address, ServiceRequestHandler)


class SolveService:
    """One running (or startable) solve/simulate service."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.cache: Optional[ScheduleCache] = None
        if self.config.use_cache:
            directory = self.config.cache_dir or default_cache_dir()
            self.cache = ScheduleCache(
                directory=directory, writer_label=self.config.cache_label
            )
        retry = (
            RetryPolicy(max_attempts=self.config.retry_attempts)
            if self.config.retry_attempts > 1
            else None
        )
        self.batcher = SolveBatcher(
            cache=self.cache,
            jobs=self.config.jobs,
            max_queue=self.config.max_queue,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            retry=retry,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            recovery_time=self.config.breaker_recovery,
        )
        self.sessions: Optional[SessionStore] = None
        if self.config.sessions:
            self.sessions = SessionStore(
                capacity=self.config.max_sessions,
                ttl=self.config.session_ttl,
                checkpoint_dir=self.config.session_checkpoint_dir,
                cache=self.cache,
            )
        self.draining = False
        self._httpd: Optional[ServiceHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._sweeper: Optional[threading.Thread] = None
        self._sweeper_stop = threading.Event()
        self._started_at = time.monotonic()
        # Pre-register the catalog so the first /metrics scrape already
        # lists every family with HELP/TYPE metadata.
        describe_standard_metrics()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SolveService":
        """Bind and serve in a background thread; returns self."""
        if self._httpd is not None:
            raise RuntimeError("service already started")
        self._httpd = ServiceHTTPServer(
            (self.config.host, self.config.port), self
        )
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        self._start_sweeper()
        return self

    def serve_forever(self) -> None:
        """Foreground variant for the CLI: blocks until interrupted."""
        if self._httpd is not None:
            raise RuntimeError("service already started")
        self._httpd = ServiceHTTPServer(
            (self.config.host, self.config.port), self
        )
        self._started_at = time.monotonic()
        self._start_sweeper()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self.stop()

    def stop(self) -> None:
        """Drain and shut down; idempotent."""
        self.draining = True
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._sweeper_stop.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
            self._sweeper = None
        if self.sessions is not None:
            self.sessions.close()
        self.batcher.close()
        if self.cache is not None:
            # Make this process's counters visible to `repro cache
            # stats` aggregation even if the interpreter lives on.
            self.cache.flush_stats_sidecar()

    def _start_sweeper(self) -> None:
        """TTL sweeps on a timer (idle sessions die without traffic)."""
        if self.sessions is None or self._sweeper is not None:
            return
        interval = max(0.5, min(self.config.session_ttl / 4.0, 30.0))
        store = self.sessions
        stop = self._sweeper_stop
        stop.clear()

        def run() -> None:
            while not stop.wait(interval):
                store.sweep()

        self._sweeper = threading.Thread(
            target=run, name="repro-session-sweeper", daemon=True
        )
        self._sweeper.start()

    def __enter__(self) -> "SolveService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- resolves ephemeral port 0."""
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def uptime(self) -> float:
        return time.monotonic() - self._started_at
