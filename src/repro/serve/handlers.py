"""HTTP request handling: routing, validation, status mapping, metrics.

One :class:`ServiceRequestHandler` instance handles one connection
(``ThreadingHTTPServer`` gives each its own thread).  The handler is
deliberately thin: parse and validate at the door, delegate solving to
the shared :class:`~repro.serve.batcher.SolveBatcher`, and map every
failure mode to a structured JSON error:

====================================  ======  =====================
condition                             status  error code
====================================  ======  =====================
unknown path                          404     ``not-found``
wrong HTTP method for the path        405     ``method-not-allowed``
body exceeds ``max_body_bytes``       413     ``body-too-large``
body is not valid JSON                400     ``bad-json``
schema/semantic validation failure    400     (from ``WireError``)
malformed/unsupported delta           400     (from ``DeltaError``)
unknown session id                    404     ``unknown-session``
session evicted mid-request           409     ``session-evicted``
session evicted (TTL/capacity/DELETE) 410     ``session-gone``
queue full                            429     ``overloaded``
session store full, none idle         429     ``too-many-sessions``
service draining                      503     ``shutting-down``
request/deadline timeout              503     ``timeout``
transient infra failure (retries up)  503     ``transient-failure``
circuit breaker open, no fallback     503     ``degraded-unavailable``
solver/internal failure               500     ``internal``
session state corrupt (rolled back)   500     ``session-state``
====================================  ======  =====================

Session routes (``/v1/session...``, bare ``/session...`` accepted)
follow the same resilience contract as one-shot solves, scoped to
what each request actually needs: a *warm* delta never touches the
guarded cold-solve path, so it bypasses the circuit breaker entirely;
a delta that needs a cold re-solve (structural, or any delta of an
``exact`` session) is breaker-admitted like a solve, and when the
breaker is open the session answers from the warm-repair fallback
with ``"degraded": true`` -- or a structured 503 when only a cold
answer would do.  The per-request deadline propagates into the
warm-repair/re-plan inner loops, and a delta that dies for any reason
(deadline included) is rolled back: the session stays at its
pre-delta state.

Timeouts, deadline exhaustion and retry-exhausted transient errors
feed the service's :class:`~repro.serve.breaker.CircuitBreaker`; when
it opens, solve traffic is answered from the degraded path
(:mod:`repro.serve.degrade` -- stale cache or bounded serial greedy,
the response flagged ``"degraded": true``) and only falls through to
a structured 503 when no fallback applies.  Validation errors and
deterministic solver failures never trip the breaker.

429 responses carry ``Retry-After: 1`` -- the queue turns over in
batch-window time, so an immediate retry storm is the only wrong
answer.  Every request increments
``repro_server_requests_total{endpoint,status}`` and observes
``repro_server_request_seconds{endpoint}``.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler
from typing import Any, Dict, Optional, Tuple

from repro.obs import events as obs_events
from repro.obs.catalog import describe_standard_metrics
from repro.obs.export import to_prometheus
from repro.obs.registry import get_registry
from repro.policies.schedule_policy import SchedulePolicy
from repro.runtime.retry import is_retryable
from repro.serve import degrade, schemas
from repro.serve.batcher import BatcherClosedError, OverloadedError
from repro.sessions.deltas import DeltaError, apply_delta
from repro.sessions.session import (
    ColdResolveUnavailableError,
    SessionClosedError,
    SessionStateError,
)
from repro.sessions.store import (
    SessionGoneError,
    SessionNotFoundError,
    StoreFullError,
)
from repro.sim.engine import SimulationEngine
from repro.sim.network import SensorNetwork

#: ``/v1/session``, ``/v1/session/{id}``, ``/v1/session/{id}/delta``,
#: ``/v1/session/{id}/schedule`` -- with or without the ``/v1`` prefix.
_SESSION_ROUTE = re.compile(
    r"^(?:/v1)?/session(?:/(?P<id>[A-Za-z0-9_-]+)"
    r"(?:/(?P<action>delta|schedule))?)?$"
)

_REQUESTS_HELP = "HTTP requests by endpoint and status code"
_LATENCY_HELP = "HTTP request wall time by endpoint"

#: Remaining-deadline budget in seconds, set by the cluster router on
#: forwarded requests.  The worker honors ``min(own timeout, budget)``
#: so a request that already spent half its budget on a queue-and-retry
#: at the router cannot occupy a worker for a fresh full timeout.
DEADLINE_HEADER = "X-Repro-Deadline"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/solve``, ``/v1/simulate``, ``/metrics``, ``/healthz``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # The service object is attached by app.ServiceHTTPServer.
    @property
    def service(self):
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        session = _SESSION_ROUTE.match(self.path)
        if self.path == "/metrics":
            self._timed("metrics", self._handle_metrics)
        elif self.path == "/healthz":
            self._timed("healthz", self._handle_healthz)
        elif self.path in ("/v1/solve", "/v1/simulate"):
            self._error("solve", 405, "method-not-allowed", "use POST")
        elif session is not None:
            if session.group("id") and session.group("action") == "schedule":
                self._timed(
                    "session-schedule",
                    lambda: self._handle_session_schedule(session.group("id")),
                )
            else:
                self._error(
                    "session",
                    405,
                    "method-not-allowed",
                    "GET /session/{id}/schedule (POST creates, "
                    "POST .../delta mutates, DELETE evicts)",
                )
        else:
            self._error("unknown", 404, "not-found", f"no route {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        session = _SESSION_ROUTE.match(self.path)
        if self.path == "/v1/solve":
            self._timed("solve", self._handle_solve)
        elif self.path == "/v1/simulate":
            self._timed("simulate", self._handle_simulate)
        elif self.path in ("/metrics", "/healthz"):
            self._error("metrics", 405, "method-not-allowed", "use GET")
        elif session is not None:
            session_id = session.group("id")
            action = session.group("action")
            if session_id is None:
                self._timed("session", self._handle_session_create)
            elif action == "delta":
                self._timed(
                    "session-delta",
                    lambda: self._handle_session_delta(session_id),
                )
            else:
                self._error(
                    "session",
                    405,
                    "method-not-allowed",
                    "POST /session or POST /session/{id}/delta",
                )
        else:
            self._error("unknown", 404, "not-found", f"no route {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802
        session = _SESSION_ROUTE.match(self.path)
        if session is not None and session.group("id") and not session.group(
            "action"
        ):
            self._timed(
                "session-delete",
                lambda: self._handle_session_delete(session.group("id")),
            )
        elif session is not None:
            self._error(
                "session", 405, "method-not-allowed", "DELETE /session/{id}"
            )
        else:
            self._error("unknown", 404, "not-found", f"no route {self.path}")

    def _timeout_budget(self) -> float:
        """The per-request wall bound: the configured timeout, tightened
        by a router-propagated remaining-deadline header when present.

        A malformed or non-positive header is ignored (the router is
        trusted but the header is not load-bearing for correctness --
        the worst case is the worker using its own, larger bound)."""
        limit = self.service.config.request_timeout
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return limit
        try:
            budget = float(raw)
        except ValueError:
            return limit
        if budget <= 0.0 or budget != budget:  # reject NaN too
            return limit
        return min(limit, budget)

    # -- endpoints -----------------------------------------------------

    def _handle_solve(self) -> Tuple[int, bytes]:
        document, failure = self._read_json()
        if failure is not None:
            return failure
        try:
            problem, method, seed = schemas.parse_solve_request(
                document, max_sensors=self.service.config.max_sensors
            )
        except schemas.WireError as error:
            return self._error_response(400, error.code, error.message)
        return self._solve_and_respond(problem, method, seed, simulate=None)

    def _handle_simulate(self) -> Tuple[int, bytes]:
        document, failure = self._read_json()
        if failure is not None:
            return failure
        try:
            problem, method, seed, slots = schemas.parse_simulate_request(
                document,
                max_sensors=self.service.config.max_sensors,
                max_slots=self.service.config.max_slots,
            )
        except schemas.WireError as error:
            return self._error_response(400, error.code, error.message)
        return self._solve_and_respond(
            problem,
            method,
            seed,
            simulate=slots if slots is not None else problem.total_slots,
        )

    def _solve_and_respond(
        self, problem, method, seed, simulate: Optional[int]
    ) -> Tuple[int, bytes]:
        service = self.service
        if service.draining:
            return self._error_response(
                503, "shutting-down", "service is draining; retry elsewhere"
            )
        breaker = service.breaker
        if not breaker.allow():
            # Tripped: do not queue doomed work; answer degraded.
            return self._degraded_response(
                problem,
                method,
                seed,
                simulate,
                "degraded-unavailable",
                "solve path unhealthy (circuit breaker open) and no "
                "degraded answer is available",
            )
        try:
            planned, meta = service.batcher.submit(
                problem,
                method,
                seed,
                timeout=self._timeout_budget(),
            )
        except OverloadedError as error:
            # Load shedding, not backend failure: no breaker signal.
            breaker.record_neutral()
            return self._error_response(429, "overloaded", str(error))
        except BatcherClosedError:
            breaker.record_neutral()
            return self._error_response(
                503, "shutting-down", "service is draining; retry elsewhere"
            )
        except TimeoutError as error:
            # Covers DeadlineExceededError too: the solve path failed
            # to answer inside the client's budget.
            breaker.record_failure()
            return self._degraded_response(
                problem, method, seed, simulate, "timeout", str(error)
            )
        except Exception as error:
            if is_retryable(error):
                # Transient infrastructure failure that survived the
                # retry budget: feed the breaker, try the fallback.
                breaker.record_failure()
                return self._degraded_response(
                    problem,
                    method,
                    seed,
                    simulate,
                    "transient-failure",
                    f"{type(error).__name__}: {error}",
                )
            # Deterministic solver bug: fail this request only; it
            # says nothing about the health of the serving path.
            breaker.record_neutral()
            return self._error_response(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        breaker.record_success()
        return self._respond(problem, planned, meta, simulate)

    def _degraded_response(
        self, problem, method, seed, simulate, code: str, message: str
    ) -> Tuple[int, bytes]:
        """A degraded 200 if a fallback applies, else a structured 503."""
        service = self.service
        if service.config.degrade:
            answer = degrade.degraded_answer(
                problem,
                method,
                seed,
                service.cache,
                service.config.degraded_max_sensors,
            )
            if answer is not None:
                planned, meta = answer
                return self._respond(problem, planned, meta, simulate)
        return self._error_response(503, code, message)

    def _respond(
        self, problem, planned, meta: Dict[str, Any], simulate: Optional[int]
    ) -> Tuple[int, bytes]:
        degraded_source = meta.get("degraded_source")
        if simulate is None:
            body = schemas.solve_response(
                planned,
                meta["cache"],
                meta["coalesced"],
                degraded_source=degraded_source,
            )
            return 200, schemas.encode(body)
        # Simulation is per-request work (the solve above was batched):
        # execute the planned schedule on a fresh simulated network.
        schedule = (
            planned.periodic if planned.periodic is not None else planned.schedule
        )
        engine = SimulationEngine(
            SensorNetwork.from_problem(problem), SchedulePolicy(schedule)
        )
        sim = engine.run(min(simulate, problem.total_slots))
        body = schemas.simulate_response(
            planned,
            sim,
            meta["cache"],
            meta["coalesced"],
            degraded_source=degraded_source,
        )
        return 200, schemas.encode(body)

    # -- sessions ------------------------------------------------------

    def _sessions_or_error(self):
        """The store, or a ready-made failure response."""
        service = self.service
        if service.sessions is None:
            return None, self._error_response(
                404, "not-found", "sessions are disabled on this service"
            )
        if service.draining:
            return None, self._error_response(
                503, "shutting-down", "service is draining; retry elsewhere"
            )
        return service.sessions, None

    def _handle_session_create(self) -> Tuple[int, bytes]:
        document, failure = self._read_json()
        if failure is not None:
            return failure
        try:
            problem, method, seed, consistency = schemas.parse_session_create(
                document, max_sensors=self.service.config.max_sensors
            )
        except schemas.WireError as error:
            return self._error_response(400, error.code, error.message)
        store, failure = self._sessions_or_error()
        if failure is not None:
            return failure
        service = self.service
        breaker = service.breaker

        # The initial solve is ordinary solve traffic: it flows through
        # the batcher (cache fast path, coalescing with identical
        # one-shot requests) under the breaker, with the same degraded
        # fallback.  Only the *deltas* bypass the batcher -- they are
        # session-affine and never coalescible.
        degraded_source: Optional[str] = None
        incumbent: Optional[Dict[int, int]] = None
        if not breaker.allow():
            planned = self._degraded_plan(problem, method, seed)
            if planned is None:
                return self._error_response(
                    503,
                    "degraded-unavailable",
                    "solve path unhealthy (circuit breaker open) and no "
                    "degraded incumbent is available",
                )
            incumbent, degraded_source = planned
        else:
            try:
                result, meta = service.batcher.submit(
                    problem,
                    method,
                    seed,
                    timeout=self._timeout_budget(),
                )
            except OverloadedError as error:
                breaker.record_neutral()
                return self._error_response(429, "overloaded", str(error))
            except BatcherClosedError:
                breaker.record_neutral()
                return self._error_response(
                    503, "shutting-down", "service is draining; retry elsewhere"
                )
            except TimeoutError as error:
                breaker.record_failure()
                planned = self._degraded_plan(problem, method, seed)
                if planned is None:
                    return self._error_response(503, "timeout", str(error))
                incumbent, degraded_source = planned
            except Exception as error:
                if is_retryable(error):
                    breaker.record_failure()
                    planned = self._degraded_plan(problem, method, seed)
                    if planned is None:
                        return self._error_response(
                            503,
                            "transient-failure",
                            f"{type(error).__name__}: {error}",
                        )
                    incumbent, degraded_source = planned
                else:
                    breaker.record_neutral()
                    return self._error_response(
                        500, "internal", f"{type(error).__name__}: {error}"
                    )
            else:
                breaker.record_success()
                if result.periodic is None:
                    return self._error_response(
                        500,
                        "internal",
                        f"method {method!r} produced no periodic schedule",
                    )
                incumbent = dict(result.periodic.assignment)

        try:
            session = store.create(
                problem,
                method=method,
                seed=seed,
                consistency=consistency,
                incumbent_assignment=incumbent,
            )
        except StoreFullError as error:
            return self._error_response(429, "too-many-sessions", str(error))
        body = schemas.session_response(
            session, degraded_source=degraded_source
        )
        return 200, schemas.encode(body)

    def _degraded_plan(
        self, problem, method, seed
    ) -> Optional[Tuple[Dict[int, int], str]]:
        """A degraded incumbent assignment, or None if no fallback."""
        service = self.service
        if not service.config.degrade:
            return None
        answer = degrade.degraded_answer(
            problem,
            method,
            seed,
            service.cache,
            service.config.degraded_max_sensors,
        )
        if answer is None:
            return None
        planned, meta = answer
        if planned.periodic is None:
            return None
        return dict(planned.periodic.assignment), meta.get(
            "degraded_source", "degraded"
        )

    def _handle_session_delta(self, session_id: str) -> Tuple[int, bytes]:
        document, failure = self._read_json()
        if failure is not None:
            return failure
        try:
            delta = schemas.parse_session_delta(document)
        except schemas.WireError as error:
            return self._error_response(400, error.code, error.message)
        store, failure = self._sessions_or_error()
        if failure is not None:
            return failure
        service = self.service
        breaker = service.breaker
        deadline = time.monotonic() + self._timeout_budget()
        try:
            with store.checkout(session_id) as session:
                # Probe (pure) whether this delta needs the guarded
                # cold path; warm repairs bypass the breaker entirely.
                try:
                    structural = apply_delta(
                        session.problem, session.failed, delta
                    ).structural
                except DeltaError as error:
                    return self._error_response(400, error.code, error.message)
                needs_cold = structural or session.consistency == "exact"
                if needs_cold and not breaker.allow():
                    if not service.config.degrade:
                        return self._error_response(
                            503,
                            "degraded-unavailable",
                            "cold re-solve path unhealthy (circuit breaker "
                            "open) and degraded answers are disabled",
                        )
                    try:
                        outcome = session.apply(
                            delta, deadline=deadline, allow_cold=False
                        )
                    except ColdResolveUnavailableError as error:
                        return self._error_response(
                            503, error.code, error.message
                        )
                    body = schemas.session_delta_response(session, outcome)
                    return 200, schemas.encode(body)
                try:
                    outcome = session.apply(delta, deadline=deadline)
                except DeltaError as error:
                    if needs_cold:
                        breaker.record_neutral()
                    return self._error_response(400, error.code, error.message)
                except TimeoutError as error:
                    # DeadlineExceededError included: the session rolled
                    # back, so the client retries against unchanged state.
                    if needs_cold:
                        breaker.record_failure()
                    return self._error_response(
                        503,
                        "timeout",
                        f"delta rolled back: {error}",
                    )
                except SessionStateError as error:
                    if needs_cold:
                        breaker.record_neutral()
                    return self._error_response(
                        500, error.code, f"delta rolled back: {error.message}"
                    )
                except SessionClosedError:
                    raise
                except Exception as error:
                    if needs_cold:
                        if is_retryable(error):
                            breaker.record_failure()
                        else:
                            breaker.record_neutral()
                    if is_retryable(error):
                        return self._error_response(
                            503,
                            "transient-failure",
                            f"delta rolled back: "
                            f"{type(error).__name__}: {error}",
                        )
                    return self._error_response(
                        500, "internal", f"{type(error).__name__}: {error}"
                    )
                if needs_cold:
                    breaker.record_success()
                body = schemas.session_delta_response(session, outcome)
                return 200, schemas.encode(body)
        except SessionNotFoundError as error:
            return self._error_response(404, "unknown-session", error.message)
        except SessionGoneError as error:
            return self._error_response(410, "session-gone", error.message)
        except SessionClosedError as error:
            # Evicted while the delta was in flight: state rolled back,
            # resources released on our way out of the checkout.
            return self._error_response(409, error.code, error.message)

    def _handle_session_schedule(self, session_id: str) -> Tuple[int, bytes]:
        store, failure = self._sessions_or_error()
        if failure is not None:
            return failure
        try:
            with store.checkout(session_id) as session:
                body = schemas.session_schedule_response(session)
                return 200, schemas.encode(body)
        except SessionNotFoundError as error:
            return self._error_response(404, "unknown-session", error.message)
        except SessionGoneError as error:
            return self._error_response(410, "session-gone", error.message)
        except SessionClosedError as error:
            return self._error_response(409, error.code, error.message)

    def _handle_session_delete(self, session_id: str) -> Tuple[int, bytes]:
        store, failure = self._sessions_or_error()
        if failure is not None:
            return failure
        try:
            store.delete(session_id)
        except SessionNotFoundError as error:
            return self._error_response(404, "unknown-session", error.message)
        except SessionGoneError as error:
            return self._error_response(410, "session-gone", error.message)
        body = schemas.session_deleted_response(session_id)
        return 200, schemas.encode(body)

    def _handle_metrics(self) -> Tuple[int, bytes]:
        registry = get_registry()
        describe_standard_metrics(registry)
        text = to_prometheus(registry)
        return 200, text.encode("utf-8")

    def _handle_healthz(self) -> Tuple[int, bytes]:
        service = self.service
        status = "draining" if service.draining else "ok"
        body = {
            "kind": "repro-health",
            "version": schemas.WIRE_VERSION,
            "status": status,
            "uptime_seconds": round(service.uptime(), 3),
            "queue_depth": service.batcher.queue_depth(),
            "max_queue": service.batcher.max_queue,
            "breaker": service.breaker.state,
            "sessions": (
                len(service.sessions) if service.sessions is not None else 0
            ),
        }
        return (503 if service.draining else 200), schemas.encode(body)

    # -- plumbing ------------------------------------------------------

    def _read_json(self) -> Tuple[Any, Optional[Tuple[int, bytes]]]:
        """The parsed body, or ``(None, ready-made failure response)``."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, self._error_response(
                400, "bad-request", "unreadable Content-Length"
            )
        limit = self.service.config.max_body_bytes
        if length > limit:
            return None, self._error_response(
                413,
                "body-too-large",
                f"body of {length} bytes exceeds the {limit} byte limit",
            )
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, self._error_response(
                400, "bad-json", f"body is not valid JSON: {error}"
            )

    def _error_response(
        self, status: int, code: str, message: str
    ) -> Tuple[int, bytes]:
        return status, schemas.encode(schemas.error_body(code, message))

    def _timed(self, endpoint: str, handler) -> None:
        start = time.perf_counter()
        try:
            status, payload = handler()
        except Exception as error:  # last-resort guard: never hang a client
            status, payload = self._error_response(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        self._send(endpoint, status, payload)
        registry = get_registry()
        registry.counter(
            "repro_server_requests_total",
            _REQUESTS_HELP,
            endpoint=endpoint,
            status=str(status),
        ).inc()
        registry.histogram(
            "repro_server_request_seconds", _LATENCY_HELP, endpoint=endpoint
        ).observe(time.perf_counter() - start)

    def _error(
        self, endpoint: str, status: int, code: str, message: str
    ) -> None:
        self._send(
            endpoint, status, schemas.encode(schemas.error_body(code, message))
        )
        get_registry().counter(
            "repro_server_requests_total",
            _REQUESTS_HELP,
            endpoint=endpoint,
            status=str(status),
        ).inc()

    def _send(self, endpoint: str, status: int, payload: bytes) -> None:
        content_type = (
            "text/plain; version=0.0.4; charset=utf-8"
            if endpoint == "metrics" and status == 200
            else "application/json; charset=utf-8"
        )
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if status == 429:
                self.send_header("Retry-After", "1")
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing left to tell it

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to the structured event stream, not stderr."""
        obs_events.emit(
            "server.access",
            client=self.client_address[0],
            line=format % args,
        )
