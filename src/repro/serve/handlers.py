"""HTTP request handling: routing, validation, status mapping, metrics.

One :class:`ServiceRequestHandler` instance handles one connection
(``ThreadingHTTPServer`` gives each its own thread).  The handler is
deliberately thin: parse and validate at the door, delegate solving to
the shared :class:`~repro.serve.batcher.SolveBatcher`, and map every
failure mode to a structured JSON error:

====================================  ======  =====================
condition                             status  error code
====================================  ======  =====================
unknown path                          404     ``not-found``
wrong HTTP method for the path        405     ``method-not-allowed``
body exceeds ``max_body_bytes``       413     ``body-too-large``
body is not valid JSON                400     ``bad-json``
schema/semantic validation failure    400     (from ``WireError``)
queue full                            429     ``overloaded``
service draining                      503     ``shutting-down``
request/deadline timeout              503     ``timeout``
transient infra failure (retries up)  503     ``transient-failure``
circuit breaker open, no fallback     503     ``degraded-unavailable``
solver/internal failure               500     ``internal``
====================================  ======  =====================

Timeouts, deadline exhaustion and retry-exhausted transient errors
feed the service's :class:`~repro.serve.breaker.CircuitBreaker`; when
it opens, solve traffic is answered from the degraded path
(:mod:`repro.serve.degrade` -- stale cache or bounded serial greedy,
the response flagged ``"degraded": true``) and only falls through to
a structured 503 when no fallback applies.  Validation errors and
deterministic solver failures never trip the breaker.

429 responses carry ``Retry-After: 1`` -- the queue turns over in
batch-window time, so an immediate retry storm is the only wrong
answer.  Every request increments
``repro_server_requests_total{endpoint,status}`` and observes
``repro_server_request_seconds{endpoint}``.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler
from typing import Any, Dict, Optional, Tuple

from repro.obs import events as obs_events
from repro.obs.catalog import describe_standard_metrics
from repro.obs.export import to_prometheus
from repro.obs.registry import get_registry
from repro.policies.schedule_policy import SchedulePolicy
from repro.runtime.retry import is_retryable
from repro.serve import degrade, schemas
from repro.serve.batcher import BatcherClosedError, OverloadedError
from repro.sim.engine import SimulationEngine
from repro.sim.network import SensorNetwork

_REQUESTS_HELP = "HTTP requests by endpoint and status code"
_LATENCY_HELP = "HTTP request wall time by endpoint"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/solve``, ``/v1/simulate``, ``/metrics``, ``/healthz``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # The service object is attached by app.ServiceHTTPServer.
    @property
    def service(self):
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        if self.path == "/metrics":
            self._timed("metrics", self._handle_metrics)
        elif self.path == "/healthz":
            self._timed("healthz", self._handle_healthz)
        elif self.path in ("/v1/solve", "/v1/simulate"):
            self._error("solve", 405, "method-not-allowed", "use POST")
        else:
            self._error("unknown", 404, "not-found", f"no route {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/v1/solve":
            self._timed("solve", self._handle_solve)
        elif self.path == "/v1/simulate":
            self._timed("simulate", self._handle_simulate)
        elif self.path in ("/metrics", "/healthz"):
            self._error("metrics", 405, "method-not-allowed", "use GET")
        else:
            self._error("unknown", 404, "not-found", f"no route {self.path}")

    # -- endpoints -----------------------------------------------------

    def _handle_solve(self) -> Tuple[int, bytes]:
        document, failure = self._read_json()
        if failure is not None:
            return failure
        try:
            problem, method, seed = schemas.parse_solve_request(
                document, max_sensors=self.service.config.max_sensors
            )
        except schemas.WireError as error:
            return self._error_response(400, error.code, error.message)
        return self._solve_and_respond(problem, method, seed, simulate=None)

    def _handle_simulate(self) -> Tuple[int, bytes]:
        document, failure = self._read_json()
        if failure is not None:
            return failure
        try:
            problem, method, seed, slots = schemas.parse_simulate_request(
                document,
                max_sensors=self.service.config.max_sensors,
                max_slots=self.service.config.max_slots,
            )
        except schemas.WireError as error:
            return self._error_response(400, error.code, error.message)
        return self._solve_and_respond(
            problem,
            method,
            seed,
            simulate=slots if slots is not None else problem.total_slots,
        )

    def _solve_and_respond(
        self, problem, method, seed, simulate: Optional[int]
    ) -> Tuple[int, bytes]:
        service = self.service
        if service.draining:
            return self._error_response(
                503, "shutting-down", "service is draining; retry elsewhere"
            )
        breaker = service.breaker
        if not breaker.allow():
            # Tripped: do not queue doomed work; answer degraded.
            return self._degraded_response(
                problem,
                method,
                seed,
                simulate,
                "degraded-unavailable",
                "solve path unhealthy (circuit breaker open) and no "
                "degraded answer is available",
            )
        try:
            planned, meta = service.batcher.submit(
                problem,
                method,
                seed,
                timeout=service.config.request_timeout,
            )
        except OverloadedError as error:
            # Load shedding, not backend failure: no breaker signal.
            breaker.record_neutral()
            return self._error_response(429, "overloaded", str(error))
        except BatcherClosedError:
            breaker.record_neutral()
            return self._error_response(
                503, "shutting-down", "service is draining; retry elsewhere"
            )
        except TimeoutError as error:
            # Covers DeadlineExceededError too: the solve path failed
            # to answer inside the client's budget.
            breaker.record_failure()
            return self._degraded_response(
                problem, method, seed, simulate, "timeout", str(error)
            )
        except Exception as error:
            if is_retryable(error):
                # Transient infrastructure failure that survived the
                # retry budget: feed the breaker, try the fallback.
                breaker.record_failure()
                return self._degraded_response(
                    problem,
                    method,
                    seed,
                    simulate,
                    "transient-failure",
                    f"{type(error).__name__}: {error}",
                )
            # Deterministic solver bug: fail this request only; it
            # says nothing about the health of the serving path.
            breaker.record_neutral()
            return self._error_response(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        breaker.record_success()
        return self._respond(problem, planned, meta, simulate)

    def _degraded_response(
        self, problem, method, seed, simulate, code: str, message: str
    ) -> Tuple[int, bytes]:
        """A degraded 200 if a fallback applies, else a structured 503."""
        service = self.service
        if service.config.degrade:
            answer = degrade.degraded_answer(
                problem,
                method,
                seed,
                service.cache,
                service.config.degraded_max_sensors,
            )
            if answer is not None:
                planned, meta = answer
                return self._respond(problem, planned, meta, simulate)
        return self._error_response(503, code, message)

    def _respond(
        self, problem, planned, meta: Dict[str, Any], simulate: Optional[int]
    ) -> Tuple[int, bytes]:
        degraded_source = meta.get("degraded_source")
        if simulate is None:
            body = schemas.solve_response(
                planned,
                meta["cache"],
                meta["coalesced"],
                degraded_source=degraded_source,
            )
            return 200, schemas.encode(body)
        # Simulation is per-request work (the solve above was batched):
        # execute the planned schedule on a fresh simulated network.
        schedule = (
            planned.periodic if planned.periodic is not None else planned.schedule
        )
        engine = SimulationEngine(
            SensorNetwork.from_problem(problem), SchedulePolicy(schedule)
        )
        sim = engine.run(min(simulate, problem.total_slots))
        body = schemas.simulate_response(
            planned,
            sim,
            meta["cache"],
            meta["coalesced"],
            degraded_source=degraded_source,
        )
        return 200, schemas.encode(body)

    def _handle_metrics(self) -> Tuple[int, bytes]:
        registry = get_registry()
        describe_standard_metrics(registry)
        text = to_prometheus(registry)
        return 200, text.encode("utf-8")

    def _handle_healthz(self) -> Tuple[int, bytes]:
        service = self.service
        status = "draining" if service.draining else "ok"
        body = {
            "kind": "repro-health",
            "version": schemas.WIRE_VERSION,
            "status": status,
            "uptime_seconds": round(service.uptime(), 3),
            "queue_depth": service.batcher.queue_depth(),
            "max_queue": service.batcher.max_queue,
            "breaker": service.breaker.state,
        }
        return (503 if service.draining else 200), schemas.encode(body)

    # -- plumbing ------------------------------------------------------

    def _read_json(self) -> Tuple[Any, Optional[Tuple[int, bytes]]]:
        """The parsed body, or ``(None, ready-made failure response)``."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, self._error_response(
                400, "bad-request", "unreadable Content-Length"
            )
        limit = self.service.config.max_body_bytes
        if length > limit:
            return None, self._error_response(
                413,
                "body-too-large",
                f"body of {length} bytes exceeds the {limit} byte limit",
            )
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, self._error_response(
                400, "bad-json", f"body is not valid JSON: {error}"
            )

    def _error_response(
        self, status: int, code: str, message: str
    ) -> Tuple[int, bytes]:
        return status, schemas.encode(schemas.error_body(code, message))

    def _timed(self, endpoint: str, handler) -> None:
        start = time.perf_counter()
        try:
            status, payload = handler()
        except Exception as error:  # last-resort guard: never hang a client
            status, payload = self._error_response(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        self._send(endpoint, status, payload)
        registry = get_registry()
        registry.counter(
            "repro_server_requests_total",
            _REQUESTS_HELP,
            endpoint=endpoint,
            status=str(status),
        ).inc()
        registry.histogram(
            "repro_server_request_seconds", _LATENCY_HELP, endpoint=endpoint
        ).observe(time.perf_counter() - start)

    def _error(
        self, endpoint: str, status: int, code: str, message: str
    ) -> None:
        self._send(
            endpoint, status, schemas.encode(schemas.error_body(code, message))
        )
        get_registry().counter(
            "repro_server_requests_total",
            _REQUESTS_HELP,
            endpoint=endpoint,
            status=str(status),
        ).inc()

    def _send(self, endpoint: str, status: int, payload: bytes) -> None:
        content_type = (
            "text/plain; version=0.0.4; charset=utf-8"
            if endpoint == "metrics" and status == 200
            else "application/json; charset=utf-8"
        )
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if status == 429:
                self.send_header("Retry-After", "1")
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing left to tell it

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to the structured event stream, not stderr."""
        obs_events.emit(
            "server.access",
            client=self.client_address[0],
            line=format % args,
        )
