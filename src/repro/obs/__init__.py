"""repro.obs -- unified observability: metrics, tracing, structured events.

Every layer of the pipeline reports through this subsystem instead of
ad-hoc prints and private counters:

- :mod:`repro.obs.registry` -- a process-wide, thread-safe
  :class:`MetricsRegistry` of :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families (fixed exponential buckets, interpolated
  p50/p95/p99);
- :mod:`repro.obs.tracing` -- nested, attributed spans with
  deterministic sequence IDs (``with tracing.span("solve", ...):``);
- :mod:`repro.obs.events` -- a schema-versioned JSONL event sink the
  engine, health monitor, self-healing policy and runtime emit into;
- :mod:`repro.obs.export` -- Prometheus text exposition and JSON
  snapshot exporters;
- :mod:`repro.obs.catalog` -- the standard metric-name catalog
  (mirrored in docs/OBSERVABILITY.md).

Everything is pure stdlib and write-only with respect to results:
``REPRO_OBS=0`` (or :meth:`MetricsRegistry.disable`) turns all
recording off and the instrumented code produces bit-for-bit identical
schedules and simulations.
"""

from repro.obs.catalog import STANDARD_METRICS, describe_standard_metrics
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventSink,
    MemorySink,
    read_events,
)
from repro.obs.export import to_json, to_prometheus
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    OBS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    get_registry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_SCHEMA_VERSION",
    "EventSink",
    "Gauge",
    "Histogram",
    "MemorySink",
    "MetricsRegistry",
    "OBS_ENV",
    "STANDARD_METRICS",
    "Span",
    "Tracer",
    "describe_standard_metrics",
    "enabled",
    "get_registry",
    "read_events",
    "to_json",
    "to_prometheus",
]
