"""Exporters: Prometheus text exposition and JSON snapshots.

Both render a :class:`~repro.obs.registry.MetricsRegistry` snapshot
(:meth:`~repro.obs.registry.MetricsRegistry.collect`); neither mutates
it.  The Prometheus form follows the text exposition format version
0.0.4 (``# HELP`` / ``# TYPE`` comments, ``name{label="value"} value``
samples, histogram ``_bucket``/``_sum``/``_count`` expansion with
cumulative ``le`` buckets), so the output scrapes directly or feeds
``promtool check metrics``-style linters -- ``tools/check_prometheus.py``
here validates it in CI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry, get_registry


def _fmt_value(value: Any) -> str:
    """Prometheus sample-value formatting: integers bare, floats via
    ``repr`` (shortest round-trip form)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry in Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["kind"]
        help_text = family["help"] or name
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                for bucket in sample["buckets"]:
                    le = (
                        "+Inf"
                        if bucket["le"] == "+Inf"
                        else _fmt_value(bucket["le"])
                    )
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_block(labels, {'le': le})}"
                        f" {bucket['count']}"
                    )
                lines.append(
                    f"{name}_sum{_label_block(labels)}"
                    f" {_fmt_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_block(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_block(labels)}"
                    f" {_fmt_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def to_json(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """Render the registry as a JSON-compatible snapshot document."""
    registry = registry if registry is not None else get_registry()
    return {
        "kind": "repro-metrics",
        "version": 1,
        "families": registry.collect(),
    }
