"""Structured events: one JSONL stream for everything that happened.

Metrics aggregate; events narrate.  The engine's per-slot outcomes, the
health monitor's verdict transitions, the self-healing policy's retry
and repair decisions, and the runtime's per-task dispositions all emit
here, so one ``repro simulate --events-out run.jsonl`` captures the
whole causal story in slot order -- machine-readable, greppable,
diffable.

Records are schema-versioned dicts, one JSON object per line::

    {"v": 1, "seq": 12, "kind": "health.transition", "slot": 30, ...}

- ``v`` is :data:`EVENT_SCHEMA_VERSION`; consumers reject unknown
  versions instead of mis-parsing;
- ``seq`` is a monotonic per-sink sequence; there are no wall-clock
  timestamps, so identical runs produce identically *ordered* streams
  (only fields that are themselves measurements, e.g. ``seconds`` on
  ``solve`` records, vary between runs);
- ``kind`` namespaces the emitter (``engine.*``, ``health.*``,
  ``policy.*``, ``runtime.*``, ``solve``).

:class:`EventSink` appends each record in a single buffered write
followed by a flush, under a lock -- concurrent emitters interleave
whole lines, never fragments.  Instrumented code calls the module-level
:func:`emit`, which is a no-op until a sink is installed
(:func:`set_sink`), so the default cost is one ``None`` check.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs import registry as _registry

#: Version stamped into every record's ``v`` field.
EVENT_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


class EventSink:
    """Appends schema-versioned JSONL records to a file.

    The file handle opens lazily on the first emit (so constructing a
    sink for a path that is never written leaves no file) and appends,
    so resumed runs extend their original stream.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one record; returns the record dict as written."""
        with self._lock:
            record: Dict[str, Any] = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "kind": kind,
            }
            record.update(fields)
            line = json.dumps(record, default=_jsonable)
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            # One write + flush per record: concurrent emitters (pool
            # bookkeeping threads) interleave whole lines only.
            self._handle.write(line + "\n")
            self._handle.flush()
            self._seq += 1
            return record

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemorySink:
    """In-process sink for tests: records land in :attr:`records`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self.records: List[Dict[str, Any]] = []

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one record to :attr:`records` and return it."""
        with self._lock:
            record: Dict[str, Any] = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "kind": kind,
            }
            # Round-trip through JSON so memory and file sinks observe
            # byte-identical payload semantics.
            record.update(json.loads(json.dumps(fields, default=_jsonable)))
            self.records.append(record)
            self._seq += 1
            return record

    def close(self) -> None:
        """No-op (memory sinks hold no resources)."""


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL event stream back into record dicts, rejecting
    records whose schema version is unknown."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("v") != EVENT_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{number + 1}: unsupported event schema "
                    f"version {record.get('v')!r} "
                    f"(supported: {EVENT_SCHEMA_VERSION})"
                )
            records.append(record)
    return records


# ----------------------------------------------------------------------
# The installed sink (module-level switchboard)
# ----------------------------------------------------------------------

_sink: Optional[Any] = None


def set_sink(sink: Optional[Any]) -> Optional[Any]:
    """Install ``sink`` as the process's event sink; returns the
    previous one (restore it when done, as the CLI does)."""
    global _sink
    previous = _sink
    _sink = sink
    return previous


def get_sink() -> Optional[Any]:
    """The installed sink, or ``None``."""
    return _sink


def sink_active() -> bool:
    """Whether :func:`emit` would actually record right now.

    Hot loops whose event *fields* are expensive to build (e.g. sorting
    a 10^5-sensor active set every slot) check this before constructing
    them; :func:`emit` itself stays safe to call unconditionally.
    """
    return _sink is not None and _registry.enabled()


def emit(kind: str, **fields: Any) -> None:
    """Emit a record to the installed sink; a no-op when no sink is
    installed or observability is disabled."""
    if _sink is None or not _registry.enabled():
        return
    _sink.emit(kind, **fields)
