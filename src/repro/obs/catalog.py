"""The metric name catalog: every series the instrumented layers emit.

Kept in one place so (a) ``repro metrics`` can pre-register the whole
catalog and emit ``# HELP``/``# TYPE`` metadata for every family even
before traffic arrives, (b) docs/OBSERVABILITY.md has a single source
of truth to mirror, and (c) renames are grep-able diffs, not scavenger
hunts.  Label values are free-form; the label *names* listed here are
the complete set each family uses.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs.registry import MetricsRegistry, get_registry

#: (kind, name, label names, help) for every standard series.
STANDARD_METRICS: Tuple[Tuple[str, str, Tuple[str, ...], str], ...] = (
    # -- solver (core/solver.py, core/greedy.py) -----------------------
    (
        "counter",
        "repro_solve_total",
        ("method",),
        "Completed solves by method",
    ),
    (
        "histogram",
        "repro_solve_seconds",
        ("method",),
        "Solve wall time by method",
    ),
    (
        "counter",
        "repro_greedy_marginal_evals_total",
        ("variant",),
        "Marginal-utility evaluations by solver variant",
    ),
    # -- incremental utility kernels (utility/incremental.py) ----------
    (
        "counter",
        "repro_utility_incremental_ops_total",
        ("family", "op"),
        "Incremental-evaluator operations by family and kind",
    ),
    # -- simulation engine (sim/engine.py) -----------------------------
    (
        "counter",
        "repro_sim_slots_total",
        (),
        "Simulation slots executed",
    ),
    (
        "histogram",
        "repro_sim_slot_seconds",
        (),
        "Per-slot simulation step wall time",
    ),
    (
        "counter",
        "repro_sim_refusals_total",
        (),
        "Activations refused by undercharged nodes",
    ),
    (
        "gauge",
        "repro_sim_slot_utility",
        (),
        "Utility achieved in the most recent simulated slot",
    ),
    # -- spatial coverage index (coverage/spatial.py) -------------------
    (
        "counter",
        "repro_spatial_index_builds_total",
        (),
        "Spatial grid indexes constructed",
    ),
    (
        "counter",
        "repro_spatial_queries_total",
        (),
        "Point queries answered by the index",
    ),
    (
        "counter",
        "repro_spatial_candidates_total",
        (),
        "Candidate sensors examined by indexed queries",
    ),
    (
        "counter",
        "repro_spatial_pruned_total",
        (),
        "Sensors skipped by indexed queries vs. brute force",
    ),
    (
        "counter",
        "repro_spatial_verified_total",
        (),
        "Point queries cross-checked against brute force",
    ),
    # -- sharded simulation (sim/sharded.py) ----------------------------
    (
        "gauge",
        "repro_sim_shard_count",
        (),
        "Shards in the most recent sharded simulation",
    ),
    (
        "counter",
        "repro_sim_shard_slots_total",
        (),
        "Shard-slots executed by sharded simulations",
    ),
    (
        "histogram",
        "repro_sim_shard_merge_seconds",
        (),
        "Wall time merging per-shard slot records",
    ),
    (
        "counter",
        "repro_sim_shard_checkpoints_total",
        (),
        "Per-shard partition snapshots written",
    ),
    # -- health monitor (sim/health.py) --------------------------------
    (
        "counter",
        "repro_health_transitions_total",
        ("to",),
        "Node verdict transitions by destination state "
        "(alive/suspect/down/rogue)",
    ),
    # -- self-healing policy (policies/self_healing.py) ----------------
    (
        "counter",
        "repro_selfheal_retries_total",
        ("outcome",),
        "Lost-command retries by outcome (issued/declined)",
    ),
    (
        "counter",
        "repro_selfheal_repairs_total",
        ("outcome",),
        "Schedule repairs by outcome (adopted/skipped)",
    ),
    (
        "counter",
        "repro_selfheal_suppressed_commands_total",
        (),
        "Commands suppressed to latched-rogue nodes",
    ),
    # -- schedule cache (runtime/cache.py) -----------------------------
    (
        "counter",
        "repro_cache_lookups_total",
        ("result",),
        "Schedule cache lookups by result (hit/miss)",
    ),
    (
        "counter",
        "repro_cache_stores_total",
        (),
        "Schedule cache entries written",
    ),
    (
        "counter",
        "repro_cache_evictions_total",
        (),
        "In-memory LRU evictions",
    ),
    (
        "counter",
        "repro_cache_disk_hits_total",
        (),
        "Cache hits served from the directory store",
    ),
    # -- worker pool (runtime/pool.py) ---------------------------------
    (
        "counter",
        "repro_pool_tasks_total",
        ("mode",),
        "Pool tasks completed by execution mode (parallel/serial)",
    ),
    (
        "histogram",
        "repro_pool_task_seconds",
        (),
        "Per-task wall time in the worker pool",
    ),
    (
        "counter",
        "repro_pool_fallbacks_total",
        ("reason",),
        "Pool runs downgraded to serial execution by reason "
        "(single-core/cheap-tasks)",
    ),
    # -- HTTP service (serve/handlers.py, serve/batcher.py) ------------
    (
        "counter",
        "repro_server_requests_total",
        ("endpoint", "status"),
        "HTTP requests by endpoint and status code",
    ),
    (
        "histogram",
        "repro_server_request_seconds",
        ("endpoint",),
        "HTTP request wall time by endpoint",
    ),
    (
        "gauge",
        "repro_server_queue_depth",
        (),
        "Solve requests queued or being batched right now",
    ),
    (
        "histogram",
        "repro_server_batch_size",
        (),
        "Requests per executed batch",
    ),
    (
        "counter",
        "repro_server_coalesced_total",
        (),
        "Requests answered by another in-flight request's solve",
    ),
    (
        "counter",
        "repro_server_cache_fastpath_total",
        (),
        "Requests answered from the cache at admission time",
    ),
    # -- batched solving (batched/greedy.py, runtime/executor.py) ------
    (
        "counter",
        "repro_batched_batches_total",
        ("family",),
        "Batched-greedy batches executed by family",
    ),
    (
        "counter",
        "repro_batched_instances_total",
        ("family",),
        "Instances solved through the batched kernels by family",
    ),
    (
        "counter",
        "repro_batched_kernel_invocations_total",
        ("family",),
        "Vectorized kernel passes issued by family",
    ),
    (
        "histogram",
        "repro_batched_batch_size",
        (),
        "Instances per executed batch",
    ),
    (
        "counter",
        "repro_batched_fallback_total",
        ("reason",),
        "Batched-routing fallbacks to the serial path by reason "
        "(rho/family/method/singleton/disabled/forced-pool)",
    ),
    (
        "counter",
        "repro_server_batched_total",
        (),
        "Service solves answered through the batched kernel path",
    ),
    # -- fault injection (faults/injector.py) --------------------------
    (
        "counter",
        "repro_faults_injected_total",
        ("site", "action"),
        "Chaos faults fired by injection site and action",
    ),
    # -- retries (runtime/retry.py) ------------------------------------
    (
        "counter",
        "repro_retry_attempts_total",
        ("site",),
        "Transient-failure retries attempted, by site",
    ),
    (
        "counter",
        "repro_retry_exhausted_total",
        ("site",),
        "Retry budgets exhausted (the error propagated), by site",
    ),
    # -- circuit breaker (serve/breaker.py) ----------------------------
    (
        "gauge",
        "repro_breaker_state",
        (),
        "Circuit breaker state (0 closed, 1 open, 2 half-open)",
    ),
    (
        "counter",
        "repro_breaker_transitions_total",
        ("from_state", "to_state"),
        "Circuit breaker state transitions",
    ),
    # -- degradation + drain (serve/degrade.py, serve/batcher.py) ------
    (
        "counter",
        "repro_server_degraded_total",
        ("source",),
        "Requests answered by a degraded fallback path, by source",
    ),
    (
        "counter",
        "repro_server_cancelled_total",
        (),
        "Requests cancelled after their submit timeout expired",
    ),
    (
        "counter",
        "repro_server_drain_incomplete_total",
        ("component",),
        "Requests resolved with BatcherClosedError at close, by component",
    ),
    # -- cache integrity (runtime/cache.py) ----------------------------
    (
        "counter",
        "repro_cache_quarantined_total",
        (),
        "Corrupt cache entries moved into quarantine",
    ),
    # -- sessions (sessions/session.py, sessions/store.py) -------------
    (
        "gauge",
        "repro_session_active",
        (),
        "Live sessions in the store",
    ),
    (
        "counter",
        "repro_session_created_total",
        (),
        "Sessions created (including checkpoint restores)",
    ),
    (
        "counter",
        "repro_session_deltas_total",
        ("kind", "outcome"),
        "Session deltas by kind and outcome",
    ),
    (
        "histogram",
        "repro_session_resolve_seconds",
        ("mode",),
        "Session re-solve wall time by resolve mode",
    ),
    (
        "counter",
        "repro_session_evictions_total",
        ("reason",),
        "Session evictions by reason",
    ),
    (
        "counter",
        "repro_session_rollbacks_total",
        (),
        "Session delta rollbacks (state restored after a failure)",
    ),
    (
        "counter",
        "repro_session_checkpoints_total",
        (),
        "Session checkpoints written",
    ),
    (
        "counter",
        "repro_session_cache_hits_total",
        ("source",),
        "Session re-solves answered from a cache (memo/global)",
    ),
    # -- shared cache tier (runtime/cache.py, runtime/backend.py) ------
    (
        "counter",
        "repro_cache_cross_hits_total",
        (),
        "Backend hits on entries written by another process",
    ),
    # -- cluster (cluster/supervisor.py, cluster/router.py) ------------
    (
        "gauge",
        "repro_cluster_workers",
        ("state",),
        "Cluster workers by lifecycle state",
    ),
    (
        "counter",
        "repro_cluster_restarts_total",
        ("worker",),
        "Worker respawns by shard",
    ),
    (
        "counter",
        "repro_router_requests_total",
        ("endpoint", "status"),
        "Router requests by endpoint and status code",
    ),
    (
        "histogram",
        "repro_router_forward_seconds",
        ("worker",),
        "Router-to-worker forward wall time",
    ),
    (
        "counter",
        "repro_router_forward_errors_total",
        ("worker", "kind"),
        "Failed forwards by worker and failure kind",
    ),
)


def describe_standard_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Pre-register every standard family (idempotent) so exporters
    list the full catalog; returns the registry for chaining."""
    registry = registry if registry is not None else get_registry()
    for kind, name, _labels, help_text in STANDARD_METRICS:
        registry.describe(kind, name, help_text)
    return registry
