"""Span-based tracing: where did the wall time go, structurally.

A :class:`Tracer` records a forest of named, timed spans::

    tracer = Tracer()
    with activated(tracer):
        with span("solve", method="greedy"):
            with span("greedy", variant="lazy"):
                ...

Instrumented code calls the module-level :func:`span` unconditionally;
when no tracer is active (the default) it returns a shared no-op
context manager, so tracing costs one attribute check per call site
unless explicitly switched on (e.g. by the CLI's ``--trace-out``).

Design points:

- **deterministic span IDs**: each span's id is ``s<NNNNNN>`` from a
  monotonic per-tracer sequence -- no wall-clock, no randomness -- so
  two traces of the same run differ only in the recorded durations and
  a structural diff (``to_dict(timings=False)``) is byte-stable;
- **nestable across layers**: the active span stack is per-thread
  (``threading.local``), so solver spans nest under engine spans nest
  under CLI spans without any plumbing through call signatures;
- **attributes** are plain key/value pairs captured at span start and
  propagated into the exported tree.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import registry as _registry

#: Format tag/version of :meth:`Tracer.to_dict` documents.
TRACE_KIND = "repro-trace"
TRACE_VERSION = 1


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("span_id", "name", "attributes", "children", "_start", "duration")

    def __init__(self, span_id: str, name: str, attributes: Dict[str, Any]):
        self.span_id = span_id
        self.name = name
        self.attributes = attributes
        self.children: List["Span"] = []
        self._start = time.perf_counter()
        self.duration = 0.0

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        """The span subtree as JSON-compatible nesting; ``timings=False``
        drops durations for byte-stable structural diffs."""
        node: Dict[str, Any] = {
            "id": self.span_id,
            "name": self.name,
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
        }
        if timings:
            node["duration_seconds"] = self.duration
        node["children"] = [c.to_dict(timings=timings) for c in self.children]
        return node


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


class _SpanContext:
    """The context manager :meth:`Tracer.span` returns."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._span.duration = time.perf_counter() - self._span._start
        self._tracer._pop(self._span)


class _NullSpanContext:
    """Shared no-op context for call sites with no active tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects a forest of spans with deterministic sequence IDs."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span; use as ``with tracer.span("solve", method=m):``."""
        with self._lock:
            span_id = f"s{self._seq:06d}"
            self._seq += 1
        return _SpanContext(self, Span(span_id, name, attributes))

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span._start = time.perf_counter()  # re-arm: exclude queueing time
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mismatched exits: recover, don't corrupt
            stack.remove(span)

    # -- export --------------------------------------------------------

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        """The whole trace forest as a schema-tagged document."""
        return {
            "kind": TRACE_KIND,
            "version": TRACE_VERSION,
            "spans": [root.to_dict(timings=timings) for root in self.roots],
        }

    def write(self, path: Any, timings: bool = True) -> None:
        """Serialize :meth:`to_dict` as indented JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(timings=timings), handle, indent=2)
            handle.write("\n")


# ----------------------------------------------------------------------
# The active tracer (module-level switchboard)
# ----------------------------------------------------------------------

_active: Optional[Tracer] = None


def activate(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the process's active tracer; returns the
    previous one (restore it when done, as the CLI does)."""
    global _active
    previous = _active
    _active = tracer
    return previous


def current() -> Optional[Tracer]:
    """The active tracer, or ``None``."""
    return _active


def span(name: str, **attributes: Any):
    """Open a span on the active tracer; a shared no-op context when no
    tracer is active or observability is disabled."""
    if _active is None or not _registry.enabled():
        return _NULL_SPAN
    return _active.span(name, **attributes)
