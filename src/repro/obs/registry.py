"""Process-wide metrics: counters, gauges and bucketed histograms.

One :class:`MetricsRegistry` instance (usually the process-wide default
from :func:`get_registry`) holds every metric the instrumented layers
emit -- solver timings, engine slot costs, cache hit ratios, pool task
walls, self-healing verdicts.  Design constraints, in order:

- **pure stdlib** -- importable everywhere, including worker processes
  and minimal sandboxes; no third-party client library;
- **thread-safe** -- the pool's parent-side bookkeeping and any future
  serving layer may update metrics from several threads; a single
  registry lock guards family creation and every sample mutation;
- **never on the result path** -- metrics are write-only diagnostics.
  Disabling them (``REPRO_OBS=0`` in the environment, or
  :meth:`MetricsRegistry.disable`) swaps every lookup for a shared
  no-op metric, so instrumented code runs identically with recording
  on or off -- bit-for-bit identical schedules and simulations either
  way, which tests pin;
- **resettable** -- :meth:`MetricsRegistry.reset` zeroes every sample
  in place (existing metric handles stay live), so test cases can
  assert exact counts without process isolation.

Metrics are identified by a Prometheus-style ``name`` plus an optional
label set: ``registry.counter("repro_solve_total", "...", method="greedy")``
returns the child for that exact label combination, creating family and
child on first use.  Histograms use fixed exponential buckets (powers
of four from one microsecond by default -- wall-time shaped) and
estimate p50/p95/p99 by linear interpolation within the bucket that
crosses the requested rank.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Environment variable: set to ``0`` to disable all observability
#: (metrics, tracing and events) for the process.
OBS_ENV = "REPRO_OBS"

#: Default histogram buckets: exponential, powers of 4 from 1 microsecond
#: to ~4.2 seconds -- the dynamic range of this repo's wall times.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4**i for i in range(12))

_enabled = os.environ.get(OBS_ENV, "1") != "0"


def enabled() -> bool:
    """Is observability recording currently on for this process?"""
    return _enabled


def _set_enabled(value: bool) -> None:
    global _enabled
    _enabled = value


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# ----------------------------------------------------------------------
# Metric kinds
# ----------------------------------------------------------------------


class Counter:
    """A monotonically increasing sample."""

    kind = "counter"

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot(self) -> Dict[str, Any]:
        return {"value": self._value}


class Gauge:
    """A sample that can go up and down (last-write-wins)."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot(self) -> Dict[str, Any]:
        return {"value": self._value}


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimates.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow (+Inf) bucket.  The class is
    usable standalone (``Histogram()``) as a small streaming-percentile
    utility -- :func:`repro.runtime.pool.summarize_telemetry` does this
    -- as well as through a registry.
    """

    kind = "histogram"

    def __init__(
        self,
        lock: Optional[threading.RLock] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be ascending: {bounds}")
        self.bounds = bounds
        # Re-entrant: collect() snapshots percentiles while already
        # holding the shared registry lock.
        self._lock = lock if lock is not None else threading.RLock()
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) by interpolating
        linearly inside the bucket whose cumulative count crosses the
        requested rank.  Returns 0.0 with no observations."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            cumulative = 0
            for index, count in enumerate(self._counts):
                if count == 0:
                    cumulative += count
                    continue
                if cumulative + count >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self._max  # overflow: cap at the observed max
                    )
                    fraction = (rank - cumulative) / count
                    return lower + (upper - lower) * fraction
                cumulative += count
        return self._max  # pragma: no cover - defensive

    def percentiles(self) -> Dict[str, float]:
        """The conventional p50/p95/p99 triple."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def _reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def _snapshot(self) -> Dict[str, Any]:
        cumulative: List[int] = []
        running = 0
        for count in self._counts:
            running += count
            cumulative.append(running)
        return {
            "buckets": [
                {"le": bound, "count": cum}
                for bound, cum in zip(self.bounds, cumulative[:-1])
            ]
            + [{"le": "+Inf", "count": cumulative[-1]}],
            "sum": self._sum,
            "count": self._count,
            **self.percentiles(),
        }


class _NullMetric:
    """The shared no-op metric handed out while recording is disabled."""

    kind = "null"
    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def quantile(self, q: float) -> float:
        """Always 0.0."""
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        """All zeros."""
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}


_NULL_METRIC = _NullMetric()


# ----------------------------------------------------------------------
# Families and the registry
# ----------------------------------------------------------------------


class _Family:
    """All children (label combinations) of one metric name."""

    def __init__(self, kind: str, name: str, help_text: str):
        self.kind = kind
        self.name = name
        self.help = help_text
        self.children: "Dict[LabelKey, Any]" = {}


class MetricsRegistry:
    """A thread-safe collection of metric families.

    Most code uses the process-wide default from :func:`get_registry`;
    tests may instantiate private registries for isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    # -- global switch -------------------------------------------------

    @classmethod
    def disable(cls) -> None:
        """Turn all observability recording off for the process
        (equivalent to running with ``REPRO_OBS=0``).  Metric handles
        obtained *after* this call are shared no-ops."""
        _set_enabled(False)

    @classmethod
    def enable(cls) -> None:
        """Re-enable observability recording."""
        _set_enabled(True)

    # -- metric accessors ---------------------------------------------

    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        """The counter child for ``name`` + ``labels`` (created on first
        use; a shared no-op when recording is disabled)."""
        return self._child("counter", Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        """The gauge child for ``name`` + ``labels``."""
        return self._child("gauge", Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram child for ``name`` + ``labels``; ``buckets``
        applies only on first creation of the child."""
        if not _enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        with self._lock:
            family = self._family("histogram", name, help_text)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = Histogram(lock=self._lock, buckets=buckets)
                family.children[key] = child
            return child

    def describe(self, kind: str, name: str, help_text: str) -> None:
        """Register an (empty) family so exporters list it even before
        any sample exists -- the ``repro metrics`` catalog path."""
        with self._lock:
            self._family(kind, name, help_text)

    # -- reading -------------------------------------------------------

    def sample_value(self, name: str, **labels: Any) -> Optional[float]:
        """The current value of an existing counter/gauge child, or
        ``None`` if the family or child does not exist.  Never creates
        metrics -- safe for diagnostics output."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            child = family.children.get(_label_key(labels))
            if child is None or not hasattr(child, "value"):
                return None
            return child.value

    def collect(self) -> List[Dict[str, Any]]:
        """Snapshot every family for the exporters: a list of dicts with
        ``name``, ``kind``, ``help`` and per-child ``samples``."""
        with self._lock:
            out = []
            for name in sorted(self._families):
                family = self._families[name]
                samples = []
                for key in sorted(family.children):
                    child = family.children[key]
                    samples.append(
                        {"labels": dict(key), **child._snapshot()}
                    )
                out.append(
                    {
                        "name": family.name,
                        "kind": family.kind,
                        "help": family.help,
                        "samples": samples,
                    }
                )
            return out

    def family_names(self) -> List[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._families)

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Zero every sample in place.  Existing metric handles remain
        valid (they keep pointing at the same child objects), so code
        that cached handles at construction keeps recording."""
        with self._lock:
            for family in self._families.values():
                for child in family.children.values():
                    child._reset()

    def clear(self) -> None:
        """Drop every family entirely (harsher than :meth:`reset`:
        cached handles detach)."""
        with self._lock:
            self._families.clear()

    # -- internals -----------------------------------------------------

    def _family(self, kind: str, name: str, help_text: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(kind, name, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}"
            )
        if not family.help and help_text:
            family.help = help_text
        return family

    def _child(
        self,
        kind: str,
        factory: Any,
        name: str,
        help_text: str,
        labels: Dict[str, Any],
    ) -> Any:
        if not _enabled:
            return _NULL_METRIC
        with self._lock:
            family = self._family(kind, name, help_text)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = factory(self._lock)
                family.children[key] = child
            return child


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every instrumented layer uses."""
    return _default_registry
