"""JSON-compatible (de)serialization of schedules, utilities, results.

Everything maps to plain dicts/lists/numbers so callers can use
``json.dumps`` directly.  Deserializers validate the ``kind`` tag and
fail loudly on unknown formats -- silent best-effort parsing of a
schedule that will drive hardware is not acceptable.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.core.schedule import PeriodicSchedule, ScheduleMode, UnrolledSchedule
from repro.core.solver import SolveResult
from repro.utility.base import UtilityFunction
from repro.utility.coverage_count import WeightedCoverageUtility
from repro.utility.detection import DetectionUtility, HomogeneousDetectionUtility
from repro.utility.logsum import LogSumUtility
from repro.utility.target_system import TargetSystem

Schedule = Union[PeriodicSchedule, UnrolledSchedule]


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Serialize a periodic or unrolled schedule."""
    if isinstance(schedule, PeriodicSchedule):
        return {
            "kind": "periodic",
            "slots_per_period": schedule.slots_per_period,
            "mode": schedule.mode.value,
            # JSON keys are strings; keep sensor ids as strings in flight.
            "assignment": {str(v): t for v, t in schedule.assignment.items()},
        }
    if isinstance(schedule, UnrolledSchedule):
        return {
            "kind": "unrolled",
            "slots_per_period": schedule.slots_per_period,
            "rho_at_most_one": schedule.rho_at_most_one,
            "active_sets": [sorted(s) for s in schedule.active_sets],
        }
    raise TypeError(f"cannot serialize schedule of type {type(schedule).__name__}")


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict`; validates the ``kind`` tag."""
    kind = data.get("kind")
    if kind == "periodic":
        return PeriodicSchedule(
            slots_per_period=int(data["slots_per_period"]),
            assignment={int(v): int(t) for v, t in data["assignment"].items()},
            mode=ScheduleMode(data["mode"]),
        )
    if kind == "unrolled":
        return UnrolledSchedule(
            slots_per_period=int(data["slots_per_period"]),
            active_sets=tuple(frozenset(s) for s in data["active_sets"]),
            rho_at_most_one=bool(data.get("rho_at_most_one", False)),
        )
    raise ValueError(f"unknown schedule kind: {kind!r}")


# ----------------------------------------------------------------------
# Utilities (the serializable families)
# ----------------------------------------------------------------------


def utility_to_dict(fn: UtilityFunction) -> Dict[str, Any]:
    """Serialize a utility of a known family; TypeError otherwise."""
    if isinstance(fn, HomogeneousDetectionUtility):
        return {
            "kind": "homogeneous-detection",
            "sensors": sorted(fn.ground_set),
            "p": fn.p,
        }
    if isinstance(fn, DetectionUtility):
        return {
            "kind": "detection",
            "probabilities": {str(v): p for v, p in fn.probabilities.items()},
        }
    if isinstance(fn, LogSumUtility):
        return {
            "kind": "logsum",
            "weights": {str(v): w for v, w in fn.weights.items()},
        }
    if isinstance(fn, WeightedCoverageUtility):
        return {
            "kind": "weighted-coverage",
            "covers": {
                str(v): sorted(fn.covers_of(v)) for v in fn.ground_set
            },
            "element_weights": {
                str(e): fn.element_weight(e) for e in fn.elements
            },
        }
    if isinstance(fn, TargetSystem):
        return {
            "kind": "target-system",
            "coverage_sets": [
                sorted(fn.coverage_set(i)) for i in range(fn.num_targets)
            ],
            "target_utilities": [
                utility_to_dict(fn.target_utility(i))
                for i in range(fn.num_targets)
            ],
        }
    raise TypeError(
        f"cannot serialize utility of type {type(fn).__name__}; "
        "serializable families: homogeneous-detection, detection, logsum, "
        "weighted-coverage, target-system"
    )


def utility_from_dict(data: Dict[str, Any]) -> UtilityFunction:
    """Inverse of :func:`utility_to_dict`."""
    kind = data.get("kind")
    if kind == "homogeneous-detection":
        return HomogeneousDetectionUtility(data["sensors"], p=float(data["p"]))
    if kind == "detection":
        return DetectionUtility(
            {int(v): float(p) for v, p in data["probabilities"].items()}
        )
    if kind == "logsum":
        return LogSumUtility(
            {int(v): float(w) for v, w in data["weights"].items()}
        )
    if kind == "weighted-coverage":
        weights = data.get("element_weights")
        return WeightedCoverageUtility(
            {int(v): set(elems) for v, elems in data["covers"].items()},
            element_weights=(
                {int(e): float(w) for e, w in weights.items()}
                if weights
                else None
            ),
        )
    if kind == "target-system":
        return TargetSystem(
            [frozenset(s) for s in data["coverage_sets"]],
            [utility_from_dict(u) for u in data["target_utilities"]],
        )
    raise ValueError(f"unknown utility kind: {kind!r}")


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


def result_summary(result: SolveResult) -> Dict[str, Any]:
    """Flat experiment-log record for one solve."""
    return {
        "method": result.method,
        "num_sensors": result.problem.num_sensors,
        "rho": result.problem.rho,
        "slots_per_period": result.problem.slots_per_period,
        "num_periods": result.problem.num_periods,
        "total_utility": result.total_utility,
        "average_slot_utility": result.average_slot_utility,
        "average_utility_per_target": result.average_utility_per_target,
        "solve_seconds": result.solve_seconds,
        "extras": dict(result.extras),
    }
