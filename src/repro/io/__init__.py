"""Serialization: schedules, utilities and results to/from JSON.

Deployments plan offline and execute on motes; the exchange format
matters.  This subpackage round-trips the library's core objects
through plain JSON-compatible dicts:

- schedules (:func:`~repro.io.serialization.schedule_to_dict` /
  :func:`~repro.io.serialization.schedule_from_dict`) -- what gets
  shipped to the base station;
- utility functions for the serializable families (homogeneous /
  general detection, log-sum, weighted coverage, target systems);
- solve-result summaries for experiment logs;
- crash-safe checkpoint files for long simulation runs
  (:func:`~repro.io.checkpoint.save_checkpoint` /
  :func:`~repro.io.checkpoint.load_checkpoint`, atomic
  write-then-rename).
"""

from repro.io.serialization import (
    result_summary,
    schedule_from_dict,
    schedule_to_dict,
    utility_from_dict,
    utility_to_dict,
)
from repro.io.files import (
    load_schedule,
    save_schedule,
    save_sweep_csv,
    save_trace_csv,
)
from repro.io.checkpoint import load_checkpoint, save_checkpoint

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "utility_to_dict",
    "utility_from_dict",
    "result_summary",
    "save_schedule",
    "load_schedule",
    "save_sweep_csv",
    "save_trace_csv",
    "save_checkpoint",
    "load_checkpoint",
]
